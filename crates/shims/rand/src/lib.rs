//! Offline shim for the `rand` crate: seedable deterministic RNG with
//! `gen_range` over integer ranges — the surface `starlink-net` uses.
//!
//! The generator is xoshiro256++ seeded via SplitMix64, which matches the
//! determinism contract the simulator needs (same seed → same stream);
//! it does not reproduce the upstream `StdRng` stream bit-for-bit.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable construction, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Bounds usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Inclusive low and high bounds of the range.
    fn bounds(&self) -> (T, T);
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// The random-value methods the workspace uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: RangeSample,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        T::sample_between(self.next_u64(), lo, hi)
    }
}

/// Integer types producible by [`Rng::gen_range`].
pub trait RangeSample: Copy {
    /// Maps 64 uniform bits into `[lo, hi]`.
    fn sample_between(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sample_unsigned {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_between(bits: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((bits as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sample_signed {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_between(bits: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (bits as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_range_sample_signed!(i32, i64);

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(200u64..=600);
            assert!((200..=600).contains(&v));
            let w: usize = rng.gen_range(0usize..5);
            assert!(w < 5);
            let s: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }
}
