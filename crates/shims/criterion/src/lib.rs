//! Offline shim for the `criterion` benchmarking crate.
//!
//! Implements the API subset this workspace's benches use: [`Criterion`]
//! configuration builders, [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is plain wall-clock sampling: a doubling
//! calibration phase sizes the per-sample iteration count, then
//! `sample_size` timed samples produce min/median/mean/max ns-per-
//! iteration statistics.
//!
//! Every completed benchmark is printed to stdout, and when the
//! `CRITERION_SHIM_JSON` environment variable names a file path the
//! accumulated results are additionally written there as a JSON array —
//! the hook the repository's `BENCH_*.json` regression snapshots use.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (empty when benched outside a group).
    pub group: String,
    /// Benchmark id inside the group.
    pub name: String,
    /// Minimum observed nanoseconds per iteration.
    pub min_ns: f64,
    /// Median observed nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean observed nanoseconds per iteration.
    pub mean_ns: f64,
    /// Maximum observed nanoseconds per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000_000.0 {
        format!("{:.3} s", ns / 1_000_000_000.0)
    } else if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures over a fixed iteration count.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured iteration count, recording the
    /// total elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark configuration and entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the calibration/warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.into() }
    }

    /// Benches a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_bench(&config, String::new(), id.into(), f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Benches one function under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.criterion.clone();
        run_bench(&config, self.group.clone(), id.into(), f);
        self
    }

    /// Ends the group (kept for API compatibility; no buffering happens).
    pub fn finish(self) {}
}

fn run_bench<F>(config: &Criterion, group: String, name: String, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration doubles the iteration count until one run costs at
    // least the warm-up budget; this also serves as cache/branch warm-up.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    loop {
        f(&mut bencher);
        if bencher.elapsed >= config.warm_up_time || bencher.iters >= 1 << 30 {
            break;
        }
        bencher.iters = (bencher.iters * 2).max(
            // Jump straight to scale once a measurable elapsed exists.
            if bencher.elapsed.as_nanos() > 0 {
                let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters);
                let target = config.warm_up_time.as_nanos();
                ((target / per_iter.max(1)) as u64).max(bencher.iters * 2)
            } else {
                bencher.iters * 2
            },
        );
    }
    let per_iter_ns = (bencher.elapsed.as_nanos() / u128::from(bencher.iters)).max(1) as u64;
    let per_sample_budget =
        (config.measurement_time.as_nanos() / config.sample_size as u128).max(1);
    let sample_iters = ((per_sample_budget / u128::from(per_iter_ns)) as u64).max(1);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut sample = Bencher { iters: sample_iters, elapsed: Duration::ZERO };
        f(&mut sample);
        samples_ns.push(sample.elapsed.as_nanos() as f64 / sample_iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let min = samples_ns[0];
    let max = *samples_ns.last().expect("non-empty samples");
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

    let label = if group.is_empty() { name.clone() } else { format!("{group}/{name}") };
    println!(
        "{label:<44} time: [{} {} {}]  ({} samples × {} iters)",
        format_ns(min),
        format_ns(median),
        format_ns(max),
        samples_ns.len(),
        sample_iters,
    );
    results().lock().expect("results lock").push(BenchResult {
        group,
        name,
        min_ns: min,
        median_ns: median,
        mean_ns: mean,
        max_ns: max,
        samples: samples_ns.len(),
        iters_per_sample: sample_iters,
    });
}

/// Writes accumulated results as JSON to `CRITERION_SHIM_JSON`, if set.
/// Called by the `criterion_main!`-generated `main` after all groups ran.
pub fn flush_results() {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    let results = results().lock().expect("results lock");
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"name\": \"{}\", \"min_ns\": {:.1}, \
             \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"max_ns\": {:.1}, \
             \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            r.group.escape_default(),
            r.name.escape_default(),
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.max_ns,
            r.samples,
            r.iters_per_sample,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("criterion shim: cannot write {path}: {err}");
    } else {
        eprintln!("criterion shim: wrote {} results to {path}", results.len());
    }
}

/// Declares a group-runner function over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group then flushing
/// the optional JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (`--bench`); they select
            // nothing in this shim, which always runs every target.
            $( $group(); )+
            $crate::flush_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_stats() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        let results = results().lock().unwrap();
        let r = results.iter().find(|r| r.name == "noop_sum").unwrap();
        assert!(r.min_ns > 0.0 && r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }
}
