//! Offline shim for the `proptest` crate.
//!
//! Provides deterministic random-input property testing with the API
//! subset this workspace uses: the [`Strategy`] trait with `prop_map`
//! and `prop_recursive`, regex-literal string strategies (character
//! classes with `{m,n}` quantifiers), integer-range strategies,
//! [`any`], [`Just`], tuple strategies, `prop::collection::{vec,
//! btree_map}`, `prop::option::of`, and the `proptest!`,
//! `prop_assert*!`, `prop_assume!` and `prop_oneof!` macros.
//!
//! Differences from upstream: no shrinking (failures report the seed and
//! iteration so they replay deterministically), and generation is not
//! stream-compatible with the real crate.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::sync::Arc;

/// Deterministic generator state handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform usize in `[lo, hi]`.
    pub fn usize_between(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The inputs did not meet a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds the rejection variant.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result type of a generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds a recursive strategy: values are drawn either from `self`
    /// (the leaf) or from `recurse` applied to the strategy built so
    /// far, nested at most `depth` levels. The `_desired_size` and
    /// `_expected_branch_size` parameters are accepted for upstream
    /// signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            // Lean towards leaves so expected size stays bounded.
            current = Union { choices: vec![leaf.clone(), branch] }.boxed();
        }
        current
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `choices` (must be non-empty).
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.choices.len() as u64) as usize;
        self.choices[index].generate(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for any value of a type (the `any::<T>()` entry point).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

/// Creates the full-range strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any { marker: std::marker::PhantomData }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                self.start() + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                (*self.start() as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_signed_range_strategies!(i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------
// Regex-literal string strategies.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Atom {
    /// Candidate characters (expanded character class or one literal).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// The parsed form of a regex-literal strategy. Supports sequences of
/// character classes (`[A-Za-z0-9_-]`, `[ -~]`) and literal characters,
/// each with an optional `{n}` / `{m,n}` quantifier.
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    atoms: Vec<Atom>,
}

fn parse_class(pattern: &[char], mut i: usize) -> (Vec<char>, usize) {
    // `i` points just past '['. A leading ']' would be literal; unused
    // by this workspace, so treat ']' as the terminator throughout.
    let mut chars = Vec::new();
    while i < pattern.len() && pattern[i] != ']' {
        let lo = pattern[i];
        if i + 2 < pattern.len() && pattern[i + 1] == '-' && pattern[i + 2] != ']' {
            let hi = pattern[i + 2];
            assert!(lo <= hi, "invalid class range {lo}-{hi}");
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(lo);
            i += 1;
        }
    }
    assert!(i < pattern.len(), "unterminated character class");
    (chars, i + 1) // past ']'
}

fn parse_quantifier(pattern: &[char], i: usize) -> (usize, usize, usize) {
    if i < pattern.len() && pattern[i] == '{' {
        let close =
            pattern[i..].iter().position(|&c| c == '}').expect("unterminated quantifier") + i;
        let body: String = pattern[i + 1..close].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("quantifier min"),
                hi.trim().parse().expect("quantifier max"),
            ),
            None => {
                let n = body.trim().parse().expect("quantifier count");
                (n, n)
            }
        };
        (min, max, close + 1)
    } else {
        (1, 1, i)
    }
}

impl RegexStrategy {
    /// Parses the supported regex subset; panics on anything else (a
    /// test-authoring error, mirroring upstream's parse failure).
    pub fn parse(pattern: &str) -> Self {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let (class, next) = match chars[i] {
                '[' => parse_class(&chars, i + 1),
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape");
                    (vec![chars[i + 1]], i + 2)
                }
                c => {
                    assert!(
                        !matches!(c, '(' | ')' | '|' | '*' | '+' | '?' | '.'),
                        "regex feature {c:?} is not supported by the proptest shim"
                    );
                    (vec![c], i + 1)
                }
            };
            let (min, max, next) = parse_quantifier(&chars, next);
            assert!(min <= max, "quantifier {min},{max} inverted");
            atoms.push(Atom { chars: class, min, max });
            i = next;
        }
        RegexStrategy { atoms }
    }
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = rng.usize_between(atom.min, atom.max);
            for _ in 0..count {
                out.push(atom.chars[rng.usize_between(0, atom.chars.len() - 1)]);
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsed per call; test-only cost, keeps the `&str`-is-a-strategy
        // ergonomics of upstream without a global cache.
        RegexStrategy::parse(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        RegexStrategy::parse(self).generate(rng)
    }
}

// ---------------------------------------------------------------------
// Collections and option.
// ---------------------------------------------------------------------

/// Bounds on generated collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use std::collections::BTreeMap;

        /// Strategy for `Vec<T>` with sizes in `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of `element` values.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let count = rng.usize_between(self.size.min, self.size.max);
                (0..count).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeMap<K, V>` with sizes in `size`.
        #[derive(Debug, Clone)]
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        /// Generates maps of `key`/`value` pairs. Duplicate keys collapse,
        /// so the generated map may be smaller than requested (as
        /// upstream).
        pub fn btree_map<K, V>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K: Strategy,
            V: Strategy,
            K::Value: Ord,
        {
            BTreeMapStrategy { key, value, size: size.into() }
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            V: Strategy,
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;

            fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
                let count = rng.usize_between(self.size.min, self.size.max);
                (0..count).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<T>`: `None` one time in four.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `Some(inner)` ~75% of the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------

/// Number of cases per property (override with `PROPTEST_CASES`).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(96)
}

/// Executes `body` for each generated case; panics on the first failing
/// case with enough context to replay it.
pub fn run_proptest(name: &str, mut body: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let cases = case_count();
    // Stable per-test seed so failures replay without extra plumbing.
    let base: u64 = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3));
    let mut rejected = 0u64;
    let mut executed = 0u64;
    let mut iteration = 0u64;
    let max_rejects = cases * 16;
    while executed < cases {
        let mut rng = TestRng::new(base.wrapping_add(iteration));
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property {name}: too many rejected cases ({rejected}); \
                     weaken the prop_assume! precondition"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property {name} failed at iteration {iteration} \
                     (seed {:#x}): {message}",
                    base.wrapping_add(iteration)
                );
            }
        }
        iteration += 1;
    }
}

/// Declares property tests: each function body runs once per generated
/// case with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                    let __proptest_result: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    __proptest_result
                });
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($choice:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($choice)),+])
    };
}

/// The conventional glob import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        BoxedStrategy, Just, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_strategies_respect_shape() {
        let mut rng = super::TestRng::new(1);
        for _ in 0..200 {
            let s = super::Strategy::generate(&"[A-Za-z][A-Za-z0-9_-]{0,10}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 11, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let t = super::Strategy::generate(&"[ -~]{0,16}", &mut rng);
            assert!(t.len() <= 16);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = super::TestRng::new(2);
        for _ in 0..200 {
            let v = super::Strategy::generate(&(1u32..=64), &mut rng);
            assert!((1..=64).contains(&v));
            let w = super::Strategy::generate(&(0u64..16), &mut rng);
            assert!(w < 16);
            let p = super::Strategy::generate(&(1u16..), &mut rng);
            assert!(p >= 1);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(v in prop::collection::vec(any::<u8>(), 0..8), flag in any::<bool>()) {
            prop_assert!(v.len() < 8);
            if flag {
                let sum: u64 = v.iter().map(|b| u64::from(*b)).sum();
                prop_assert!(sum <= v.len() as u64 * 255);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
