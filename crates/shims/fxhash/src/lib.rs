//! Offline shim for the `fxhash` crate: an FxHash-style
//! non-cryptographic multiply-rotate hash (with a strengthened mixing
//! step — see [`FxHasher`]).
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, a keyed hash
//! hardened against collision flooding from untrusted keys. The hot
//! lookups on the bridge's per-message path — session table, routing
//! tables, the spec-compilation intern table — key on values an attacker
//! cannot choose freely (source endpoints, ports, automaton states), so
//! they trade that hardening for a hash that is a handful of arithmetic
//! instructions per word. [`FxHashMap`]/[`FxHashSet`] are drop-in map
//! aliases over [`FxBuildHasher`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplier of the FxHash mixing step (the 64-bit golden-ratio
/// cousin Firefox ships).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic, non-keyed [`Hasher`]: every input word is
/// folded in with one xor, one multiply and one rotate.
///
/// The fold rotates by 26 *after* the multiply (the classic Firefox
/// step — `rotate_left(5)` before it — leaves a chunk's top byte only
/// five bits away from where the next word's low byte can cancel it,
/// which produced real collisions between host strings like
/// `"10.0.0.19"`/`"10.0.0.92"`; the wider post-multiply rotation moves
/// the weakly-mixed high bits out of reach).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash ^ word).wrapping_mul(SEED).rotate_left(26);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            // Fold the tail length in so "ab" + "" and "a" + "b" split
            // across two writes cannot collide trivially.
            self.add_to_hash(u64::from_le_bytes(word) ^ (tail.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s (stateless, so
/// identical across map instances and process runs).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] — the shard-pinning helper: the
/// same key always lands on the same shard, in every process.
pub fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal_and_stably() {
        assert_eq!(hash64("session"), hash64("session"));
        assert_eq!(hash64(&(427u16, "239.255.255.253")), hash64(&(427u16, "239.255.255.253")));
        // Stateless build hasher: two maps agree on bucket placement.
        let a = FxBuildHasher::default();
        let b = FxBuildHasher::default();
        use std::hash::BuildHasher;
        assert_eq!(a.hash_one("10.0.0.1"), b.hash_one("10.0.0.1"));
    }

    #[test]
    fn distinct_values_spread() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            seen.insert(hash64(&format!("10.0.{}.{}", i / 200, i % 200)));
        }
        assert_eq!(seen.len(), 10_000, "host-style keys collide");
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        map.insert("a".into(), 1);
        map.insert("b".into(), 2);
        assert_eq!(map.get("a"), Some(&1));
        let mut set: FxHashSet<u16> = FxHashSet::default();
        set.insert(80);
        assert!(set.contains(&80));
    }

    #[test]
    fn split_writes_do_not_collide_with_joined_writes() {
        use std::hash::Hasher;
        let mut joined = FxHasher::default();
        joined.write(b"ab");
        let mut split = FxHasher::default();
        split.write(b"a");
        split.write(b"b");
        assert_ne!(joined.finish(), split.finish());
    }
}
