//! End-to-end tests of the bridge engine on the simulated network, with
//! synthetic legacy peers: a UDP↔UDP bridge and a UDP↔TCP bridge
//! (exercising the `set_host` λ action and stream reassembly).

use starlink_core::Starlink;
use starlink_net::{Actor, Context, Datagram, SimAddr, SimNet, TcpEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PING_MDL: &str = r#"
  <MDL protocol="Ping" kind="binary">
    <Header type="Ping"><Op>8</Op></Header>
    <Message type="PingReq"><Rule>Op=1</Rule><Val>16</Val></Message>
    <Message type="PingResp"><Rule>Op=2</Rule><Val>16</Val></Message>
  </MDL>"#;

const QUERY_MDL: &str = r#"
  <MDL protocol="Query" kind="binary">
    <Header type="Query"><Op>8</Op></Header>
    <Message type="Ask"><Rule>Op=1</Rule><Val>16</Val></Message>
    <Message type="Answer"><Rule>Op=2</Rule><Val>16</Val></Message>
  </MDL>"#;

/// Text request/response protocol for the TCP case.
const REST_MDL: &str = r#"
  <MDL protocol="Rest" kind="text">
    <Header type="Rest">
      <Method>32</Method>
      <Arg>13,10</Arg>
      <Fields>13,10:58</Fields>
    </Header>
    <Message type="RestGet"><Rule>Method=GET</Rule></Message>
    <Message type="RestOk"><Rule>Method=OK</Rule></Message>
  </MDL>"#;

const UDP_BRIDGE: &str = r#"
  <Bridge name="ping-query">
    <ColoredAutomaton protocol="Ping">
      <Color>
        <transport_protocol>udp</transport_protocol>
        <port>1000</port>
        <mode>async</mode>
        <multicast>yes</multicast>
        <group>239.0.0.1</group>
      </Color>
      <State name="s0" initial="true"/>
      <State name="s1" accepting="true"/>
      <Transition from="s0" action="receive" message="PingReq" to="s1"/>
      <Transition from="s1" action="send" message="PingResp" to="s0"/>
    </ColoredAutomaton>
    <ColoredAutomaton protocol="Query">
      <Color>
        <transport_protocol>udp</transport_protocol>
        <port>2000</port>
        <mode>async</mode>
        <multicast>yes</multicast>
        <group>239.0.0.2</group>
      </Color>
      <State name="q0" initial="true"/>
      <State name="q1"/>
      <State name="q2" accepting="true"/>
      <Transition from="q0" action="send" message="Ask" to="q1"/>
      <Transition from="q1" action="receive" message="Answer" to="q2"/>
    </ColoredAutomaton>
    <Equivalence target="Ask" sources="PingReq"/>
    <Equivalence target="PingResp" sources="Answer"/>
    <Delta from="Ping:s1" to="Query:q0">
      <TranslationLogic>
        <Assignment>
          <Field><Message>Ask</Message><Xpath>/field/primitiveField[label='Val']/value</Xpath></Field>
          <Field><Message>PingReq</Message><Xpath>/field/primitiveField[label='Val']/value</Xpath></Field>
        </Assignment>
      </TranslationLogic>
    </Delta>
    <Delta from="Query:q2" to="Ping:s1">
      <TranslationLogic>
        <Assignment>
          <Field><Message>PingResp</Message><Xpath>/field/primitiveField[label='Val']/value</Xpath></Field>
          <Field><Message>Answer</Message><Xpath>/field/primitiveField[label='Val']/value</Xpath></Field>
        </Assignment>
      </TranslationLogic>
    </Delta>
  </Bridge>"#;

const TCP_BRIDGE: &str = r#"
  <Bridge name="ping-rest">
    <ColoredAutomaton protocol="Ping">
      <Color>
        <transport_protocol>udp</transport_protocol>
        <port>1000</port>
        <mode>async</mode>
        <multicast>yes</multicast>
        <group>239.0.0.1</group>
      </Color>
      <State name="s0" initial="true"/>
      <State name="s1" accepting="true"/>
      <Transition from="s0" action="receive" message="PingReq" to="s1"/>
      <Transition from="s1" action="send" message="PingResp" to="s0"/>
    </ColoredAutomaton>
    <ColoredAutomaton protocol="Rest">
      <Color>
        <transport_protocol>tcp</transport_protocol>
        <port>8080</port>
        <mode>sync</mode>
        <multicast>no</multicast>
      </Color>
      <State name="h0" initial="true"/>
      <State name="h1"/>
      <State name="h2" accepting="true"/>
      <Transition from="h0" action="send" message="RestGet" to="h1"/>
      <Transition from="h1" action="receive" message="RestOk" to="h2"/>
    </ColoredAutomaton>
    <Equivalence target="RestGet" sources="PingReq"/>
    <Equivalence target="PingResp" sources="RestOk"/>
    <Delta from="Ping:s1" to="Rest:h0">
      <Action name="set_host">
        <Literal kind="string">10.0.0.3</Literal>
        <Literal kind="unsigned">8080</Literal>
      </Action>
      <TranslationLogic>
        <Assignment>
          <Field><Message>RestGet</Message><Xpath>/field/primitiveField[label='Arg']/value</Xpath></Field>
          <Function name="to-text">
            <Field><Message>PingReq</Message><Xpath>/field/primitiveField[label='Val']/value</Xpath></Field>
          </Function>
        </Assignment>
      </TranslationLogic>
    </Delta>
    <Delta from="Rest:h2" to="Ping:s1">
      <TranslationLogic>
        <Assignment>
          <Field><Message>PingResp</Message><Xpath>/field/primitiveField[label='Val']/value</Xpath></Field>
          <Function name="to-integer">
            <Field><Message>RestOk</Message><Xpath>/field/primitiveField[label='Arg']/value</Xpath></Field>
          </Function>
        </Assignment>
      </TranslationLogic>
    </Delta>
  </Bridge>"#;

/// A legacy Ping client: multicasts PingReq(val) and records the PingResp
/// value it gets back.
struct PingClient {
    val: u16,
    got: Arc<AtomicU64>,
}

impl Actor for PingClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(1000).unwrap();
        // Wire image of PingReq { Op: 1, Val }: 3 bytes.
        let wire = vec![1u8, (self.val >> 8) as u8, (self.val & 0xFF) as u8];
        ctx.udp_send(1000, SimAddr::new("239.0.0.1", 1000), wire);
    }

    fn on_datagram(&mut self, _ctx: &mut Context<'_>, datagram: Datagram) {
        assert_eq!(datagram.payload[0], 2, "expected PingResp opcode");
        let val = (u64::from(datagram.payload[1]) << 8) | u64::from(datagram.payload[2]);
        self.got.store(val + 1, Ordering::SeqCst); // +1 so 0 means "nothing"
    }
}

/// A legacy Query service: joins the Query group, answers Ask with
/// Answer carrying `val + 100`.
struct QueryService;

impl Actor for QueryService {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(2000).unwrap();
        ctx.join_group(SimAddr::new("239.0.0.2", 2000));
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        assert_eq!(datagram.payload[0], 1, "expected Ask opcode");
        let val = (u16::from(datagram.payload[1]) << 8) | u16::from(datagram.payload[2]);
        let answer = val + 100;
        let wire = vec![2u8, (answer >> 8) as u8, (answer & 0xFF) as u8];
        ctx.udp_send(2000, datagram.from, wire);
    }
}

/// A legacy REST service over TCP: parses `GET <n>`, replies `OK <n+100>`.
struct RestService;

impl Actor for RestService {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.listen_tcp(8080);
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        if let TcpEvent::Data { conn, payload } = event {
            let text = String::from_utf8_lossy(&payload).into_owned();
            let first_line = text.lines().next().unwrap_or_default().to_owned();
            let arg: u64 = first_line
                .strip_prefix("GET ")
                .and_then(|rest| rest.trim().parse().ok())
                .expect("well-formed RestGet");
            let response = format!("OK {}\r\n\r\n", arg + 100);
            ctx.tcp_send(conn, response.into_bytes()).unwrap();
        }
    }
}

#[test]
fn udp_bridge_translates_roundtrip() {
    let mut starlink = Starlink::new();
    starlink.load_mdl_xml(PING_MDL).unwrap();
    starlink.load_mdl_xml(QUERY_MDL).unwrap();
    let merged = starlink.load_bridge_xml(UDP_BRIDGE).unwrap();
    assert!(merged.check_merge().is_mergeable());
    let (engine, stats) = starlink.deploy(merged).unwrap();

    let got = Arc::new(AtomicU64::new(0));
    let mut sim = SimNet::new(11);
    sim.add_actor("10.0.0.2", engine); // the bridge
    sim.add_actor("10.0.0.3", QueryService);
    sim.add_actor("10.0.0.1", PingClient { val: 7, got: got.clone() });
    sim.run_until_idle();

    // Ping 7 → Ask 7 → Answer 107 → PingResp 107.
    assert_eq!(got.load(Ordering::SeqCst), 108);
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "engine errors: {:?}", stats.errors());
    stats.assert_consistent("udp bridge roundtrip");
    let times = stats.translation_times();
    assert!(times[0].as_micros() > 0);
}

#[test]
fn tcp_bridge_with_set_host_translates_roundtrip() {
    let mut starlink = Starlink::new();
    starlink.load_mdl_xml(PING_MDL).unwrap();
    starlink.load_mdl_xml(REST_MDL).unwrap();
    let merged = starlink.load_bridge_xml(TCP_BRIDGE).unwrap();
    assert!(merged.check_merge().is_mergeable());
    let (engine, stats) = starlink.deploy(merged).unwrap();

    let got = Arc::new(AtomicU64::new(0));
    let mut sim = SimNet::new(12);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor("10.0.0.3", RestService);
    sim.add_actor("10.0.0.1", PingClient { val: 41, got: got.clone() });
    sim.run_until_idle();

    // Ping 41 → GET 41 → OK 141 → PingResp 141.
    assert_eq!(got.load(Ordering::SeqCst), 142);
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "engine errors: {:?}", stats.errors());
    stats.assert_consistent("tcp bridge roundtrip");
}

#[test]
fn bridge_handles_sequential_sessions() {
    let mut starlink = Starlink::new();
    starlink.load_mdl_xml(PING_MDL).unwrap();
    starlink.load_mdl_xml(QUERY_MDL).unwrap();
    let merged = starlink.load_bridge_xml(UDP_BRIDGE).unwrap();
    let (engine, stats) = starlink.deploy(merged).unwrap();

    /// Sends a second request after receiving the first response.
    struct RepeatClient {
        got: Arc<AtomicU64>,
        remaining: u16,
    }
    impl Actor for RepeatClient {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(1000).unwrap();
            ctx.udp_send(1000, SimAddr::new("239.0.0.1", 1000), vec![1u8, 0, 1]);
        }
        fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
            assert_eq!(datagram.payload[0], 2);
            self.got.fetch_add(1, Ordering::SeqCst);
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.udp_send(1000, SimAddr::new("239.0.0.1", 1000), vec![1u8, 0, 2]);
            }
        }
    }

    let got = Arc::new(AtomicU64::new(0));
    let mut sim = SimNet::new(13);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor("10.0.0.3", QueryService);
    sim.add_actor("10.0.0.1", RepeatClient { got: got.clone(), remaining: 2 });
    sim.run_until_idle();

    assert_eq!(got.load(Ordering::SeqCst), 3);
    assert_eq!(stats.session_count(), 3);
    stats.assert_consistent("repeat client");
}

#[test]
fn unparseable_datagram_is_recorded_not_fatal() {
    let mut starlink = Starlink::new();
    starlink.load_mdl_xml(PING_MDL).unwrap();
    starlink.load_mdl_xml(QUERY_MDL).unwrap();
    let merged = starlink.load_bridge_xml(UDP_BRIDGE).unwrap();
    let (engine, stats) = starlink.deploy(merged).unwrap();

    struct Garbage;
    impl Actor for Garbage {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(1000).unwrap();
            // Opcode 9 matches no rule.
            ctx.udp_send(1000, SimAddr::new("239.0.0.1", 1000), vec![9u8, 0xFF]);
        }
    }

    let mut sim = SimNet::new(14);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor("10.0.0.1", Garbage);
    sim.run_until_idle();

    assert_eq!(stats.session_count(), 0);
    assert_eq!(stats.errors().len(), 1);
    stats.assert_consistent("unparseable datagram");
}

#[test]
fn unfilled_mandatory_field_blocks_the_send() {
    // Same Ping/Query pair, but Query's Ask payload is declared mandatory
    // and the bridge "forgets" the translation assignment: the dynamic ⊨
    // check must refuse the send and record the violation instead of
    // emitting a half-translated message.
    const STRICT_QUERY_MDL: &str = r#"
      <MDL protocol="Query" kind="binary">
        <Header type="Query"><Op>8</Op></Header>
        <Message type="Ask"><Rule>Op=1</Rule><ValLen>16</ValLen><Val mandatory="true">ValLen</Val></Message>
        <Message type="Answer"><Rule>Op=2</Rule><Val>16</Val></Message>
      </MDL>"#;
    const FORGETFUL_BRIDGE: &str = r#"
      <Bridge name="forgetful">
        <ColoredAutomaton protocol="Ping">
          <Color>
            <transport_protocol>udp</transport_protocol>
            <port>1000</port>
            <mode>async</mode>
            <multicast>yes</multicast>
            <group>239.0.0.1</group>
          </Color>
          <State name="s0" initial="true"/>
          <State name="s1" accepting="true"/>
          <Transition from="s0" action="receive" message="PingReq" to="s1"/>
          <Transition from="s1" action="send" message="PingResp" to="s0"/>
        </ColoredAutomaton>
        <ColoredAutomaton protocol="Query">
          <Color>
            <transport_protocol>udp</transport_protocol>
            <port>2000</port>
            <mode>async</mode>
            <multicast>yes</multicast>
            <group>239.0.0.2</group>
          </Color>
          <State name="q0" initial="true"/>
          <State name="q1"/>
          <State name="q2" accepting="true"/>
          <Transition from="q0" action="send" message="Ask" to="q1"/>
          <Transition from="q1" action="receive" message="Answer" to="q2"/>
        </ColoredAutomaton>
        <Equivalence target="Ask" sources="PingReq"/>
        <Equivalence target="PingResp" sources="Answer"/>
        <Delta from="Ping:s1" to="Query:q0"/>
        <Delta from="Query:q2" to="Ping:s1"/>
      </Bridge>"#;

    let mut starlink = Starlink::new();
    starlink.load_mdl_xml(PING_MDL).unwrap();
    starlink.load_mdl_xml(STRICT_QUERY_MDL).unwrap();
    let merged = starlink.load_bridge_xml(FORGETFUL_BRIDGE).unwrap();
    let (engine, stats) = starlink.deploy(merged).unwrap();

    let got = Arc::new(AtomicU64::new(0));
    let mut sim = SimNet::new(15);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor("10.0.0.3", QueryService);
    sim.add_actor("10.0.0.1", PingClient { val: 7, got: got.clone() });
    sim.run_until_idle();

    // Nothing translated reached the service or the client...
    assert_eq!(got.load(Ordering::SeqCst), 0);
    assert_eq!(stats.session_count(), 0);
    // ...and the ⊨ violation names the unfilled field.
    let errors = stats.errors();
    assert!(errors.iter().any(|e| e.contains("Val")), "{errors:?}");
    stats.assert_consistent("unfilled mandatory field");
}
