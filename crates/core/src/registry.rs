//! The runtime registry — the control-plane half that lives with the
//! driver: load model sources from disk *while serving*, gate every one
//! of them through the `starlink-check` analyses, and mint **versioned
//! deployments** whose engines a live [`ShardedBridge`] installs via
//! [`BridgeCommand`]s.
//!
//! The version lifecycle:
//!
//! ```text
//!   load ──▶ check ──▶ deploy (vN active) ──▶ drain (vN-1) ──▶ reap
//! ```
//!
//! * **load** — [`BridgeRegistry::load_source`]/[`BridgeRegistry::load_file`]
//!   bring an on-disk `<MDL>`, `<ColoredAutomaton>` or `<Bridge>`
//!   document into the framework;
//! * **check** — every load and every deployment runs the full static
//!   verification; a rejection surfaces as
//!   [`CoreError::Rejected`](crate::CoreError::Rejected) carrying the
//!   structured [`ModelReport`] (lint codes, line/column spans), never
//!   a flattened string;
//! * **deploy** — [`BridgeRegistry::deploy_sharded`] builds one gated
//!   engine per shard under a fresh monotonic version number and
//!   records a [`DeployedBridge`] handle;
//! * **drain/reap** — happen shard-side (see [`crate::host::EngineHost`]);
//!   the handle's [`DeployedBridge::state`] reflects them through the
//!   per-version stats flags.
//!
//! Two versions of the same case — e.g. two ontology revisions — are
//! just two registry deployments; their engines coexist per shard until
//! the old one drains out.

use crate::engine::{BridgeEngine, EngineConfig};
use crate::error::{CoreError, ModelReport, Result};
use crate::framework::Starlink;
use crate::host::BridgeCommand;
use crate::stats::{AtomicConcurrency, BridgeStats, ShardedStats};
use starlink_automata::{ColoredAutomaton, MergedAutomaton};
use starlink_xml::{diag, Element, Severity};
use std::path::Path;
use std::sync::Arc;

/// What a successfully loaded model source turned out to be.
#[derive(Debug)]
pub enum LoadedModel {
    /// An `<MDL>` spec: its codec is generated and registered under
    /// this protocol name.
    Protocol(String),
    /// A standalone `<ColoredAutomaton>` document, validated and
    /// returned for the caller to merge or synthesize with.
    Automaton(Box<ColoredAutomaton>),
    /// A `<Bridge>` document, merged and returned ready to deploy.
    Bridge(Box<MergedAutomaton>),
}

/// Where one versioned deployment stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployState {
    /// Active: taking fresh sessions on every shard.
    Serving,
    /// Swapped or undeployed: finishing in-flight sessions only; at
    /// least one shard still holds live state.
    Draining,
    /// Drained to zero on every shard and reaped; counters frozen.
    Retired,
}

impl std::fmt::Display for DeployState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployState::Serving => write!(f, "serving"),
            DeployState::Draining => write!(f, "draining"),
            DeployState::Retired => write!(f, "retired"),
        }
    }
}

/// A versioned deployment handle: the registry-side view of one engine
/// set installed (or about to be installed) on a sharded bridge. Clone
/// freely — stats are shared.
#[derive(Debug, Clone)]
pub struct DeployedBridge {
    version: u64,
    case: String,
    shards: usize,
    stats: ShardedStats,
}

impl DeployedBridge {
    /// The monotonic version number (unique per registry).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The case (merged-automaton) name this version deploys.
    pub fn case(&self) -> &str {
        &self.case
    }

    /// Number of shards the version was built for.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The per-version stats: each shard's engine records here for the
    /// version's whole life, across drain and retirement.
    pub fn stats(&self) -> &ShardedStats {
        &self.stats
    }

    /// The version's lifecycle state, derived from the per-shard
    /// draining/retired flags its engines maintain.
    pub fn state(&self) -> DeployState {
        if self.stats.retired_shards() == self.shards {
            DeployState::Retired
        } else if self.stats.draining_shards() > 0 {
            DeployState::Draining
        } else {
            DeployState::Serving
        }
    }
}

/// The runtime model registry (see the module docs).
pub struct BridgeRegistry {
    framework: Starlink,
    next_version: u64,
    deployments: Vec<DeployedBridge>,
}

impl std::fmt::Debug for BridgeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BridgeRegistry")
            .field("next_version", &self.next_version)
            .field("deployments", &self.deployments.len())
            .finish()
    }
}

impl Default for BridgeRegistry {
    fn default() -> Self {
        BridgeRegistry::new()
    }
}

impl BridgeRegistry {
    /// A registry over a fresh framework instance.
    pub fn new() -> Self {
        BridgeRegistry::with_framework(Starlink::new())
    }

    /// A registry over an existing framework (already-loaded codecs and
    /// functions stay available).
    pub fn with_framework(framework: Starlink) -> Self {
        BridgeRegistry { framework, next_version: 1, deployments: Vec::new() }
    }

    /// The underlying framework (codec lookups, synthesis).
    pub fn framework(&self) -> &Starlink {
        &self.framework
    }

    /// Mutable access to the underlying framework.
    pub fn framework_mut(&mut self) -> &mut Starlink {
        &mut self.framework
    }

    /// Loads one XML model source, gating it through the full
    /// `starlink-check` analysis first. `subject` names the source in
    /// the report (a file path, a test label).
    ///
    /// # Errors
    ///
    /// [`CoreError::Rejected`] with the structured diagnostics when any
    /// check reports an `Error`; the underlying load error otherwise
    /// (which the gate makes unreachable in practice).
    pub fn load_source(&mut self, subject: &str, source: &str) -> Result<LoadedModel> {
        let diagnostics = crate::check::check_model_source(source);
        if diag::any_at_least(&diagnostics, Severity::Error) {
            return Err(CoreError::Rejected(ModelReport {
                subject: subject.to_owned(),
                diagnostics,
            }));
        }
        // The gate sniffed and loaded once for analysis; load again for
        // keeps (control-plane path, not per-message).
        let root = Element::parse(source)
            .map_err(|e| CoreError::Deployment(format!("{subject}: {}", e.kind_message())))?;
        match root.name() {
            "MDL" => {
                let codec = self.framework.load_mdl_xml(source)?;
                Ok(LoadedModel::Protocol(codec.protocol().to_owned()))
            }
            "ColoredAutomaton" => {
                let automaton = starlink_automata::load_automaton_element(&root)?;
                Ok(LoadedModel::Automaton(Box::new(automaton)))
            }
            "Bridge" => {
                let merged = self.framework.load_bridge_xml(source)?;
                Ok(LoadedModel::Bridge(Box::new(merged)))
            }
            other => Err(CoreError::Deployment(format!(
                "{subject}: unrecognized root element <{other}>"
            ))),
        }
    }

    /// [`BridgeRegistry::load_source`] for an on-disk file; the path is
    /// the report subject.
    ///
    /// # Errors
    ///
    /// As [`BridgeRegistry::load_source`], plus
    /// [`CoreError::Deployment`] when the file cannot be read.
    pub fn load_file(&mut self, path: &Path) -> Result<LoadedModel> {
        let subject = path.display().to_string();
        let source = std::fs::read_to_string(path)
            .map_err(|err| CoreError::Deployment(format!("read {subject}: {err}")))?;
        self.load_source(&subject, &source)
    }

    /// Builds one gated engine per shard for `merged` under a fresh
    /// version number. The engines go to the caller — into
    /// [`crate::ShardedBridge::launch`] for an initial deployment, or
    /// wrapped as [`BridgeCommand::Swap`]/[`BridgeCommand::Deploy`] via
    /// [`swap_commands`]/[`deploy_commands`] for a live one. The
    /// returned handle tracks the version for its whole life.
    ///
    /// # Errors
    ///
    /// [`CoreError::Rejected`] with the full diagnostics when the
    /// deployment checks report an `Error`;
    /// [`CoreError::MissingCodec`]/[`CoreError::Deployment`] as
    /// [`Starlink::deploy_sharded`] otherwise.
    pub fn deploy_sharded(
        &mut self,
        merged: MergedAutomaton,
        config: EngineConfig,
        shards: usize,
    ) -> Result<(Vec<BridgeEngine>, DeployedBridge)> {
        if shards == 0 {
            return Err(CoreError::Deployment("a sharded bridge needs at least one shard".into()));
        }
        let case = merged.name().to_owned();
        let (merged, codecs) = self.framework.check_and_resolve(merged)?;
        let diagnostics =
            crate::check::check_deployment(&merged, &codecs, config.correlator.as_deref());
        if diag::any_at_least(&diagnostics, Severity::Error) {
            return Err(CoreError::Rejected(ModelReport {
                subject: format!("bridge:{case}"),
                diagnostics,
            }));
        }
        let automaton = Arc::new(merged);
        let functions = Arc::new(self.framework.functions().clone());
        let gauge = Arc::new(AtomicConcurrency::new());
        let mut engines = Vec::with_capacity(shards);
        let mut shard_stats = Vec::with_capacity(shards);
        for _ in 0..shards {
            let stats = BridgeStats::with_mirror(gauge.clone());
            engines.push(BridgeEngine::new(
                automaton.clone(),
                codecs.clone(),
                functions.clone(),
                stats.clone(),
                config.clone(),
            )?);
            shard_stats.push(stats);
        }
        let version = self.next_version;
        self.next_version += 1;
        let handle =
            DeployedBridge { version, case, shards, stats: ShardedStats::new(shard_stats, gauge) };
        self.deployments.push(handle.clone());
        Ok((engines, handle))
    }

    /// Every deployment this registry has minted, in version order.
    pub fn deployments(&self) -> &[DeployedBridge] {
        &self.deployments
    }
}

/// Wraps a registry-built engine set as one [`BridgeCommand::Swap`] per
/// shard — drain every older version, activate this one.
pub fn swap_commands(handle: &DeployedBridge, engines: Vec<BridgeEngine>) -> Vec<BridgeCommand> {
    engines
        .into_iter()
        .map(|engine| BridgeCommand::Swap { version: handle.version(), engine })
        .collect()
}

/// Wraps a registry-built engine set as one [`BridgeCommand::Deploy`]
/// per shard — activate this version without draining the others.
pub fn deploy_commands(handle: &DeployedBridge, engines: Vec<BridgeEngine>) -> Vec<BridgeCommand> {
    engines
        .into_iter()
        .map(|engine| BridgeCommand::Deploy { version: handle.version(), engine })
        .collect()
}

/// One [`BridgeCommand::Undeploy`] per shard of `handle` — drain this
/// version everywhere without a replacement. In-flight sessions finish;
/// each shard reaps its copy at zero live sessions.
pub fn undeploy_commands(handle: &DeployedBridge) -> Vec<BridgeCommand> {
    (0..handle.shard_count())
        .map(|_| BridgeCommand::Undeploy { version: handle.version() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ECHO_MDL: &str = r#"
      <MDL protocol="Echo" kind="binary">
        <Header type="Echo"><Op>8</Op></Header>
        <Message type="Ping"><Rule>Op=1</Rule></Message>
        <Message type="Pong"><Rule>Op=2</Rule></Message>
      </MDL>"#;

    #[test]
    fn loads_a_clean_mdl_and_registers_its_codec() {
        let mut registry = BridgeRegistry::new();
        let loaded = registry.load_source("echo.xml", ECHO_MDL).expect("clean spec loads");
        assert!(matches!(loaded, LoadedModel::Protocol(p) if p == "Echo"));
        assert!(registry.framework().codec("Echo").is_some());
    }

    #[test]
    fn rejection_surfaces_structured_diagnostics_not_a_string() {
        let mut registry = BridgeRegistry::new();
        // A field-function cycle: MDL002 at error severity.
        let bad = r#"
          <MDL protocol="Bad" kind="binary">
            <Types>
              <Op>Integer</Op>
              <A>Integer[f-length(B)]</A>
              <B>Integer[f-length(A)]</B>
            </Types>
            <Header type="Bad"><Op>8</Op></Header>
            <Message type="Loop"><Rule>Op=1</Rule><A>16</A><B>16</B></Message>
          </MDL>"#;
        let err = registry.load_source("bad.xml", bad).expect_err("gate rejects");
        let CoreError::Rejected(report) = err else {
            panic!("expected Rejected, got {err}");
        };
        assert_eq!(report.subject, "bad.xml");
        assert!(report.errors().count() >= 1, "{}", report.render());
        assert!(report.render().contains('['), "codes render: {}", report.render());
        // Nothing was registered.
        assert!(registry.framework().codec("Bad").is_none());
    }

    #[test]
    fn malformed_xml_reports_position() {
        let mut registry = BridgeRegistry::new();
        let err = registry.load_source("torn.xml", "<MDL protocol=").expect_err("rejects");
        let CoreError::Rejected(report) = err else { panic!("expected Rejected") };
        let error = report.errors().next().expect("one error");
        assert_eq!(error.code(), crate::check::XML_LINT_CODE);
        assert!(error.position().line >= 1, "malformed XML carries a position");
    }

    #[test]
    fn versions_are_monotonic_across_deployments() {
        let mut registry = BridgeRegistry::new();
        registry.load_source("echo.xml", ECHO_MDL).unwrap();
        let merged = {
            use starlink_automata::{Color, ColoredAutomaton, Mode, Transport};
            let part = ColoredAutomaton::builder("Echo")
                .color(Color::new(Transport::Udp, 1000, Mode::Async).multicast("239.0.0.1"))
                .state("s0")
                .state_accepting("s1")
                .receive("s0", "Ping", "s1")
                .send("s1", "Pong", "s0")
                .build()
                .unwrap();
            MergedAutomaton::from_single(part)
        };
        let (engines, first) =
            registry.deploy_sharded(merged.clone(), EngineConfig::default(), 2).unwrap();
        assert_eq!(engines.len(), 2);
        assert_eq!(first.version(), 1);
        assert_eq!(first.state(), DeployState::Serving);
        let (_, second) = registry.deploy_sharded(merged, EngineConfig::default(), 2).unwrap();
        assert_eq!(second.version(), 2);
        assert_eq!(registry.deployments().len(), 2);
        let commands = swap_commands(&second, Vec::new());
        assert!(commands.is_empty());
    }
}
