//! Translation-time instrumentation for the Fig. 12(b) measurements:
//! "the time from when the message was first received by the framework
//! until the translated output response was sent on the output socket".
//!
//! Two aggregation layers serve the sharded runtime:
//!
//! * every shard's engine owns a plain [`BridgeStats`] it updates with
//!   zero contention (nothing else touches that handle's mutex);
//! * the lifecycle counters are additionally *mirrored* into one shared
//!   [`AtomicConcurrency`] ([`BridgeStats::with_mirror`]) — plain atomic
//!   adds, no locks — so the fleet-wide gauge (including the true global
//!   `peak_active` high-water mark) is readable while every shard runs.
//!
//! [`BridgeStats::merge_from`] / [`ConcurrencyStats::merge`] fold
//! per-shard snapshots into one report after the fact.

use starlink_net::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One completed bridge session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRecord {
    /// When the first message of the session entered the framework.
    pub started: SimTime,
    /// When the final translated response left the output socket.
    pub finished: SimTime,
}

impl SessionRecord {
    /// The translation time of this session.
    pub fn translation_time(&self) -> SimDuration {
        self.finished.since(self.started)
    }
}

/// Session-lifecycle counters of a multi-session bridge: how many
/// sessions were opened, how many are live right now, the concurrency
/// high-water mark, and how the closed ones ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcurrencyStats {
    /// Sessions opened since deployment.
    pub started: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Sessions torn down after a compose/emit/⊨ failure.
    pub failed: u64,
    /// Sessions reaped by the idle-expiry timer.
    pub expired: u64,
    /// Sessions live right now (the concurrency gauge).
    pub active: u64,
    /// Highest number of simultaneously live sessions observed.
    pub peak_active: u64,
}

impl ConcurrencyStats {
    /// The lifecycle-accounting invariant: every session ever opened is
    /// in exactly one bucket, so
    /// `started == active + completed + failed + expired`. Holds for a
    /// single engine's counters, for per-shard counters, for their
    /// merged sum and for the lock-free mirror's snapshot (each
    /// transition updates both sides of the equation together).
    pub fn is_balanced(&self) -> bool {
        self.started == self.active + self.completed + self.failed + self.expired
    }

    /// Panics with the full counter set unless [`Self::is_balanced`] —
    /// the assertion every integration test runs against its bridge's
    /// stats.
    ///
    /// # Panics
    ///
    /// Panics when the invariant is violated; `context` names the
    /// offending bridge/shard in the message.
    pub fn assert_balanced(&self, context: &str) {
        assert!(
            self.is_balanced(),
            "{context}: session accounting broken: started {} != active {} + completed {} \
             + failed {} + expired {} (peak {})",
            self.started,
            self.active,
            self.completed,
            self.failed,
            self.expired,
            self.peak_active
        );
    }

    /// Folds another counter set into this one: every counter is summed.
    ///
    /// Summing `peak_active` makes the merged peak an *upper bound* on
    /// the true global high-water mark (shards rarely peak at the same
    /// instant); the shared [`AtomicConcurrency`] mirror tracks the
    /// exact global peak live.
    pub fn merge(&mut self, other: &ConcurrencyStats) {
        self.started += other.started;
        self.completed += other.completed;
        self.failed += other.failed;
        self.expired += other.expired;
        self.active += other.active;
        self.peak_active += other.peak_active;
    }
}

/// Answer-cache counters of a fused bridge: how often repeated queries
/// were served from the shard-local cache instead of re-querying the
/// legacy network. All zero on interpreted bridges and when the cache
/// is disabled ([`crate::EngineConfig::answer_ttl`] unset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered straight from the cache.
    pub hits: u64,
    /// Requests that went through full translation (lookup failed,
    /// entry expired, or the key was not yet cached).
    pub misses: u64,
    /// Legacy answers stored into the cache.
    pub insertions: u64,
    /// Entries evicted because their TTL had lapsed when touched.
    pub expirations: u64,
}

impl CacheStats {
    /// Fraction of cacheable requests served from the cache
    /// (`0.0` when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.expirations += other.expirations;
    }
}

/// Store-and-forward counters of a delay-tolerant bridge: what happened
/// to egress legs that found their link partitioned, closed by the pass
/// schedule, or saturated. All zero when store-and-forward is disabled
/// ([`crate::EngineConfig::store_forward`] unset).
///
/// Accounting invariant: every parked leg is eventually either replayed
/// (the link opened and the leg was retransmitted) or abandoned (its
/// session gave up after the retry budget, or was torn down with legs
/// still queued) — so `parked == replayed + abandoned` once no session
/// is live, and `replayed + abandoned <= parked` at every instant.
/// `overflow` counts legs *refused* at a full queue; they were never
/// parked, so they sit outside the balance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreForwardStats {
    /// Egress legs parked in a session queue instead of being sent.
    pub parked: u64,
    /// Parked legs retransmitted once their link opened.
    pub replayed: u64,
    /// Legs refused because the session's queue was at its bound.
    pub overflow: u64,
    /// Parked legs dropped when their session gave up or was torn down.
    pub abandoned: u64,
}

impl StoreForwardStats {
    /// The quiescent balance: with no live sessions, every parked leg
    /// was replayed or abandoned.
    pub fn is_settled(&self) -> bool {
        self.parked == self.replayed + self.abandoned
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &StoreForwardStats) {
        self.parked += other.parked;
        self.replayed += other.replayed;
        self.overflow += other.overflow;
        self.abandoned += other.abandoned;
    }
}

/// Lock-free session-lifecycle counters: the shard-local stats of a
/// sharded bridge all mirror into one shared instance, so aggregate
/// counters (and the true fleet-wide `peak_active`) never take a lock on
/// the per-message path.
#[derive(Debug, Default)]
pub struct AtomicConcurrency {
    started: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    active: AtomicU64,
    peak_active: AtomicU64,
}

impl AtomicConcurrency {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        AtomicConcurrency::default()
    }

    fn record_started(&self) {
        self.started.fetch_add(1, Ordering::Relaxed);
        let live = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_active.fetch_max(live, Ordering::Relaxed);
    }

    fn record_closed(&self, outcome: &AtomicU64) {
        outcome.fetch_add(1, Ordering::Relaxed);
        // Saturating decrement: a stray double-close must not wrap the
        // gauge to u64::MAX.
        let _ = self.active.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
            Some(live.saturating_sub(1))
        });
    }

    /// A consistent-enough snapshot of the counters (each field is read
    /// atomically; the set is not sealed against concurrent updates).
    pub fn snapshot(&self) -> ConcurrencyStats {
        ConcurrencyStats {
            started: self.started.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            peak_active: self.peak_active.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    sessions: Vec<SessionRecord>,
    /// Messages that failed to parse/translate (dropped by the engine).
    errors: Vec<String>,
    /// Session-lifecycle counters.
    concurrency: ConcurrencyStats,
    /// Answer-cache counters (fused bridges only).
    cache: CacheStats,
    /// Store-and-forward counters (delay-tolerant sessions only).
    store_forward: StoreForwardStats,
    /// Control-plane state: the owning engine version stopped taking
    /// fresh sessions (drain-then-swap in progress).
    draining: bool,
    /// Control-plane state: the owning engine version drained to zero
    /// live sessions and was reaped. Counters freeze at their final
    /// values — retirement never resets a ledger.
    retired: bool,
}

/// Shared handle onto a bridge's statistics; clone freely — the engine
/// keeps one end, the harness the other.
#[derive(Debug, Clone, Default)]
pub struct BridgeStats {
    inner: Arc<Mutex<Inner>>,
    /// Optional lock-free mirror of the lifecycle counters, shared by
    /// every shard of a sharded deployment.
    mirror: Option<Arc<AtomicConcurrency>>,
}

impl BridgeStats {
    /// Creates an empty stats handle.
    pub fn new() -> Self {
        BridgeStats::default()
    }

    /// Creates a stats handle that additionally mirrors every lifecycle
    /// transition into `mirror` with plain atomic adds — the shard-local
    /// end of a fleet-wide gauge.
    pub fn with_mirror(mirror: Arc<AtomicConcurrency>) -> Self {
        BridgeStats { inner: Arc::default(), mirror: Some(mirror) }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // The handle is only ever locked uncontended (one engine per
        // handle); recover from poisoning regardless.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a completed session.
    pub fn record_session(&self, started: SimTime, finished: SimTime) {
        let mut inner = self.lock();
        inner.sessions.push(SessionRecord { started, finished });
        inner.concurrency.completed += 1;
        inner.concurrency.active = inner.concurrency.active.saturating_sub(1);
        drop(inner);
        if let Some(mirror) = &self.mirror {
            mirror.record_closed(&mirror.completed);
        }
    }

    /// Records a session opening (the concurrency gauge rises).
    pub fn record_session_started(&self) {
        let mut inner = self.lock();
        inner.concurrency.started += 1;
        inner.concurrency.active += 1;
        inner.concurrency.peak_active = inner.concurrency.peak_active.max(inner.concurrency.active);
        drop(inner);
        if let Some(mirror) = &self.mirror {
            mirror.record_started();
        }
    }

    /// Records a session torn down after a compose/emit/⊨ failure (the
    /// failure itself is recorded separately via [`BridgeStats::record_error`]).
    pub fn record_session_failed(&self) {
        let mut inner = self.lock();
        inner.concurrency.failed += 1;
        inner.concurrency.active = inner.concurrency.active.saturating_sub(1);
        drop(inner);
        if let Some(mirror) = &self.mirror {
            mirror.record_closed(&mirror.failed);
        }
    }

    /// Records a session reaped by the idle-expiry timer.
    pub fn record_session_expired(&self) {
        let mut inner = self.lock();
        inner.concurrency.expired += 1;
        inner.concurrency.active = inner.concurrency.active.saturating_sub(1);
        drop(inner);
        if let Some(mirror) = &self.mirror {
            mirror.record_closed(&mirror.expired);
        }
    }

    /// The session-lifecycle counters.
    pub fn concurrency(&self) -> ConcurrencyStats {
        self.lock().concurrency
    }

    /// The answer-cache counters.
    pub fn cache(&self) -> CacheStats {
        self.lock().cache
    }

    /// Records a request served from the answer cache.
    pub fn record_cache_hit(&self) {
        self.lock().cache.hits += 1;
    }

    /// Records a cacheable request that needed full translation.
    pub fn record_cache_miss(&self) {
        self.lock().cache.misses += 1;
    }

    /// Records a legacy answer stored into the cache.
    pub fn record_cache_insertion(&self) {
        self.lock().cache.insertions += 1;
    }

    /// Records a cache entry evicted on TTL expiry.
    pub fn record_cache_expiration(&self) {
        self.lock().cache.expirations += 1;
    }

    /// The store-and-forward counters.
    pub fn store_forward(&self) -> StoreForwardStats {
        self.lock().store_forward
    }

    /// Records an egress leg parked instead of sent (closed or
    /// saturated link).
    pub fn record_leg_parked(&self) {
        self.lock().store_forward.parked += 1;
    }

    /// Records a parked leg retransmitted after its link opened.
    pub fn record_leg_replayed(&self) {
        self.lock().store_forward.replayed += 1;
    }

    /// Records a leg refused at a full session queue.
    pub fn record_queue_overflow(&self) {
        self.lock().store_forward.overflow += 1;
    }

    /// Records `count` parked legs dropped by a session that gave up or
    /// was torn down with its queue non-empty.
    pub fn record_legs_abandoned(&self, count: u64) {
        self.lock().store_forward.abandoned += count;
    }

    /// Records an engine-level error (message dropped).
    pub fn record_error(&self, description: impl Into<String>) {
        self.lock().errors.push(description.into());
    }

    /// Marks the owning engine version as draining: it stopped taking
    /// fresh sessions and only finishes (or idle-expires) in-flight
    /// ones. Deployment state, not part of the lifecycle ledger.
    pub fn record_draining(&self) {
        self.lock().draining = true;
    }

    /// Marks the owning engine version as retired: it drained to zero
    /// live sessions and was reaped. Its counters freeze here — a swap
    /// must never reset or double-count a ledger.
    pub fn record_retired(&self) {
        let mut inner = self.lock();
        inner.draining = true;
        inner.retired = true;
    }

    /// Whether the owning engine version is draining (or already
    /// retired).
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Whether the owning engine version drained out and was reaped.
    pub fn is_retired(&self) -> bool {
        self.lock().retired
    }

    /// Completed sessions so far.
    pub fn sessions(&self) -> Vec<SessionRecord> {
        self.lock().sessions.clone()
    }

    /// Errors recorded so far.
    pub fn errors(&self) -> Vec<String> {
        self.lock().errors.clone()
    }

    /// Number of completed sessions.
    pub fn session_count(&self) -> usize {
        self.lock().sessions.len()
    }

    /// Translation times of all completed sessions.
    pub fn translation_times(&self) -> Vec<SimDuration> {
        self.lock().sessions.iter().map(SessionRecord::translation_time).collect()
    }

    /// Asserts internal consistency of this handle: the lifecycle
    /// counters are balanced ([`ConcurrencyStats::assert_balanced`]) and
    /// the completed-session log agrees with the `completed` counter.
    ///
    /// # Panics
    ///
    /// Panics (naming `context`) when either check fails.
    pub fn assert_consistent(&self, context: &str) {
        let concurrency = self.concurrency();
        concurrency.assert_balanced(context);
        assert_eq!(
            self.session_count() as u64,
            concurrency.completed,
            "{context}: completed-session records disagree with the completed counter"
        );
        // Answer-cache invariants: every hit completed a session, every
        // insertion came from a completed exchange, and only inserted
        // entries can expire.
        let cache = self.cache();
        assert!(
            cache.hits <= concurrency.completed,
            "{context}: {} cache hits exceed {} completed sessions",
            cache.hits,
            concurrency.completed
        );
        assert!(
            cache.insertions <= concurrency.completed,
            "{context}: {} cache insertions exceed {} completed sessions",
            cache.insertions,
            concurrency.completed
        );
        assert!(
            cache.expirations <= cache.insertions,
            "{context}: {} cache expirations exceed {} insertions",
            cache.expirations,
            cache.insertions
        );
        // Store-and-forward: resolved legs never exceed parked legs; at
        // quiescence (no active sessions) the balance is exact.
        let sf = self.store_forward();
        assert!(
            sf.replayed + sf.abandoned <= sf.parked,
            "{context}: {} replayed + {} abandoned legs exceed {} parked",
            sf.replayed,
            sf.abandoned,
            sf.parked
        );
        if concurrency.active == 0 {
            assert!(
                sf.is_settled(),
                "{context}: store-and-forward unsettled at quiescence: \
                 parked {} != replayed {} + abandoned {}",
                sf.parked,
                sf.replayed,
                sf.abandoned
            );
        }
    }

    /// Folds a snapshot of `other` into this handle: session records and
    /// errors are appended, lifecycle counters merged per
    /// [`ConcurrencyStats::merge`]. Used to aggregate per-shard stats
    /// into one fleet-wide report.
    pub fn merge_from(&self, other: &BridgeStats) {
        let (sessions, errors, concurrency, cache, store_forward) = {
            let other = other.lock();
            (
                other.sessions.clone(),
                other.errors.clone(),
                other.concurrency,
                other.cache,
                other.store_forward,
            )
        };
        let mut inner = self.lock();
        inner.sessions.extend(sessions);
        inner.errors.extend(errors);
        inner.concurrency.merge(&concurrency);
        inner.cache.merge(&cache);
        inner.store_forward.merge(&store_forward);
    }
}

/// The statistics of a sharded deployment: one [`BridgeStats`] per
/// shard (each updated contention-free by its own engine) plus the
/// shared lock-free [`AtomicConcurrency`] gauge they all mirror into.
#[derive(Debug, Clone)]
pub struct ShardedStats {
    shards: Vec<BridgeStats>,
    gauge: Arc<AtomicConcurrency>,
}

impl ShardedStats {
    pub(crate) fn new(shards: Vec<BridgeStats>, gauge: Arc<AtomicConcurrency>) -> Self {
        ShardedStats { shards, gauge }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stats handle of one shard.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &BridgeStats {
        &self.shards[shard]
    }

    /// The fleet-wide lifecycle counters, read lock-free from the shared
    /// gauge (exact global `peak_active` included).
    pub fn concurrency(&self) -> ConcurrencyStats {
        self.gauge.snapshot()
    }

    /// Folds every shard's snapshot into one fresh [`BridgeStats`].
    pub fn merged(&self) -> BridgeStats {
        let merged = BridgeStats::new();
        for shard in &self.shards {
            merged.merge_from(shard);
        }
        merged
    }

    /// Completed sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(BridgeStats::session_count).sum()
    }

    /// Errors recorded by any shard.
    pub fn errors(&self) -> Vec<String> {
        self.shards.iter().flat_map(BridgeStats::errors).collect()
    }

    /// Answer-cache counters summed across all shards (each shard's
    /// cache is private; only the counters aggregate).
    pub fn cache(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.merge(&shard.cache());
        }
        total
    }

    /// Shards whose engine version is draining (or retired).
    pub fn draining_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.is_draining()).count()
    }

    /// Shards whose engine version drained out and was reaped.
    pub fn retired_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.is_retired()).count()
    }

    /// Store-and-forward counters summed across all shards.
    pub fn store_forward(&self) -> StoreForwardStats {
        let mut total = StoreForwardStats::default();
        for shard in &self.shards {
            total.merge(&shard.store_forward());
        }
        total
    }

    /// Translation times of all completed sessions across all shards.
    pub fn translation_times(&self) -> Vec<SimDuration> {
        self.shards.iter().flat_map(BridgeStats::translation_times).collect()
    }

    /// Asserts consistency of every shard's stats, of their merged sum
    /// and of the lock-free fleet gauge — the whole-deployment form of
    /// [`BridgeStats::assert_consistent`].
    ///
    /// # Panics
    ///
    /// Panics (naming `context` and the shard) when any check fails.
    pub fn assert_consistent(&self, context: &str) {
        for (index, shard) in self.shards.iter().enumerate() {
            shard.assert_consistent(&format!("{context} shard {index}"));
        }
        self.merged().concurrency().assert_balanced(&format!("{context} merged"));
        self.concurrency().assert_balanced(&format!("{context} gauge"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_sessions() {
        let stats = BridgeStats::new();
        stats.record_session(SimTime::from_millis(10), SimTime::from_millis(350));
        stats.record_session(SimTime::from_millis(400), SimTime::from_millis(700));
        assert_eq!(stats.session_count(), 2);
        let times = stats.translation_times();
        assert_eq!(times[0], SimDuration::from_millis(340));
        assert_eq!(times[1], SimDuration::from_millis(300));
    }

    #[test]
    fn clones_share_state() {
        let stats = BridgeStats::new();
        let other = stats.clone();
        other.record_error("boom");
        assert_eq!(stats.errors(), vec!["boom"]);
    }

    #[test]
    fn concurrency_gauge_tracks_lifecycle() {
        let stats = BridgeStats::new();
        stats.record_session_started();
        stats.record_session_started();
        stats.record_session_started();
        let c = stats.concurrency();
        assert_eq!((c.started, c.active, c.peak_active), (3, 3, 3));
        stats.record_session(SimTime::ZERO, SimTime::from_millis(1));
        stats.record_session_failed();
        stats.record_session_expired();
        let c = stats.concurrency();
        assert_eq!(c.active, 0);
        assert_eq!(c.peak_active, 3);
        assert_eq!((c.completed, c.failed, c.expired), (1, 1, 1));
    }

    #[test]
    fn merged_counters_equal_the_sum_of_shard_counters() {
        // Three shard-local handles, all mirroring one atomic gauge.
        let gauge = Arc::new(AtomicConcurrency::new());
        let shards: Vec<BridgeStats> =
            (0..3).map(|_| BridgeStats::with_mirror(gauge.clone())).collect();
        for (i, shard) in shards.iter().enumerate() {
            for s in 0..=i as u64 {
                shard.record_session_started();
                shard.record_session(SimTime::ZERO, SimTime::from_millis(s + 1));
            }
        }
        shards[0].record_session_started();
        shards[0].record_session_failed();
        shards[2].record_session_started();
        shards[2].record_session_expired();
        shards[1].record_error("shard 1 parse error");

        // Lock-based fold.
        let merged = BridgeStats::new();
        let mut expected = ConcurrencyStats::default();
        for shard in &shards {
            merged.merge_from(shard);
            expected.merge(&shard.concurrency());
        }
        assert_eq!(merged.concurrency(), expected);
        assert_eq!(merged.session_count(), 1 + 2 + 3);
        assert_eq!(merged.errors(), vec!["shard 1 parse error"]);

        // Lock-free mirror: same totals (peak differs — the mirror
        // tracks the *global* gauge, the fold sums per-shard peaks).
        let live = gauge.snapshot();
        assert_eq!(live.started, expected.started);
        assert_eq!(live.completed, expected.completed);
        assert_eq!(live.failed, expected.failed);
        assert_eq!(live.expired, expected.expired);
        assert_eq!(live.active, 0);
    }

    #[test]
    fn balance_invariant_holds_through_every_transition_and_catches_drift() {
        let stats = BridgeStats::new();
        stats.concurrency().assert_balanced("empty");
        stats.record_session_started();
        stats.concurrency().assert_balanced("one active");
        stats.record_session(SimTime::ZERO, SimTime::from_millis(1));
        stats.record_session_started();
        stats.record_session_failed();
        stats.record_session_started();
        stats.record_session_expired();
        stats.assert_consistent("full lifecycle");
        // A hand-built drifted counter set is caught.
        let drifted = ConcurrencyStats { started: 5, completed: 2, ..ConcurrencyStats::default() };
        assert!(!drifted.is_balanced());
        let result = std::panic::catch_unwind(|| drifted.assert_balanced("drifted"));
        assert!(result.is_err(), "imbalance must panic");
    }

    #[test]
    fn store_forward_balance_is_enforced_at_quiescence() {
        let stats = BridgeStats::new();
        stats.record_session_started();
        stats.record_leg_parked();
        stats.record_leg_parked();
        stats.record_queue_overflow();
        // Mid-run: one leg still parked is fine while the session lives.
        stats.record_leg_replayed();
        let sf = stats.store_forward();
        assert_eq!((sf.parked, sf.replayed, sf.overflow, sf.abandoned), (2, 1, 1, 0));
        assert!(!sf.is_settled());
        stats.assert_consistent("active session may hold parked legs");
        // Teardown abandons the remaining leg; the balance settles.
        stats.record_legs_abandoned(1);
        stats.record_session_expired();
        assert!(stats.store_forward().is_settled());
        stats.assert_consistent("settled");
        // An unsettled quiescent handle is caught.
        let broken = BridgeStats::new();
        broken.record_leg_parked();
        let result = std::panic::catch_unwind(|| broken.assert_consistent("unsettled"));
        assert!(result.is_err(), "quiescent imbalance must panic");
    }

    #[test]
    fn atomic_mirror_tracks_global_peak_across_shards() {
        let gauge = Arc::new(AtomicConcurrency::new());
        let a = BridgeStats::with_mirror(gauge.clone());
        let b = BridgeStats::with_mirror(gauge.clone());
        a.record_session_started();
        b.record_session_started();
        a.record_session(SimTime::ZERO, SimTime::from_millis(1));
        b.record_session(SimTime::ZERO, SimTime::from_millis(1));
        // Each shard peaked at 1, but 2 sessions were live at once: only
        // the shared mirror sees it.
        assert_eq!(a.concurrency().peak_active, 1);
        assert_eq!(b.concurrency().peak_active, 1);
        assert_eq!(gauge.snapshot().peak_active, 2);
        assert_eq!(gauge.snapshot().active, 0);
    }
}
