//! Translation-time instrumentation for the Fig. 12(b) measurements:
//! "the time from when the message was first received by the framework
//! until the translated output response was sent on the output socket".

use starlink_net::{SimDuration, SimTime};
use std::sync::{Arc, Mutex, MutexGuard};

/// One completed bridge session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRecord {
    /// When the first message of the session entered the framework.
    pub started: SimTime,
    /// When the final translated response left the output socket.
    pub finished: SimTime,
}

impl SessionRecord {
    /// The translation time of this session.
    pub fn translation_time(&self) -> SimDuration {
        self.finished.since(self.started)
    }
}

#[derive(Debug, Default)]
struct Inner {
    sessions: Vec<SessionRecord>,
    /// Messages that failed to parse/translate (dropped by the engine).
    errors: Vec<String>,
}

/// Shared handle onto a bridge's statistics; clone freely — the engine
/// keeps one end, the harness the other.
#[derive(Debug, Clone, Default)]
pub struct BridgeStats {
    inner: Arc<Mutex<Inner>>,
}

impl BridgeStats {
    /// Creates an empty stats handle.
    pub fn new() -> Self {
        BridgeStats::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Single-threaded simulations cannot poison; recover regardless.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a completed session.
    pub fn record_session(&self, started: SimTime, finished: SimTime) {
        self.lock().sessions.push(SessionRecord { started, finished });
    }

    /// Records an engine-level error (message dropped).
    pub fn record_error(&self, description: impl Into<String>) {
        self.lock().errors.push(description.into());
    }

    /// Completed sessions so far.
    pub fn sessions(&self) -> Vec<SessionRecord> {
        self.lock().sessions.clone()
    }

    /// Errors recorded so far.
    pub fn errors(&self) -> Vec<String> {
        self.lock().errors.clone()
    }

    /// Number of completed sessions.
    pub fn session_count(&self) -> usize {
        self.lock().sessions.len()
    }

    /// Translation times of all completed sessions.
    pub fn translation_times(&self) -> Vec<SimDuration> {
        self.lock().sessions.iter().map(SessionRecord::translation_time).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_sessions() {
        let stats = BridgeStats::new();
        stats.record_session(SimTime::from_millis(10), SimTime::from_millis(350));
        stats.record_session(SimTime::from_millis(400), SimTime::from_millis(700));
        assert_eq!(stats.session_count(), 2);
        let times = stats.translation_times();
        assert_eq!(times[0], SimDuration::from_millis(340));
        assert_eq!(times[1], SimDuration::from_millis(300));
    }

    #[test]
    fn clones_share_state() {
        let stats = BridgeStats::new();
        let other = stats.clone();
        other.record_error("boom");
        assert_eq!(stats.errors(), vec!["boom"]);
    }
}
