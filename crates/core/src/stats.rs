//! Translation-time instrumentation for the Fig. 12(b) measurements:
//! "the time from when the message was first received by the framework
//! until the translated output response was sent on the output socket".

use starlink_net::{SimDuration, SimTime};
use std::sync::{Arc, Mutex, MutexGuard};

/// One completed bridge session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRecord {
    /// When the first message of the session entered the framework.
    pub started: SimTime,
    /// When the final translated response left the output socket.
    pub finished: SimTime,
}

impl SessionRecord {
    /// The translation time of this session.
    pub fn translation_time(&self) -> SimDuration {
        self.finished.since(self.started)
    }
}

/// Session-lifecycle counters of a multi-session bridge: how many
/// sessions were opened, how many are live right now, the concurrency
/// high-water mark, and how the closed ones ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcurrencyStats {
    /// Sessions opened since deployment.
    pub started: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Sessions torn down after a compose/emit/⊨ failure.
    pub failed: u64,
    /// Sessions reaped by the idle-expiry timer.
    pub expired: u64,
    /// Sessions live right now (the concurrency gauge).
    pub active: u64,
    /// Highest number of simultaneously live sessions observed.
    pub peak_active: u64,
}

#[derive(Debug, Default)]
struct Inner {
    sessions: Vec<SessionRecord>,
    /// Messages that failed to parse/translate (dropped by the engine).
    errors: Vec<String>,
    /// Session-lifecycle counters.
    concurrency: ConcurrencyStats,
}

/// Shared handle onto a bridge's statistics; clone freely — the engine
/// keeps one end, the harness the other.
#[derive(Debug, Clone, Default)]
pub struct BridgeStats {
    inner: Arc<Mutex<Inner>>,
}

impl BridgeStats {
    /// Creates an empty stats handle.
    pub fn new() -> Self {
        BridgeStats::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Single-threaded simulations cannot poison; recover regardless.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a completed session.
    pub fn record_session(&self, started: SimTime, finished: SimTime) {
        let mut inner = self.lock();
        inner.sessions.push(SessionRecord { started, finished });
        inner.concurrency.completed += 1;
        inner.concurrency.active = inner.concurrency.active.saturating_sub(1);
    }

    /// Records a session opening (the concurrency gauge rises).
    pub fn record_session_started(&self) {
        let mut inner = self.lock();
        inner.concurrency.started += 1;
        inner.concurrency.active += 1;
        inner.concurrency.peak_active = inner.concurrency.peak_active.max(inner.concurrency.active);
    }

    /// Records a session torn down after a compose/emit/⊨ failure (the
    /// failure itself is recorded separately via [`BridgeStats::record_error`]).
    pub fn record_session_failed(&self) {
        let mut inner = self.lock();
        inner.concurrency.failed += 1;
        inner.concurrency.active = inner.concurrency.active.saturating_sub(1);
    }

    /// Records a session reaped by the idle-expiry timer.
    pub fn record_session_expired(&self) {
        let mut inner = self.lock();
        inner.concurrency.expired += 1;
        inner.concurrency.active = inner.concurrency.active.saturating_sub(1);
    }

    /// The session-lifecycle counters.
    pub fn concurrency(&self) -> ConcurrencyStats {
        self.lock().concurrency
    }

    /// Records an engine-level error (message dropped).
    pub fn record_error(&self, description: impl Into<String>) {
        self.lock().errors.push(description.into());
    }

    /// Completed sessions so far.
    pub fn sessions(&self) -> Vec<SessionRecord> {
        self.lock().sessions.clone()
    }

    /// Errors recorded so far.
    pub fn errors(&self) -> Vec<String> {
        self.lock().errors.clone()
    }

    /// Number of completed sessions.
    pub fn session_count(&self) -> usize {
        self.lock().sessions.len()
    }

    /// Translation times of all completed sessions.
    pub fn translation_times(&self) -> Vec<SimDuration> {
        self.lock().sessions.iter().map(SessionRecord::translation_time).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_sessions() {
        let stats = BridgeStats::new();
        stats.record_session(SimTime::from_millis(10), SimTime::from_millis(350));
        stats.record_session(SimTime::from_millis(400), SimTime::from_millis(700));
        assert_eq!(stats.session_count(), 2);
        let times = stats.translation_times();
        assert_eq!(times[0], SimDuration::from_millis(340));
        assert_eq!(times[1], SimDuration::from_millis(300));
    }

    #[test]
    fn clones_share_state() {
        let stats = BridgeStats::new();
        let other = stats.clone();
        other.record_error("boom");
        assert_eq!(stats.errors(), vec!["boom"]);
    }

    #[test]
    fn concurrency_gauge_tracks_lifecycle() {
        let stats = BridgeStats::new();
        stats.record_session_started();
        stats.record_session_started();
        stats.record_session_started();
        let c = stats.concurrency();
        assert_eq!((c.started, c.active, c.peak_active), (3, 3, 3));
        stats.record_session(SimTime::ZERO, SimTime::from_millis(1));
        stats.record_session_failed();
        stats.record_session_expired();
        let c = stats.concurrency();
        assert_eq!(c.active, 0);
        assert_eq!(c.peak_active, 3);
        assert_eq!((c.completed, c.failed, c.expired), (1, 1, 1));
    }
}
