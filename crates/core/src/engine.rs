//! The Automata Engine (§IV-B): a network actor that "executes the
//! behaviour of the merged automata i.e. it controls the sequence of
//! sending, receiving and translation of messages".
//!
//! One [`BridgeEngine`] is deployed per bridge, but — mediating
//! connectors serve many simultaneous interaction pairs — it is a
//! **multi-session runtime**, not a single state machine. Every
//! concurrently active client drives its own [`Execution`] inside a
//! session table:
//!
//! * **Keying** — a session is identified by its originator: the source
//!   [`SimAddr`] of the first datagram ([`SessionKey::Peer`]) or the
//!   accepted connection for TCP-originated flows ([`SessionKey::Conn`]).
//!   A pluggable [`SessionCorrelator`] can override this with
//!   protocol-level keys (XID/transaction-id style,
//!   [`SessionKey::Correlated`]) so retransmissions collapse onto one
//!   session and responses match by id rather than arrival order.
//! * **Routing** — each inbound datagram/TCP event is routed to exactly
//!   one session: by correlation key, by source address, or — for
//!   replies arriving from the *target* side of the bridge, whose source
//!   is the legacy service, not the originator — to the oldest session
//!   whose execution is waiting to receive that message on that part.
//! * **Lifecycle** — sessions are created lazily on the first
//!   successfully delivered message, reaped on completion, torn down on
//!   compose/emit/⊨ failure (a failed session can never wedge the
//!   bridge), and expired by a timer-driven idle timeout
//!   ([`EngineConfig::idle_timeout`]).
//!
//! At receiving states a session listens on the state's colour
//! (port/group), parses arriving bytes with the protocol's MDL codec,
//! and advances its execution; bridge (δ) states apply translation logic
//! and λ actions; at sending states it composes the translated abstract
//! message and emits it with the colour's network semantics (unicast
//! reply, multicast group, or TCP connection pointed by a prior
//! `set_host`).
//!
//! All routing decisions are **precomputed at deployment**: datagram →
//! part and listener → part lookup tables, the per-state emit plans
//! (transport/port/group), and the blank schema instances a fresh session
//! needs. The per-message path does table lookups and reuses one compose
//! scratch buffer — it allocates only what the network layer must own.

use crate::error::{CoreError, Result};
use crate::fused::{correlation_id, FuseReject, FusedPlan, ReplayEcho};
use crate::stats::BridgeStats;
use fxhash::FxHashMap;
use starlink_automata::{
    Action, Execution, FunctionRegistry, FusedArg, FusedOut, GlobalState, MergedAutomaton, PartId,
    ResolvedAction, StateId, StepOutcome, Transport,
};
use starlink_mdl::{FlatRecord, MdlCodec};
use starlink_message::AbstractMessage;
use starlink_net::{
    Actor, ConnId, Context, Datagram, SimAddr, SimDuration, SimTime, TcpEvent, TimerId,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Identity of a bridge session: who originated the interaction.
///
/// Hashable so the session table (and [`crate::ShardedBridge`]'s shard
/// pinning) can use fast hash maps instead of ordered trees.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SessionKey {
    /// A UDP-originated session, keyed by the originator's endpoint.
    Peer(SimAddr),
    /// A TCP-originated session, keyed by the accepted connection.
    Conn(ConnId),
    /// A correlator-derived key: (part index, protocol-level id), e.g.
    /// an SLP XID or DNS transaction id.
    Correlated(usize, u64),
}

impl std::fmt::Display for SessionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionKey::Peer(addr) => write!(f, "peer {addr}"),
            SessionKey::Conn(conn) => write!(f, "conn #{}", conn.0),
            SessionKey::Correlated(part, id) => write!(f, "part#{part} id {id:#x}"),
        }
    }
}

/// Per-protocol session correlation hook (§IV's engine is model-driven;
/// how a protocol correlates request and response — XID, transaction id,
/// source endpoint — is itself protocol knowledge, so it plugs in).
///
/// Both hooks default to `None`, which selects the engine's built-in
/// routing: source-address keying for originators plus oldest-waiting-
/// receiver matching for replies from the target side.
pub trait SessionCorrelator: Send + Sync {
    /// Derives the session key an *inbound* message belongs to.
    fn inbound_key(
        &self,
        _part: usize,
        _protocol: &str,
        _message: &AbstractMessage,
        _from: &SimAddr,
    ) -> Option<SessionKey> {
        None
    }

    /// Derives an alias key from an *outbound* message, so the reply that
    /// echoes the same id finds the session that sent it.
    fn outbound_key(
        &self,
        _part: usize,
        _protocol: &str,
        _message: &AbstractMessage,
    ) -> Option<SessionKey> {
        None
    }

    /// The field instances of `message` carry their correlation id in,
    /// when this correlator keys on a single field — the declarative
    /// form of [`SessionCorrelator::inbound_key`] the fused fast path
    /// compiles into a slot read. Correlators that derive keys any other
    /// way return `None` (the default), which keeps their bridges on the
    /// interpreted path where the procedural hooks run unchanged.
    fn id_field(&self, _protocol: &str, _message: &str) -> Option<&str> {
        None
    }
}

/// A [`SessionCorrelator`] that keys sessions on an id field per
/// protocol (e.g. SLP's `XID`, DNS's `ID`): XID-style correlation as a
/// reusable model. Numeric ids key directly; textual ids (WS-Discovery's
/// `urn:uuid:...` MessageID) are hashed to the 64-bit key space.
///
/// Some protocols carry the id under *different field names per message*
/// — a WS-Discovery request's `MessageID` is echoed as the response's
/// `RelatesTo` — so a per-message override
/// ([`FieldCorrelator::message_field`]) takes precedence over the
/// per-protocol entry:
///
/// ```
/// use starlink_core::FieldCorrelator;
///
/// let correlator = FieldCorrelator::new([("SLP", "XID"), ("DNS", "ID")])
///     .message_field("WSD_Probe", "MessageID")
///     .message_field("WSD_ProbeMatch", "RelatesTo");
/// # let _ = correlator;
/// ```
#[derive(Debug, Clone, Default)]
pub struct FieldCorrelator {
    /// protocol → id field, for every message of the protocol.
    fields: BTreeMap<String, String>,
    /// message name → id field, overriding the protocol entry.
    message_fields: BTreeMap<String, String>,
}

impl FieldCorrelator {
    /// Creates a correlator mapping protocol names to the field carrying
    /// their transaction id.
    pub fn new<P: Into<String>, F: Into<String>>(pairs: impl IntoIterator<Item = (P, F)>) -> Self {
        FieldCorrelator {
            fields: pairs.into_iter().map(|(p, f)| (p.into(), f.into())).collect(),
            message_fields: BTreeMap::new(),
        }
    }

    /// Builder: keys instances of `message` on `field`, overriding the
    /// protocol-level entry (request/response pairs whose id travels
    /// under two names, like `MessageID` ↔ `RelatesTo`).
    pub fn message_field(mut self, message: impl Into<String>, field: impl Into<String>) -> Self {
        self.message_fields.insert(message.into(), field.into());
        self
    }

    fn key_of(&self, part: usize, protocol: &str, message: &AbstractMessage) -> Option<SessionKey> {
        let field =
            self.message_fields.get(message.name()).or_else(|| self.fields.get(protocol))?;
        let value = message.get(&field.as_str().into()).ok()?;
        let id = match value.as_u64() {
            Ok(id) => id,
            // Textual ids (uuids) key by hash; an empty value means the
            // field went unfilled and cannot correlate anything.
            Err(_) => match value.as_str() {
                Ok(text) if !text.is_empty() => fxhash::hash64(text),
                _ => return None,
            },
        };
        Some(SessionKey::Correlated(part, id))
    }
}

impl SessionCorrelator for FieldCorrelator {
    fn inbound_key(
        &self,
        part: usize,
        protocol: &str,
        message: &AbstractMessage,
        _from: &SimAddr,
    ) -> Option<SessionKey> {
        self.key_of(part, protocol, message)
    }

    fn outbound_key(
        &self,
        part: usize,
        protocol: &str,
        message: &AbstractMessage,
    ) -> Option<SessionKey> {
        self.key_of(part, protocol, message)
    }

    fn id_field(&self, protocol: &str, message: &str) -> Option<&str> {
        self.message_fields.get(message).or_else(|| self.fields.get(protocol)).map(String::as_str)
    }
}

/// Store-and-forward policy: instead of silently losing egress legs to
/// a partitioned, pass-closed or saturated link, a session parks them
/// in a bounded queue and retransmits on a calibrated interval until
/// the link heals (delay-tolerant discovery over contended links).
///
/// `Copy` so harness workload descriptors can embed it without losing
/// their own `Copy` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreForward {
    /// Maximum parked legs per session. A leg arriving at a full queue
    /// is refused and counted as a queue overflow — the session itself
    /// survives (and may later idle-expire).
    pub queue_bound: usize,
    /// How long to wait between replay attempts. Calibrate below the
    /// connectivity-window length so a heal is noticed within the
    /// window that granted it.
    pub retry_interval: SimDuration,
    /// Replay attempts before the engine gives up: parked legs are
    /// abandoned and the session is torn down as failed.
    pub max_retries: u32,
    /// Egress counts as saturated when more than this many bytes are
    /// already in flight on the link (`0` disables the saturation
    /// signal; partition/pass gating still applies).
    pub saturation_bytes: u64,
}

impl Default for StoreForward {
    fn default() -> Self {
        StoreForward {
            queue_bound: 8,
            retry_interval: SimDuration::from_millis(5),
            max_retries: 16,
            saturation_bytes: 0,
        }
    }
}

/// Runtime policy of a deployed engine.
#[derive(Clone)]
pub struct EngineConfig {
    /// A session with no activity for this long is expired and torn
    /// down. Must exceed the slowest legacy response delay (OpenSLP
    /// answers after ~6 s).
    pub idle_timeout: SimDuration,
    /// Optional protocol-level session correlation hook.
    pub correlator: Option<Arc<dyn SessionCorrelator>>,
    /// Time-to-live of cached answers on the fused fast path. `None`
    /// (the default) disables the answer cache; `Some(ttl)` lets a
    /// fused bridge serve repeated equivalent queries from its
    /// shard-local cache for `ttl` after the legacy response arrived.
    /// Interpreted bridges ignore this.
    pub answer_ttl: Option<SimDuration>,
    /// Skips fused-plan compilation even for fusable bridges, pinning
    /// the engine to the interpreted path (differential testing and
    /// baseline benchmarks).
    pub force_interpreted: bool,
    /// Store-and-forward session mode. `None` (the default) keeps the
    /// fail-fast behaviour: an egress leg meeting a dead link is simply
    /// handed to the network and lost. `Some(policy)` parks such legs
    /// and replays them when connectivity returns.
    pub store_forward: Option<StoreForward>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            idle_timeout: SimDuration::from_secs(30),
            correlator: None,
            answer_ttl: None,
            force_interpreted: false,
            store_forward: None,
        }
    }
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("idle_timeout", &self.idle_timeout)
            .field("correlator", &self.correlator.as_ref().map(|_| "<dyn>"))
            .field("answer_ttl", &self.answer_ttl)
            .field("force_interpreted", &self.force_interpreted)
            .field("store_forward", &self.store_forward)
            .finish()
    }
}

/// Per-part (per-protocol) networking state of one session.
#[derive(Debug, Default)]
struct PartState {
    /// Source of the last datagram received for this part — replies go
    /// back there (request/response over UDP).
    reply_to: Option<SimAddr>,
    /// Connection accepted on this part's listening port (we are the
    /// server side, e.g. serving HTTP GET in the UPnP→SLP case).
    server_conn: Option<ConnId>,
    /// Connection we initiated (client side, e.g. fetching the device
    /// description in the SLP→UPnP case).
    client_conn: Option<ConnId>,
    /// Payloads composed before the client connection finished its
    /// handshake; flushed on `Connected`.
    pending_out: VecDeque<Vec<u8>>,
}

/// One UDP egress leg parked by store-and-forward: everything needed to
/// replay the send once the link heals.
#[derive(Debug)]
struct ParkedLeg {
    port: u16,
    destination: SimAddr,
    payload: Vec<u8>,
}

/// One live interaction pair: the per-client state the engine multiplexes.
#[derive(Debug)]
struct Session {
    exec: Execution,
    /// When the first message of the session entered the framework.
    started: SimTime,
    /// Last time an event touched this session (idle-expiry clock).
    last_activity: SimTime,
    /// Creation order, for deterministic oldest-first reply matching.
    seq: u64,
    set_host: Option<SimAddr>,
    parts: Vec<PartState>,
    /// Connections owned by this session.
    conns: Vec<ConnId>,
    /// Correlator-registered alias keys pointing at this session.
    aliases: Vec<SessionKey>,
    /// Pending idle-expiry timer (id for cancellation, tag for lookup).
    timer: Option<(TimerId, u64)>,
    /// Set when a compose/emit/⊨ failure condemned the session.
    failed: bool,
    /// Egress legs parked by store-and-forward, FIFO.
    parked: VecDeque<ParkedLeg>,
    /// Replay attempts made since the last successful flush.
    retries: u32,
    /// Pending replay timer (id for cancellation, tag for lookup).
    retry_timer: Option<(TimerId, u64)>,
}

/// Network semantics of sending from one state, resolved at deployment.
#[derive(Debug, Clone)]
struct EmitSpec {
    transport: Transport,
    port: u16,
    /// The colour's multicast group endpoint, pre-built.
    group: Option<SimAddr>,
}

/// Where an inbound message should go.
enum Route {
    /// An existing session claims it.
    Existing(SessionKey),
    /// No session claims it; a new one may be opened under this key.
    Fresh(SessionKey),
}

/// A cached answer on the fused fast path: the legacy service's parsed
/// response, replayed through the backward translation steps for each
/// equivalent query until it expires.
#[derive(Debug)]
struct CachedAnswer {
    /// Canonical key bytes, compared on lookup so a 64-bit hash
    /// collision degrades to a miss instead of a wrong answer.
    key: Vec<u8>,
    response: FlatRecord,
    expires_at: SimTime,
}

/// One in-flight exchange on the fused fast path: the slot-record
/// sibling of [`Session`], carrying just what the four-step relay needs.
#[derive(Debug)]
struct FusedSession {
    started: SimTime,
    last_activity: SimTime,
    seq: u64,
    /// The parsed request, kept to personalise the response (echoed
    /// ids) and to key the answer cache.
    request: FlatRecord,
    /// The raw request wire, kept (only while the answer cache is on)
    /// to build a [`ReplayTemplate`] when the response arrives.
    request_wire: Vec<u8>,
    /// The originator; the translated response goes back here.
    reply_to: SimAddr,
    aliases: Vec<SessionKey>,
    timer: Option<(TimerId, u64)>,
    cache_hash: Option<u64>,
    cache_key: Vec<u8>,
    /// Egress legs parked by store-and-forward, FIFO.
    parked: VecDeque<ParkedLeg>,
    /// Replay attempts made since the last successful flush.
    retries: u32,
    /// Pending replay timer (id for cancellation, tag for lookup).
    retry_timer: Option<(TimerId, u64)>,
    /// The parked leg is the translated reply: flushing it completes
    /// the exchange (the session records completion, not re-insertion).
    complete_on_flush: bool,
}

/// Bound on cached answers per engine: a flood of *distinct* queries
/// must not grow the cache without limit. At the cap, new answers are
/// simply not cached (existing keys still refresh).
const FUSED_CACHE_CAP: usize = 65_536;

/// A wire-level replay template layered over one [`CachedAnswer`]: a
/// duplicate query whose bytes match `request` everywhere outside
/// `id_span` is answered by copying `reply` and re-personalising its
/// id-dependent spans (`echoes`) from the incoming id bytes — no
/// parse, no translation, no compose. Proven sound per exchange by
/// [`FusedPlan::build_replay_parts`]; queries that miss every template
/// (different length, different fields, a foreign encoder) fall
/// through to the record-replay path, so a template is only ever a
/// shortcut, never a behaviour change.
#[derive(Debug)]
struct ReplayTemplate {
    request: Vec<u8>,
    id_span: std::ops::Range<usize>,
    reply: Vec<u8>,
    echoes: Vec<ReplayEcho>,
    /// The backing answer-cache entry; the template is dropped with it.
    cache_hash: u64,
    expires_at: SimTime,
}

impl ReplayTemplate {
    /// Serves `incoming` into `out` when it matches this template;
    /// leaves `out` unspecified and returns `false` otherwise.
    fn replay_into(&self, incoming: &[u8], out: &mut Vec<u8>, scratch: &mut String) -> bool {
        let span = &self.id_span;
        if incoming.len() != self.request.len()
            || incoming[..span.start] != self.request[..span.start]
            || incoming[span.end..] != self.request[span.end..]
        {
            return false;
        }
        out.clear();
        out.extend_from_slice(&self.reply);
        let id = &incoming[span.clone()];
        for echo in &self.echoes {
            match *echo {
                ReplayEcho::Verbatim { offset } => {
                    out[offset..offset + id.len()].copy_from_slice(id);
                }
                ReplayEcho::Derived { offset, len, func } => {
                    // Re-run the proven builtin on the incoming id. The
                    // splice only fits when the output length matches
                    // the template's; anything else (including a
                    // non-UTF-8 or padded id the flat parser would read
                    // differently from its wire span) falls back to the
                    // normal path.
                    let Ok(text) = std::str::from_utf8(id) else {
                        return false;
                    };
                    if text.trim() != text {
                        return false;
                    }
                    scratch.clear();
                    match func.apply(FusedArg::Text(text), scratch) {
                        Ok(FusedOut::Text) if scratch.len() == len => {
                            out[offset..offset + len].copy_from_slice(scratch.as_bytes());
                        }
                        _ => return false,
                    }
                }
            }
        }
        true
    }
}

/// Bound on live replay templates per engine: one per *distinct* hot
/// query suffices for a duplicate flood, so the list stays tiny and a
/// linear scan beats any index. At the cap, new exchanges simply get no
/// template (the record cache still serves them).
const REPLAY_TEMPLATE_CAP: usize = 64;

/// The per-engine state of the fused fast path: the compiled plan, its
/// session table, the shard-local answer cache, and the reusable
/// records/buffers that keep the steady-state path allocation-free.
#[derive(Debug)]
struct FusedRuntime {
    plan: FusedPlan,
    sessions: FxHashMap<SessionKey, FusedSession>,
    cache: FxHashMap<u64, CachedAnswer>,
    /// Wire-level replay templates over the hottest cache entries.
    templates: Vec<ReplayTemplate>,
    /// Scratch: inbound parse target, translation output, step text
    /// buffer, cache-key buffer, wire-compose buffer.
    parse_rec: FlatRecord,
    out_rec: FlatRecord,
    probe_rec: FlatRecord,
    scratch: String,
    key_buf: Vec<u8>,
    wire_buf: Vec<u8>,
    /// Emit plans resolved at deployment: the outbound query goes to
    /// the target colour's group, the reply unicasts from the source
    /// colour's port.
    req_spec: EmitSpec,
    req_group: SimAddr,
    resp_spec: EmitSpec,
}

/// The deployed bridge: implements [`Actor`] so it can be dropped into a
/// simulation as "the framework ... transparently deployed in the
/// network" (§IV).
pub struct BridgeEngine {
    automaton: Arc<MergedAutomaton>,
    codecs: Vec<Arc<MdlCodec>>,
    functions: Arc<FunctionRegistry>,
    stats: BridgeStats,
    config: EngineConfig,
    /// The session table: one live execution per interaction pair.
    /// Ordered iteration is never needed — routing picks sessions by
    /// minimum `seq`, not map order — so every per-message lookup table
    /// here uses the fast non-cryptographic hasher from `fxhash`.
    sessions: FxHashMap<SessionKey, Session>,
    /// Correlator-registered alias → primary session key.
    aliases: FxHashMap<SessionKey, SessionKey>,
    /// Open connection → (owning session, part).
    conn_sessions: FxHashMap<ConnId, (SessionKey, usize)>,
    /// Pending expiry-timer tag → session key.
    timer_sessions: FxHashMap<u64, SessionKey>,
    /// Pending store-and-forward replay-timer tag → session key.
    retry_sessions: FxHashMap<u64, SessionKey>,
    next_timer_tag: u64,
    next_session_seq: u64,
    /// Per-connection stream reassembly buffers.
    buffers: FxHashMap<ConnId, Vec<u8>>,
    /// (UDP port, multicast group) → part, first declaration wins.
    udp_exact: FxHashMap<(u16, Arc<str>), usize>,
    /// UDP port → part for unicast delivery (responses come back unicast
    /// even on multicast colours). Cross-part collisions are rejected at
    /// deployment.
    udp_fallback: FxHashMap<u16, usize>,
    /// TCP listening port → part; cross-part collisions rejected.
    tcp_parts: FxHashMap<u16, usize>,
    /// Per-state emit plans.
    emit_specs: FxHashMap<GlobalState, EmitSpec>,
    /// Blank schema-typed instances for every message the bridge may
    /// compose; cloned into each fresh session's store.
    blank_instances: Vec<AbstractMessage>,
    /// Scratch buffer reused by every compose, across all sessions.
    compose_buf: Vec<u8>,
    /// The fused fast path, when the bridge's structure admits one.
    /// `Some` routes every datagram and timer through the slot-record
    /// relay; `None` runs the interpreted engine above.
    fused: Option<Box<FusedRuntime>>,
    /// Why fusion was rejected (diagnostics; `None` when fused).
    fused_reject: Option<FuseReject>,
}

impl std::fmt::Debug for BridgeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BridgeEngine")
            .field("automaton", &self.automaton.name())
            .field("active_sessions", &self.sessions.len())
            .finish()
    }
}

impl BridgeEngine {
    /// Creates an engine for `automaton`; `codecs` must be indexed by the
    /// automaton's part order (the framework resolves them by protocol
    /// name). All routing tables are computed here, once.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Deployment`] when two parts declare colours
    /// on the same UDP port or TCP listening port — such a bridge cannot
    /// route inbound traffic unambiguously, so the collision surfaces at
    /// deployment instead of as silent misrouting.
    pub(crate) fn new(
        automaton: Arc<MergedAutomaton>,
        codecs: Vec<Arc<MdlCodec>>,
        functions: Arc<FunctionRegistry>,
        stats: BridgeStats,
        config: EngineConfig,
    ) -> Result<Self> {
        let mut udp_exact: FxHashMap<(u16, Arc<str>), usize> = FxHashMap::default();
        let mut udp_fallback: FxHashMap<u16, usize> = FxHashMap::default();
        let mut tcp_parts: FxHashMap<u16, usize> = FxHashMap::default();
        for (index, part) in automaton.parts().iter().enumerate() {
            for color in part.colors() {
                match color.transport() {
                    Transport::Udp => {
                        if let Some(group) = color.group() {
                            udp_exact.entry((color.port(), Arc::from(group))).or_insert(index);
                        }
                        if let Some(&prev) = udp_fallback.get(&color.port()) {
                            if prev != index {
                                return Err(CoreError::Deployment(format!(
                                    "parts {:?} and {:?} both declare colours on UDP port {}: \
                                     inbound datagrams would be misrouted",
                                    automaton.parts()[prev].protocol(),
                                    part.protocol(),
                                    color.port()
                                )));
                            }
                        }
                        udp_fallback.insert(color.port(), index);
                    }
                    Transport::Tcp => {
                        if let Some(&prev) = tcp_parts.get(&color.port()) {
                            if prev != index {
                                return Err(CoreError::Deployment(format!(
                                    "parts {:?} and {:?} both listen on TCP port {}",
                                    automaton.parts()[prev].protocol(),
                                    part.protocol(),
                                    color.port()
                                )));
                            }
                        }
                        tcp_parts.insert(color.port(), index);
                    }
                }
            }
        }

        let mut emit_specs = FxHashMap::default();
        for (pi, part) in automaton.parts().iter().enumerate() {
            for si in 0..part.states().len() {
                let gs = GlobalState { part: PartId(pi), state: StateId(si) };
                if let Ok(color) = part.color_of(StateId(si)) {
                    emit_specs.insert(
                        gs,
                        EmitSpec {
                            transport: color.transport(),
                            port: color.port(),
                            group: color.group().map(|g| SimAddr::new(g, color.port())),
                        },
                    );
                }
            }
        }

        // Schema-typed blank instances for every message the bridge may
        // need to compose (assignment targets and send-transition labels).
        let mut targets: BTreeSet<&str> = BTreeSet::new();
        for assignment in automaton.assignments() {
            targets.insert(&assignment.target_message);
        }
        for part in automaton.parts() {
            for transition in part.transitions() {
                if transition.action == Action::Send {
                    targets.insert(&transition.message);
                }
            }
        }
        let mut blank_instances = Vec::with_capacity(targets.len());
        for name in targets {
            for codec in &codecs {
                if let Ok(schema) = codec.schema(name) {
                    blank_instances.push(schema.instantiate());
                    break;
                }
            }
        }

        // Attempt the fused fast path: a structural probe over the
        // automaton plus the codecs' flat plans. Any rejection keeps
        // the interpreted engine — never an error.
        let (fused, fused_reject) = if config.force_interpreted {
            (None, Some(FuseReject::ForcedInterpreted))
        } else {
            match FusedPlan::compile(&automaton, &codecs, config.correlator.as_deref(), &functions)
            {
                Ok(plan) => {
                    let req_spec = emit_specs.get(&plan.req_out_state()).cloned();
                    let resp_spec = emit_specs.get(&plan.resp_out_state()).cloned();
                    match (req_spec, resp_spec) {
                        (Some(req_spec), Some(resp_spec)) if req_spec.group.is_some() => {
                            let req_group = req_spec.group.clone().expect("checked above");
                            (
                                Some(Box::new(FusedRuntime {
                                    plan,
                                    sessions: FxHashMap::default(),
                                    cache: FxHashMap::default(),
                                    templates: Vec::new(),
                                    parse_rec: FlatRecord::new(),
                                    out_rec: FlatRecord::new(),
                                    probe_rec: FlatRecord::new(),
                                    scratch: String::new(),
                                    key_buf: Vec::new(),
                                    wire_buf: Vec::new(),
                                    req_spec,
                                    req_group,
                                    resp_spec,
                                })),
                                None,
                            )
                        }
                        _ => (None, Some(FuseReject::NoMulticastGroup)),
                    }
                }
                Err(reason) => (None, Some(reason)),
            }
        };

        Ok(BridgeEngine {
            automaton,
            codecs,
            functions,
            stats,
            config,
            sessions: FxHashMap::default(),
            aliases: FxHashMap::default(),
            conn_sessions: FxHashMap::default(),
            timer_sessions: FxHashMap::default(),
            retry_sessions: FxHashMap::default(),
            next_timer_tag: 0,
            next_session_seq: 0,
            buffers: FxHashMap::default(),
            udp_exact,
            udp_fallback,
            tcp_parts,
            emit_specs,
            blank_instances,
            compose_buf: Vec::new(),
            fused,
            fused_reject,
        })
    }

    /// Whether this engine runs the fused parse→translate→compose fast
    /// path (the interpreted engine otherwise).
    pub fn is_fused(&self) -> bool {
        self.fused.is_some()
    }

    /// Why the fused fast path was rejected for this bridge, when it
    /// was (`None` on fused engines).
    pub fn fused_reject(&self) -> Option<&FuseReject> {
        self.fused_reject.as_ref()
    }

    /// The reject reason rendered as text (`None` on fused engines).
    pub fn fused_reject_reason(&self) -> Option<String> {
        self.fused_reject.as_ref().map(|r| r.to_string())
    }

    /// The stats handle shared with the harness.
    pub fn stats(&self) -> BridgeStats {
        self.stats.clone()
    }

    /// Builds a fresh session resting in the automaton's initial state,
    /// with the precomputed blank instances registered in its store.
    fn fresh_session(&mut self, now: SimTime) -> Session {
        let mut exec = Execution::new(self.automaton.clone(), self.functions.clone());
        for blank in &self.blank_instances {
            exec.store_mut().insert(blank.clone());
        }
        let seq = self.next_session_seq;
        self.next_session_seq += 1;
        Session {
            exec,
            started: now,
            last_activity: now,
            seq,
            set_host: None,
            parts: (0..self.automaton.parts().len()).map(|_| PartState::default()).collect(),
            conns: Vec::new(),
            aliases: Vec::new(),
            timer: None,
            failed: false,
            parked: VecDeque::new(),
            retries: 0,
            retry_timer: None,
        }
    }

    /// Finds the part a datagram belongs to by its destination port
    /// (and, for multicast, group address) — a table lookup.
    fn part_for_datagram(&self, datagram: &Datagram) -> Option<usize> {
        if datagram.to.is_multicast() {
            let key = (datagram.to.port, datagram.to.host.clone());
            if let Some(&part) = self.udp_exact.get(&key) {
                return Some(part);
            }
        }
        self.udp_fallback.get(&datagram.to.port).copied()
    }

    fn part_for_listener(&self, local_port: u16) -> Option<usize> {
        self.tcp_parts.get(&local_port).copied()
    }

    /// Decides which session an inbound datagram belongs to: correlator
    /// key first, then source-address key, then the oldest session whose
    /// execution is waiting to receive this message on this part
    /// (replies from the target side arrive from the legacy service's
    /// address, never the originator's).
    fn route_inbound(&self, part: usize, message: &AbstractMessage, from: &SimAddr) -> Route {
        if let Some(correlator) = &self.config.correlator {
            let protocol = self.automaton.parts()[part].protocol();
            if let Some(key) = correlator.inbound_key(part, protocol, message, from) {
                let key = self.aliases.get(&key).cloned().unwrap_or(key);
                return if self.sessions.contains_key(&key) {
                    Route::Existing(key)
                } else {
                    Route::Fresh(key)
                };
            }
        }
        let peer = SessionKey::Peer(from.clone());
        if self.sessions.contains_key(&peer) {
            return Route::Existing(peer);
        }
        if let Some(key) = self.waiting_receiver(part, message.name()) {
            return Route::Existing(key);
        }
        Route::Fresh(peer)
    }

    /// The oldest live session whose execution rests in `part` at a
    /// state with a receive transition for `name`. (Failed sessions are
    /// torn down in `conclude`, so everything in the table is live.)
    fn waiting_receiver(&self, part: usize, name: &str) -> Option<SessionKey> {
        self.sessions
            .iter()
            .filter(|(_, session)| {
                session.exec.current().part.0 == part && session.exec.expects_receive(name)
            })
            .min_by_key(|(_, session)| session.seq)
            .map(|(key, _)| key.clone())
    }

    /// Arms the idle-expiry timer for a freshly registered session.
    fn arm_expiry(&mut self, ctx: &mut Context<'_>, key: &SessionKey, session: &mut Session) {
        let tag = self.next_timer_tag;
        self.next_timer_tag += 1;
        let id = ctx.set_timer(self.config.idle_timeout, tag);
        self.timer_sessions.insert(tag, key.clone());
        session.timer = Some((id, tag));
    }

    /// Whether a UDP egress leg towards `destination` would meet a dead
    /// or saturated link right now — the store-and-forward park signal.
    fn egress_blocked(ctx: &mut Context<'_>, policy: &StoreForward, destination: &SimAddr) -> bool {
        !ctx.link_open(destination)
            || (policy.saturation_bytes > 0
                && ctx.link_backlog(destination) > policy.saturation_bytes)
    }

    /// Arms (or re-arms) the store-and-forward replay timer; the tag is
    /// returned so fused sessions can record it too.
    fn arm_retry(
        &mut self,
        ctx: &mut Context<'_>,
        key: &SessionKey,
        interval: SimDuration,
    ) -> (TimerId, u64) {
        let tag = self.next_timer_tag;
        self.next_timer_tag += 1;
        let id = ctx.set_timer(interval, tag);
        self.retry_sessions.insert(tag, key.clone());
        (id, tag)
    }

    /// Unlinks a session's engine-level bookkeeping: expiry timer,
    /// aliases, connection routes, stream buffers and any parked
    /// store-and-forward legs (which are abandoned, keeping the
    /// parked/replayed/abandoned balance exact).
    fn unlink(&mut self, ctx: &mut Context<'_>, session: &mut Session) {
        if let Some((id, tag)) = session.timer.take() {
            if self.timer_sessions.remove(&tag).is_some() {
                ctx.cancel_timer(id);
            }
        }
        if let Some((id, tag)) = session.retry_timer.take() {
            if self.retry_sessions.remove(&tag).is_some() {
                ctx.cancel_timer(id);
            }
        }
        if !session.parked.is_empty() {
            self.stats.record_legs_abandoned(session.parked.len() as u64);
            session.parked.clear();
        }
        for alias in session.aliases.drain(..) {
            self.aliases.remove(&alias);
        }
        for conn in session.conns.drain(..) {
            self.conn_sessions.remove(&conn);
            self.buffers.remove(&conn);
        }
    }

    /// Ends a session after an event: reaped on completion, torn down on
    /// failure, or put back into the table. A completed execution whose
    /// final legs are still parked stays in the table until the replay
    /// timer flushes them — completion is recorded when the last byte
    /// actually leaves.
    fn conclude(&mut self, ctx: &mut Context<'_>, key: SessionKey, mut session: Session) {
        if session.failed {
            self.unlink(ctx, &mut session);
            self.stats.record_session_failed();
            ctx.trace(format!("bridge session {key} failed and was torn down"));
        } else if self.session_complete(&session) && session.parked.is_empty() {
            self.unlink(ctx, &mut session);
            self.stats.record_session(session.started, ctx.now());
            ctx.trace(format!("bridge session complete in {}", ctx.now().since(session.started)));
        } else {
            self.sessions.insert(key, session);
        }
    }

    fn session_complete(&self, session: &Session) -> bool {
        session.exec.at_accepting()
            || (!session.exec.history().is_empty()
                && session.exec.current() == self.automaton.initial())
    }

    fn apply_actions(&self, ctx: &mut Context<'_>, session: &mut Session, outcome: &StepOutcome) {
        for action in &outcome.actions {
            match action {
                ResolvedAction::SetHost { host, port } => {
                    ctx.trace(format!("bridge λ set_host({host}, {port})"));
                    session.set_host = Some(SimAddr::new(host.as_str(), *port));
                }
                ResolvedAction::Custom { name, .. } => {
                    ctx.trace(format!("bridge λ {name}(..) (no engine interpretation)"));
                }
            }
        }
    }

    /// Delivers a parsed message to a session's execution and pumps any
    /// sends that become ready. Returns whether the execution accepted
    /// the message.
    fn deliver(
        &mut self,
        ctx: &mut Context<'_>,
        key: &SessionKey,
        session: &mut Session,
        message: AbstractMessage,
    ) -> bool {
        match session.exec.deliver(message) {
            Ok(outcome) => {
                self.apply_actions(ctx, session, &outcome);
                self.pump_sends(ctx, key, session);
                true
            }
            Err(err) => {
                self.stats.record_error(err.to_string());
                ctx.trace(format!("bridge dropped message: {err}"));
                false
            }
        }
    }

    /// Composes and emits messages while the session's execution rests in
    /// sending states. Any compose/emit/⊨ failure condemns the session
    /// (`failed`), so the caller tears it down instead of leaving the
    /// bridge wedged mid-exchange.
    fn pump_sends(&mut self, ctx: &mut Context<'_>, key: &SessionKey, session: &mut Session) {
        while let Some(name) = session.exec.next_send().map(str::to_owned) {
            let current = session.exec.current();
            let part_index = current.part.0;
            let Some(spec) = self.emit_specs.get(&current).cloned() else {
                self.stats.record_error(format!("state {current} has no colour to send on"));
                session.failed = true;
                return;
            };
            let codec = self.codecs[part_index].clone();
            let message = match session.exec.store().get(&name) {
                Some(instance) => instance.clone(),
                None => AbstractMessage::new(codec.protocol(), name.as_str()),
            };
            // Dynamic ⊨ check (equation (1)): the translated instance must
            // have every mandatory field filled before it may leave the
            // framework — an unfilled field means the declared semantic
            // equivalence did not hold for this exchange.
            let unfilled = message.unfilled_mandatory();
            if !unfilled.is_empty() {
                self.stats.record_error(format!(
                    "⊨ violation: {name} has unfilled mandatory fields {unfilled:?}"
                ));
                ctx.trace(format!(
                    "bridge refused to send {name}: mandatory fields {unfilled:?} unfilled"
                ));
                session.failed = true;
                return;
            }
            let mut payload = std::mem::take(&mut self.compose_buf);
            if let Err(err) = codec.compose_into(&message, &mut payload) {
                self.compose_buf = payload;
                self.stats.record_error(format!("compose {name}: {err}"));
                ctx.trace(format!("bridge failed to compose {name}: {err}"));
                session.failed = true;
                return;
            }
            let emitted = self.emit(ctx, key, session, part_index, &spec, &payload);
            self.compose_buf = payload;
            if let Err(err) = emitted {
                self.stats.record_error(format!("emit {name}: {err}"));
                ctx.trace(format!("bridge failed to emit {name}: {err}"));
                session.failed = true;
                return;
            }
            if let Some(correlator) = &self.config.correlator {
                let protocol = self.automaton.parts()[part_index].protocol();
                if let Some(alias) = correlator.outbound_key(part_index, protocol, &message) {
                    if !self.aliases.contains_key(&alias) {
                        self.aliases.insert(alias.clone(), key.clone());
                        session.aliases.push(alias);
                    }
                }
            }
            match session.exec.sent(message) {
                Ok(outcome) => self.apply_actions(ctx, session, &outcome),
                Err(err) => {
                    self.stats.record_error(err.to_string());
                    session.failed = true;
                    return;
                }
            }
            if self.session_complete(session) {
                break;
            }
        }
    }

    /// Emits composed bytes with the colour's network semantics:
    /// UDP replies go to the requester, UDP requests to the multicast
    /// group (or a `set_host` target), TCP uses the accepted connection
    /// when serving or opens one towards the `set_host` target.
    fn emit(
        &mut self,
        ctx: &mut Context<'_>,
        key: &SessionKey,
        session: &mut Session,
        part_index: usize,
        spec: &EmitSpec,
        payload: &[u8],
    ) -> Result<()> {
        match spec.transport {
            Transport::Udp => {
                let destination = if let Some(reply_to) = session.parts[part_index].reply_to.clone()
                {
                    reply_to
                } else if let Some(target) = session.set_host.clone() {
                    target
                } else if let Some(group) = spec.group.clone() {
                    group
                } else {
                    return Err(CoreError::Deployment(format!(
                        "no destination for unicast UDP send on part #{part_index}: \
                         no request to reply to, no set_host, no group"
                    )));
                };
                if let Some(policy) = self.config.store_forward {
                    if Self::egress_blocked(ctx, &policy, &destination) {
                        // Park instead of losing the leg to a dead link.
                        // The execution still advances — parking is a
                        // transport-level concern, not a protocol one.
                        if session.parked.len() >= policy.queue_bound {
                            self.stats.record_queue_overflow();
                            ctx.trace(format!(
                                "bridge queue overflow: egress leg for {key} refused"
                            ));
                            return Ok(());
                        }
                        session.parked.push_back(ParkedLeg {
                            port: spec.port,
                            destination,
                            payload: payload.to_vec(),
                        });
                        self.stats.record_leg_parked();
                        if session.retry_timer.is_none() {
                            session.retry_timer =
                                Some(self.arm_retry(ctx, key, policy.retry_interval));
                        }
                        ctx.trace(format!(
                            "bridge parked egress leg for {key} ({} queued)",
                            session.parked.len()
                        ));
                        return Ok(());
                    }
                }
                ctx.udp_send(spec.port, destination, payload);
                Ok(())
            }
            Transport::Tcp => {
                if let Some(conn) = session.parts[part_index].server_conn {
                    ctx.tcp_send(conn, payload).map_err(CoreError::from)
                } else if let Some(conn) = session.parts[part_index].client_conn {
                    ctx.tcp_send(conn, payload).map_err(CoreError::from)
                } else {
                    let Some(target) = session.set_host.clone() else {
                        return Err(CoreError::Deployment(
                            "TCP send requires a prior set_host λ action".into(),
                        ));
                    };
                    let conn = ctx.tcp_connect(target).map_err(CoreError::from)?;
                    self.conn_sessions.insert(conn, (key.clone(), part_index));
                    session.conns.push(conn);
                    session.parts[part_index].client_conn = Some(conn);
                    session.parts[part_index].pending_out.push_back(payload.to_vec());
                    Ok(())
                }
            }
        }
    }

    /// Handles a fired store-and-forward replay timer, for either
    /// engine path: flush parked legs whose link has healed, then
    /// conclude, give up or re-arm.
    fn on_retry_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        let Some(key) = self.retry_sessions.remove(&tag) else { return };
        let Some(policy) = self.config.store_forward else { return };
        if let Some(mut rt) = self.fused.take() {
            self.fused_retry(ctx, &mut rt, policy, key);
            self.fused = Some(rt);
            return;
        }
        let Some(mut session) = self.sessions.remove(&key) else { return };
        session.retry_timer = None;
        // A parked session is alive by definition: replay attempts
        // count as activity so idle expiry defers to the give-up bound.
        session.last_activity = ctx.now();
        while let Some(leg) = session.parked.front() {
            if Self::egress_blocked(ctx, &policy, &leg.destination) {
                break;
            }
            let leg = session.parked.pop_front().expect("front checked");
            ctx.udp_send(leg.port, leg.destination, leg.payload);
            self.stats.record_leg_replayed();
            ctx.trace(format!("bridge replayed parked leg for {key}"));
        }
        if session.parked.is_empty() {
            session.retries = 0;
            self.conclude(ctx, key, session);
            return;
        }
        session.retries += 1;
        if session.retries >= policy.max_retries {
            ctx.trace(format!("bridge gave up on {} parked legs for {key}", session.parked.len()));
            session.failed = true;
            self.conclude(ctx, key, session);
            return;
        }
        session.retry_timer = Some(self.arm_retry(ctx, &key, policy.retry_interval));
        self.sessions.insert(key, session);
    }

    /// Parses as many messages as the buffered stream for `conn` holds,
    /// delivering each to the owning session.
    fn drain_stream(
        &mut self,
        ctx: &mut Context<'_>,
        key: &SessionKey,
        session: &mut Session,
        conn: ConnId,
        part_index: usize,
    ) {
        loop {
            if session.failed || self.session_complete(session) {
                break;
            }
            let Some(buffer) = self.buffers.get(&conn) else { break };
            if buffer.is_empty() {
                break;
            }
            match self.codecs[part_index].parse_prefix(buffer) {
                Ok((message, consumed)) => {
                    self.buffers.get_mut(&conn).expect("buffer exists").drain(..consumed);
                    self.deliver(ctx, key, session, message);
                }
                Err(_) => {
                    // Incomplete message: wait for more stream data.
                    break;
                }
            }
        }
    }

    /// Handles a datagram routed to a fresh key: a session is opened only
    /// when its first message actually advances a fresh execution, so
    /// rogue traffic (replies without a session, duplicates after
    /// completion) is recorded and dropped without occupying the table.
    fn open_session(
        &mut self,
        ctx: &mut Context<'_>,
        key: SessionKey,
        part_index: usize,
        from: SimAddr,
        message: AbstractMessage,
    ) {
        let mut session = self.fresh_session(ctx.now());
        session.parts[part_index].reply_to = Some(from);
        if self.deliver(ctx, &key, &mut session, message) {
            self.stats.record_session_started();
            self.arm_expiry(ctx, &key, &mut session);
            self.conclude(ctx, key, session);
        }
    }
}

/// The fused fast path: the four-step relay (parse request → forward
/// steps → emit query; parse response → backward steps → emit reply)
/// over flat slot records, plus the shard-local answer cache. Every
/// routing and lifecycle decision mirrors the interpreted engine above —
/// same session keys, same alias registration, same stats transitions —
/// so the two paths are observably identical except for speed.
impl BridgeEngine {
    /// Bench/CI instrumentation: one fused **forward** translation —
    /// parse `wire` as the source-protocol request, run the forward
    /// steps, compose the outbound query into `out` (cleared first).
    /// Reuses the engine's internal scratch records, so steady-state
    /// calls make zero heap allocations — the property the alloc
    /// census asserts.
    ///
    /// # Errors
    ///
    /// When the engine is interpreted, `wire` does not parse, or is not
    /// the expected request message.
    pub fn fused_forward_probe(
        &mut self,
        wire: &[u8],
        out: &mut Vec<u8>,
    ) -> std::result::Result<(), String> {
        let Some(rt) = self.fused.as_deref_mut() else {
            return Err(self
                .fused_reject
                .as_ref()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "engine is not fused".to_owned()));
        };
        let message =
            rt.plan.source_plan().parse(wire, &mut rt.parse_rec).map_err(|err| err.to_string())?;
        if message != rt.plan.req_in() {
            return Err(format!(
                "expected {}, parsed {}",
                rt.plan.source_plan().message_name(rt.plan.req_in()),
                rt.plan.source_plan().message_name(message)
            ));
        }
        rt.plan.translate_request(&rt.parse_rec, &mut rt.out_rec, &mut rt.scratch)?;
        rt.plan.target_plan().compose(&rt.out_rec, out).map_err(|err| err.to_string())
    }

    /// Bench/CI instrumentation: one fused **backward** translation —
    /// parse the original request and the target-protocol response,
    /// run the backward steps (which echo the requester's correlation
    /// id), compose the legacy reply into `out` (cleared first). Zero
    /// steady-state allocations, like [`Self::fused_forward_probe`].
    ///
    /// # Errors
    ///
    /// As the forward probe, for either input.
    pub fn fused_backward_probe(
        &mut self,
        request_wire: &[u8],
        response_wire: &[u8],
        out: &mut Vec<u8>,
    ) -> std::result::Result<(), String> {
        let Some(rt) = self.fused.as_deref_mut() else {
            return Err(self
                .fused_reject
                .as_ref()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "engine is not fused".to_owned()));
        };
        let request = rt
            .plan
            .source_plan()
            .parse(request_wire, &mut rt.probe_rec)
            .map_err(|err| err.to_string())?;
        if request != rt.plan.req_in() {
            return Err("request wire is not the request message".to_owned());
        }
        let response = rt
            .plan
            .target_plan()
            .parse(response_wire, &mut rt.parse_rec)
            .map_err(|err| err.to_string())?;
        if response != rt.plan.resp_in() {
            return Err("response wire is not the response message".to_owned());
        }
        rt.plan.translate_response(
            &rt.probe_rec,
            &rt.parse_rec,
            &mut rt.out_rec,
            &mut rt.scratch,
        )?;
        rt.plan.source_plan().compose(&rt.out_rec, out).map_err(|err| err.to_string())
    }

    /// Bench/CI instrumentation: seeds the answer cache with the legacy
    /// answer for `request_wire`'s normalized key, as a completed
    /// exchange would, with a far-future expiry. Prepares
    /// [`Self::fused_cache_hit_probe`].
    ///
    /// # Errors
    ///
    /// When the engine is interpreted, the cache is disabled
    /// (`answer_ttl` unset), or either wire does not parse as the
    /// expected message.
    pub fn fused_cache_seed_probe(
        &mut self,
        request_wire: &[u8],
        response_wire: &[u8],
    ) -> std::result::Result<(), String> {
        if self.config.answer_ttl.is_none() {
            return Err("answer cache is disabled (no answer_ttl)".to_owned());
        }
        let Some(rt) = self.fused.as_deref_mut() else {
            return Err(self
                .fused_reject
                .as_ref()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "engine is not fused".to_owned()));
        };
        let request = rt
            .plan
            .source_plan()
            .parse(request_wire, &mut rt.probe_rec)
            .map_err(|err| err.to_string())?;
        if request != rt.plan.req_in() {
            return Err("request wire is not the request message".to_owned());
        }
        rt.plan.cache_key_bytes(&rt.probe_rec, &mut rt.key_buf);
        let hash = fxhash::hash64(&rt.key_buf[..]);
        let response = rt
            .plan
            .target_plan()
            .parse(response_wire, &mut rt.parse_rec)
            .map_err(|err| err.to_string())?;
        if response != rt.plan.resp_in() {
            return Err("response wire is not the response message".to_owned());
        }
        rt.cache.insert(
            hash,
            CachedAnswer {
                key: rt.key_buf.clone(),
                response: rt.parse_rec.clone(),
                expires_at: SimTime::from_micros(u64::MAX),
            },
        );
        self.stats.record_cache_insertion();
        // Layer the wire-level replay template, exactly as a completed
        // live exchange would.
        rt.plan.translate_response(
            &rt.probe_rec,
            &rt.parse_rec,
            &mut rt.out_rec,
            &mut rt.scratch,
        )?;
        rt.plan
            .source_plan()
            .compose(&rt.out_rec, &mut rt.wire_buf)
            .map_err(|err| err.to_string())?;
        rt.templates.retain(|t| t.cache_hash != hash);
        if rt.templates.len() < REPLAY_TEMPLATE_CAP {
            if let Some(parts) =
                rt.plan.build_replay_parts(&rt.probe_rec, request_wire, &rt.parse_rec, &rt.wire_buf)
            {
                rt.templates.push(ReplayTemplate {
                    request: request_wire.to_vec(),
                    id_span: parts.id_span,
                    reply: rt.wire_buf.clone(),
                    echoes: parts.echoes,
                    cache_hash: hash,
                    expires_at: SimTime::from_micros(u64::MAX),
                });
            }
        }
        Ok(())
    }

    /// Bench/CI instrumentation: one answer-cache **hit** worth of
    /// work — parse the request, build the normalized key, look the
    /// answer up, replay it through the backward steps (personalizing
    /// the echoed id for *this* requester) and compose the reply into
    /// `out`. This is exactly the per-message kernel a deployed fused
    /// engine runs when it serves a duplicate query from the cache;
    /// benched against a full forward+backward translation it yields
    /// the hit-to-full cost ratio `BENCH_throughput.json` reports.
    ///
    /// # Errors
    ///
    /// When the engine is interpreted, `wire` is not the request
    /// message, or no cached answer matches (seed with
    /// [`Self::fused_cache_seed_probe`] first).
    pub fn fused_cache_hit_probe(
        &mut self,
        wire: &[u8],
        out: &mut Vec<u8>,
    ) -> std::result::Result<(), String> {
        let Some(rt) = self.fused.as_deref_mut() else {
            return Err(self
                .fused_reject
                .as_ref()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "engine is not fused".to_owned()));
        };
        // Wire-level replay first, exactly like the live datagram path.
        if rt.templates.iter().any(|t| t.replay_into(wire, out, &mut rt.scratch)) {
            return Ok(());
        }
        let message =
            rt.plan.source_plan().parse(wire, &mut rt.parse_rec).map_err(|err| err.to_string())?;
        if message != rt.plan.req_in() {
            return Err("wire is not the request message".to_owned());
        }
        rt.plan.cache_key_bytes(&rt.parse_rec, &mut rt.key_buf);
        let hash = fxhash::hash64(&rt.key_buf[..]);
        let entry = match rt.cache.get(&hash) {
            Some(entry) if entry.key == rt.key_buf => entry,
            _ => return Err("no cached answer for this query".to_owned()),
        };
        rt.plan.translate_response(
            &rt.parse_rec,
            &entry.response,
            &mut rt.out_rec,
            &mut rt.scratch,
        )?;
        rt.plan.source_plan().compose(&rt.out_rec, out).map_err(|err| err.to_string())
    }

    fn fused_datagram(&mut self, ctx: &mut Context<'_>, rt: &mut FusedRuntime, datagram: Datagram) {
        let Some(part_index) = self.part_for_datagram(&datagram) else {
            ctx.trace(format!("bridge: no part for datagram to {}", datagram.to));
            return;
        };
        let source_side = part_index == rt.plan.source_part();
        if source_side && self.config.answer_ttl.is_some() && !rt.templates.is_empty() {
            // Wire-level replay: a byte-duplicate of a completed query
            // (new correlation id only) is answered straight from the
            // template, before any parse. Expired templates are swept
            // silently — the expiration counter belongs to the backing
            // record-cache entry, which a fallthrough query still
            // touches.
            let now = ctx.now();
            rt.templates.retain(|t| now < t.expires_at);
            if rt
                .templates
                .iter()
                .any(|t| t.replay_into(&datagram.payload, &mut rt.wire_buf, &mut rt.scratch))
            {
                ctx.udp_send(rt.resp_spec.port, datagram.from, &rt.wire_buf[..]);
                self.stats.record_cache_hit();
                self.stats.record_session_started();
                self.stats.record_session(now, now);
                ctx.trace("bridge replayed cached reply for duplicate query".to_owned());
                return;
            }
        }
        let parsed = if source_side {
            rt.plan.source_plan().parse(&datagram.payload, &mut rt.parse_rec)
        } else {
            rt.plan.target_plan().parse(&datagram.payload, &mut rt.parse_rec)
        };
        let message = match parsed {
            Ok(message) => message,
            Err(err) => {
                self.stats.record_error(format!("parse on part #{part_index}: {err}"));
                ctx.trace(format!("bridge failed to parse datagram: {err}"));
                return;
            }
        };
        let expected = if source_side { rt.plan.req_in() } else { rt.plan.resp_in() };
        if message != expected {
            // A message the relay never consumes here (e.g. our own
            // multicast query looped back): the interpreted execution
            // would reject the delivery — record and drop.
            let name = if source_side {
                rt.plan.source_plan().message_name(message)
            } else {
                rt.plan.target_plan().message_name(message)
            };
            self.stats.record_error(format!(
                "bridge dropped message: unexpected {name} on part #{part_index}"
            ));
            ctx.trace(format!("bridge dropped unexpected {name}"));
            return;
        }
        if source_side {
            self.fused_request(ctx, rt, datagram.from, &datagram.payload);
        } else {
            self.fused_response(ctx, rt, datagram.from);
        }
    }

    /// Handles a parsed request sitting in `rt.parse_rec`: answer-cache
    /// lookup, else forward translation, query emission and session
    /// registration.
    fn fused_request(
        &mut self,
        ctx: &mut Context<'_>,
        rt: &mut FusedRuntime,
        from: SimAddr,
        payload: &[u8],
    ) {
        let now = ctx.now();
        let key = rt
            .plan
            .req_in_id()
            .and_then(|slot| correlation_id(&rt.parse_rec, slot))
            .map(|id| SessionKey::Correlated(rt.plan.source_part(), id))
            .unwrap_or_else(|| SessionKey::Peer(from.clone()));
        let key = self.aliases.get(&key).cloned().unwrap_or(key);
        if rt.sessions.contains_key(&key) {
            // The relay is awaiting the legacy response for this
            // exchange; a retransmitted request is a delivery its
            // execution does not expect — record and drop.
            self.stats.record_error(format!(
                "bridge dropped message: duplicate request for live session {key}"
            ));
            ctx.trace(format!("bridge dropped duplicate request for {key}"));
            return;
        }

        let mut cache_hash = None;
        if self.config.answer_ttl.is_some() {
            rt.plan.cache_key_bytes(&rt.parse_rec, &mut rt.key_buf);
            let hash = fxhash::hash64(&rt.key_buf[..]);
            cache_hash = Some(hash);
            if let Some(entry) = rt.cache.get(&hash) {
                if entry.key == rt.key_buf && now >= entry.expires_at {
                    rt.cache.remove(&hash);
                    self.stats.record_cache_expiration();
                }
            }
            let hit = match rt.cache.get(&hash) {
                Some(entry) if entry.key == rt.key_buf => rt
                    .plan
                    .translate_response(
                        &rt.parse_rec,
                        &entry.response,
                        &mut rt.out_rec,
                        &mut rt.scratch,
                    )
                    .is_ok(),
                _ => false,
            };
            if hit {
                let served = rt.plan.source_plan().unfilled_mandatory(&rt.out_rec).is_none()
                    && rt.plan.source_plan().compose(&rt.out_rec, &mut rt.wire_buf).is_ok();
                if served {
                    ctx.udp_send(rt.resp_spec.port, from, &rt.wire_buf[..]);
                    self.stats.record_cache_hit();
                    // The exchange opened and completed in one step;
                    // both transitions are recorded so the lifecycle
                    // accounting stays balanced.
                    self.stats.record_session_started();
                    self.stats.record_session(now, now);
                    ctx.trace("bridge served reply from the answer cache".to_owned());
                    return;
                }
                // A cached answer that no longer replays is discarded,
                // along with any template layered over it.
                rt.cache.remove(&hash);
                rt.templates.retain(|t| t.cache_hash != hash);
            }
            self.stats.record_cache_miss();
        }

        // Full translation: request → target query.
        if let Err(err) = rt.plan.translate_request(&rt.parse_rec, &mut rt.out_rec, &mut rt.scratch)
        {
            self.stats.record_error(format!("bridge dropped message: {err}"));
            ctx.trace(format!("bridge dropped message: {err}"));
            return;
        }
        // The session opens here, mirroring the interpreted engine
        // (which counts a started session once the delivery advances a
        // fresh execution, even if the send then fails).
        if let Some(field) = rt.plan.target_plan().unfilled_mandatory(&rt.out_rec) {
            self.stats.record_error(format!(
                "⊨ violation: {} has unfilled mandatory fields [{:?}]",
                rt.plan.req_out_name(),
                field
            ));
            ctx.trace(format!("bridge refused to send {}", rt.plan.req_out_name()));
            self.stats.record_session_started();
            self.stats.record_session_failed();
            return;
        }
        if let Err(err) = rt.plan.target_plan().compose(&rt.out_rec, &mut rt.wire_buf) {
            self.stats.record_error(format!("compose {}: {err}", rt.plan.req_out_name()));
            ctx.trace(format!("bridge failed to compose {}: {err}", rt.plan.req_out_name()));
            self.stats.record_session_started();
            self.stats.record_session_failed();
            return;
        }
        let mut parked_query = None;
        if let Some(policy) = self.config.store_forward {
            if Self::egress_blocked(ctx, &policy, &rt.req_group) {
                if policy.queue_bound == 0 {
                    self.stats.record_queue_overflow();
                    ctx.trace("bridge queue overflow: forward query refused".to_owned());
                } else {
                    parked_query = Some(ParkedLeg {
                        port: rt.req_spec.port,
                        destination: rt.req_group.clone(),
                        payload: rt.wire_buf.clone(),
                    });
                }
            }
        }
        if parked_query.is_none() {
            ctx.udp_send(rt.req_spec.port, rt.req_group.clone(), &rt.wire_buf[..]);
        }

        let seq = self.next_session_seq;
        self.next_session_seq += 1;
        let mut session = FusedSession {
            started: now,
            last_activity: now,
            seq,
            request: rt.parse_rec.clone(),
            request_wire: if self.config.answer_ttl.is_some() {
                payload.to_vec()
            } else {
                Vec::new()
            },
            reply_to: from,
            aliases: Vec::new(),
            timer: None,
            cache_hash,
            cache_key: if cache_hash.is_some() {
                std::mem::take(&mut rt.key_buf)
            } else {
                Vec::new()
            },
            parked: VecDeque::new(),
            retries: 0,
            retry_timer: None,
            complete_on_flush: false,
        };
        // Outbound alias: the reply echoing this query's id finds the
        // session that sent it, exactly like the interpreted engine's
        // correlator hook.
        if let Some(slot) = rt.plan.req_out_id() {
            if let Some(id) = correlation_id(&rt.out_rec, slot) {
                let alias = SessionKey::Correlated(rt.plan.target_part(), id);
                if !self.aliases.contains_key(&alias) {
                    self.aliases.insert(alias.clone(), key.clone());
                    session.aliases.push(alias);
                }
            }
        }
        self.stats.record_session_started();
        if let Some(leg) = parked_query {
            let policy = self.config.store_forward.expect("leg parked only under the policy");
            session.parked.push_back(leg);
            self.stats.record_leg_parked();
            session.retry_timer = Some(self.arm_retry(ctx, &key, policy.retry_interval));
            ctx.trace(format!("bridge parked forward query for {key} (1 queued)"));
        }
        let tag = self.next_timer_tag;
        self.next_timer_tag += 1;
        let id = ctx.set_timer(self.config.idle_timeout, tag);
        self.timer_sessions.insert(tag, key.clone());
        session.timer = Some((id, tag));
        rt.sessions.insert(key, session);
    }

    /// Routes a parsed legacy response sitting in `rt.parse_rec` to the
    /// session awaiting it: by echoed correlation id, by source
    /// address, else to the oldest waiting session.
    fn fused_response(&mut self, ctx: &mut Context<'_>, rt: &mut FusedRuntime, from: SimAddr) {
        if let Some(slot) = rt.plan.resp_in_id() {
            if let Some(id) = correlation_id(&rt.parse_rec, slot) {
                let key = SessionKey::Correlated(rt.plan.target_part(), id);
                let key = self.aliases.get(&key).cloned().unwrap_or(key);
                if rt.sessions.contains_key(&key) {
                    self.fused_deliver_response(ctx, rt, key);
                } else {
                    self.stats.record_error(format!(
                        "bridge dropped message: no session awaits response id {id:#x}"
                    ));
                    ctx.trace("bridge dropped unmatched response".to_owned());
                }
                return;
            }
        }
        let peer = SessionKey::Peer(from);
        let key = if rt.sessions.contains_key(&peer) {
            Some(peer)
        } else {
            // Replies arrive from the legacy service's address, never
            // the originator's: oldest-first matching, like the
            // interpreted engine's waiting-receiver scan.
            rt.sessions.iter().min_by_key(|(_, s)| s.seq).map(|(k, _)| k.clone())
        };
        match key {
            Some(key) => self.fused_deliver_response(ctx, rt, key),
            None => {
                self.stats.record_error(
                    "bridge dropped message: no session awaits a response".to_owned(),
                );
                ctx.trace("bridge dropped unmatched response".to_owned());
            }
        }
    }

    fn fused_deliver_response(
        &mut self,
        ctx: &mut Context<'_>,
        rt: &mut FusedRuntime,
        key: SessionKey,
    ) {
        let mut session = rt.sessions.remove(&key).expect("routed to live fused session");
        // Backward steps run against the *original request*, so echoed
        // ids (XID, RelatesTo) personalise the reply.
        if let Err(err) = rt.plan.translate_response(
            &session.request,
            &rt.parse_rec,
            &mut rt.out_rec,
            &mut rt.scratch,
        ) {
            // An undeliverable message is dropped; the session keeps
            // waiting (and may still idle-expire), like a rejected
            // interpreted delivery.
            self.stats.record_error(format!("bridge dropped message: {err}"));
            ctx.trace(format!("bridge dropped message: {err}"));
            rt.sessions.insert(key, session);
            return;
        }
        session.last_activity = ctx.now();
        if let Some(field) = rt.plan.source_plan().unfilled_mandatory(&rt.out_rec) {
            self.stats.record_error(format!(
                "⊨ violation: {} has unfilled mandatory fields [{:?}]",
                rt.plan.resp_out_name(),
                field
            ));
            ctx.trace(format!("bridge refused to send {}", rt.plan.resp_out_name()));
            self.unlink_fused(ctx, &mut session);
            self.stats.record_session_failed();
            return;
        }
        if let Err(err) = rt.plan.source_plan().compose(&rt.out_rec, &mut rt.wire_buf) {
            self.stats.record_error(format!("compose {}: {err}", rt.plan.resp_out_name()));
            ctx.trace(format!("bridge failed to compose {}: {err}", rt.plan.resp_out_name()));
            self.unlink_fused(ctx, &mut session);
            self.stats.record_session_failed();
            return;
        }
        let mut parked_reply = false;
        if let Some(policy) = self.config.store_forward {
            if Self::egress_blocked(ctx, &policy, &session.reply_to) {
                if session.parked.len() >= policy.queue_bound {
                    // The reply cannot leave and cannot park: the
                    // exchange is condemned rather than left to wedge.
                    self.stats.record_queue_overflow();
                    self.unlink_fused(ctx, &mut session);
                    self.stats.record_session_failed();
                    ctx.trace(format!("bridge queue overflow: reply leg for {key} refused"));
                    return;
                }
                session.parked.push_back(ParkedLeg {
                    port: rt.resp_spec.port,
                    destination: session.reply_to.clone(),
                    payload: rt.wire_buf.clone(),
                });
                self.stats.record_leg_parked();
                session.complete_on_flush = true;
                parked_reply = true;
            }
        }
        if !parked_reply {
            ctx.udp_send(rt.resp_spec.port, session.reply_to.clone(), &rt.wire_buf[..]);
        }
        // Cache the legacy answer for future equivalent queries. The
        // parsed response (not the personalised reply) is stored; each
        // hit re-runs the backward steps with the fresh request.
        if let (Some(ttl), Some(hash)) = (self.config.answer_ttl, session.cache_hash) {
            if rt.cache.len() < FUSED_CACHE_CAP || rt.cache.contains_key(&hash) {
                rt.cache.insert(
                    hash,
                    CachedAnswer {
                        key: std::mem::take(&mut session.cache_key),
                        response: rt.parse_rec.clone(),
                        expires_at: ctx.now() + ttl,
                    },
                );
                self.stats.record_cache_insertion();
                // Layer a wire-level replay template over the fresh
                // entry when the exchange proves replayable. A stale
                // template for the same entry is replaced either way.
                rt.templates.retain(|t| t.cache_hash != hash);
                if rt.templates.len() < REPLAY_TEMPLATE_CAP {
                    if let Some(parts) = rt.plan.build_replay_parts(
                        &session.request,
                        &session.request_wire,
                        &rt.parse_rec,
                        &rt.wire_buf,
                    ) {
                        rt.templates.push(ReplayTemplate {
                            request: std::mem::take(&mut session.request_wire),
                            id_span: parts.id_span,
                            reply: rt.wire_buf.clone(),
                            echoes: parts.echoes,
                            cache_hash: hash,
                            expires_at: ctx.now() + ttl,
                        });
                    }
                }
            }
        }
        if parked_reply {
            let policy = self.config.store_forward.expect("leg parked only under the policy");
            if session.retry_timer.is_none() {
                session.retry_timer = Some(self.arm_retry(ctx, &key, policy.retry_interval));
            }
            ctx.trace(format!("bridge parked reply for {key} until the link heals"));
            rt.sessions.insert(key, session);
            return;
        }
        self.unlink_fused(ctx, &mut session);
        self.stats.record_session(session.started, ctx.now());
        ctx.trace(format!("bridge session complete in {}", ctx.now().since(session.started)));
    }

    /// [`BridgeEngine::unlink`] for fused sessions: expiry and replay
    /// timers, alias bookkeeping, and abandonment of any still-parked
    /// legs (fused sessions own no connections).
    fn unlink_fused(&mut self, ctx: &mut Context<'_>, session: &mut FusedSession) {
        if let Some((id, tag)) = session.timer.take() {
            if self.timer_sessions.remove(&tag).is_some() {
                ctx.cancel_timer(id);
            }
        }
        if let Some((id, tag)) = session.retry_timer.take() {
            if self.retry_sessions.remove(&tag).is_some() {
                ctx.cancel_timer(id);
            }
        }
        if !session.parked.is_empty() {
            self.stats.record_legs_abandoned(session.parked.len() as u64);
            session.parked.clear();
        }
        for alias in session.aliases.drain(..) {
            self.aliases.remove(&alias);
        }
    }

    /// [`BridgeEngine::on_timer`] for fused sessions: idle expiry with
    /// re-arm on interim activity.
    fn fused_timer(&mut self, ctx: &mut Context<'_>, rt: &mut FusedRuntime, tag: u64) {
        let Some(key) = self.timer_sessions.remove(&tag) else { return };
        let Some(mut session) = rt.sessions.remove(&key) else { return };
        session.timer = None;
        let deadline = session.last_activity + self.config.idle_timeout;
        if ctx.now() >= deadline {
            self.unlink_fused(ctx, &mut session);
            self.stats.record_session_expired();
            ctx.trace(format!(
                "bridge session {key} expired after {} idle",
                ctx.now().since(session.last_activity)
            ));
        } else {
            let remaining = deadline.since(ctx.now());
            let new_tag = self.next_timer_tag;
            self.next_timer_tag += 1;
            let id = ctx.set_timer(remaining, new_tag);
            self.timer_sessions.insert(new_tag, key.clone());
            session.timer = Some((id, new_tag));
            rt.sessions.insert(key, session);
        }
    }

    /// One store-and-forward replay attempt for a fused session: flush
    /// every leg whose link has healed, then complete, give up or
    /// re-arm.
    fn fused_retry(
        &mut self,
        ctx: &mut Context<'_>,
        rt: &mut FusedRuntime,
        policy: StoreForward,
        key: SessionKey,
    ) {
        let Some(mut session) = rt.sessions.remove(&key) else { return };
        session.retry_timer = None;
        // A parked session is alive by definition: replay attempts
        // count as activity so idle expiry defers to the give-up bound.
        session.last_activity = ctx.now();
        while let Some(leg) = session.parked.front() {
            if Self::egress_blocked(ctx, &policy, &leg.destination) {
                break;
            }
            let leg = session.parked.pop_front().expect("front checked");
            ctx.udp_send(leg.port, leg.destination, leg.payload);
            self.stats.record_leg_replayed();
            ctx.trace(format!("bridge replayed parked leg for {key}"));
        }
        if session.parked.is_empty() {
            session.retries = 0;
            if session.complete_on_flush {
                self.unlink_fused(ctx, &mut session);
                self.stats.record_session(session.started, ctx.now());
                ctx.trace(format!(
                    "bridge session complete in {}",
                    ctx.now().since(session.started)
                ));
            } else {
                rt.sessions.insert(key, session);
            }
            return;
        }
        session.retries += 1;
        if session.retries >= policy.max_retries {
            ctx.trace(format!("bridge gave up on {} parked legs for {key}", session.parked.len()));
            self.unlink_fused(ctx, &mut session);
            self.stats.record_session_failed();
            return;
        }
        session.retry_timer = Some(self.arm_retry(ctx, &key, policy.retry_interval));
        rt.sessions.insert(key, session);
    }
}

/// Control-plane surface: the questions a multi-version host
/// ([`crate::host::EngineHost`]) asks each hosted engine when routing
/// events across coexisting bridge versions during a drain-then-swap.
impl BridgeEngine {
    /// Live sessions across both engine paths — the drain gauge: a
    /// draining version is reaped when this reaches zero.
    pub(crate) fn live_sessions(&self) -> usize {
        self.sessions.len() + self.fused.as_ref().map_or(0, |rt| rt.sessions.len())
    }

    /// The merged automaton's name (the case identity a host reports).
    pub(crate) fn automaton_name(&self) -> &str {
        self.automaton.name()
    }

    /// Namespaces every timer tag this engine will ever allocate, so
    /// two versions hosted on one simulated host never collide in the
    /// shared timer space. Must be called before the engine arms its
    /// first timer.
    pub(crate) fn set_timer_tag_base(&mut self, base: u64) {
        debug_assert!(self.next_timer_tag == 0, "tag base set after timers were armed");
        self.next_timer_tag = base;
    }

    /// Whether `datagram` belongs to one of this engine's **live**
    /// sessions — the drain-routing probe: a draining version claims
    /// only traffic for exchanges it already owns (retransmissions,
    /// legacy replies); everything fresh routes to the active version.
    ///
    /// `&mut` only for the fused path's scratch parse record; the
    /// engine's observable state is untouched.
    pub(crate) fn owns_datagram(&mut self, datagram: &Datagram) -> bool {
        let Some(part_index) = self.part_for_datagram(datagram) else { return false };
        if let Some(rt) = self.fused.as_deref_mut() {
            if rt.sessions.is_empty() {
                return false;
            }
            let source_side = part_index == rt.plan.source_part();
            let parsed = if source_side {
                rt.plan.source_plan().parse(&datagram.payload, &mut rt.parse_rec)
            } else {
                rt.plan.target_plan().parse(&datagram.payload, &mut rt.parse_rec)
            };
            let Ok(message) = parsed else { return false };
            if source_side {
                if message != rt.plan.req_in() {
                    return false;
                }
                let key = rt
                    .plan
                    .req_in_id()
                    .and_then(|slot| correlation_id(&rt.parse_rec, slot))
                    .map(|id| SessionKey::Correlated(rt.plan.source_part(), id))
                    .unwrap_or_else(|| SessionKey::Peer(datagram.from.clone()));
                let key = self.aliases.get(&key).cloned().unwrap_or(key);
                return rt.sessions.contains_key(&key);
            }
            if message != rt.plan.resp_in() {
                return false;
            }
            if let Some(slot) = rt.plan.resp_in_id() {
                if let Some(id) = correlation_id(&rt.parse_rec, slot) {
                    let key = SessionKey::Correlated(rt.plan.target_part(), id);
                    let key = self.aliases.get(&key).cloned().unwrap_or(key);
                    return rt.sessions.contains_key(&key);
                }
            }
            // No correlation id: the live path would hand the reply to
            // the oldest waiting session, so any live session claims it.
            return true;
        }
        let Ok(message) = self.codecs[part_index].parse(&datagram.payload) else {
            return false;
        };
        matches!(self.route_inbound(part_index, &message, &datagram.from), Route::Existing(_))
    }

    /// Whether an accepted TCP connection on `local_port` from `peer`
    /// pairs with one of this engine's waiting sessions — mirrors the
    /// matching predicate of [`Actor::on_tcp`]'s `Accepted` arm.
    pub(crate) fn wants_accept(&self, local_port: u16, peer: &SimAddr) -> bool {
        let Some(part_index) = self.part_for_listener(local_port) else { return false };
        self.sessions.values().any(|s| {
            s.exec.current().part.0 == part_index
                && s.parts[part_index].server_conn.is_none()
                && s.parts
                    .iter()
                    .any(|p| p.reply_to.as_ref().is_some_and(|addr| addr.host == peer.host))
        })
    }

    /// Whether `conn` is owned by one of this engine's sessions.
    pub(crate) fn owns_conn(&self, conn: ConnId) -> bool {
        self.conn_sessions.contains_key(&conn)
    }

    /// Whether `tag` belongs to one of this engine's pending timers.
    pub(crate) fn owns_timer(&self, tag: u64) -> bool {
        self.timer_sessions.contains_key(&tag) || self.retry_sessions.contains_key(&tag)
    }
}

impl Actor for BridgeEngine {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Bind every colour of every part: UDP ports + multicast groups
        // for datagram protocols, listeners for stream protocols.
        let mut bound: BTreeSet<u16> = BTreeSet::new();
        for part in self.automaton.parts() {
            for color in part.colors() {
                match color.transport() {
                    Transport::Udp => {
                        if bound.insert(color.port()) {
                            if let Err(err) = ctx.bind_udp(color.port()) {
                                ctx.trace(format!("bridge bind failed: {err}"));
                            }
                        }
                        if let Some(group) = color.group() {
                            ctx.join_group(SimAddr::new(group, color.port()));
                        }
                    }
                    Transport::Tcp => {
                        ctx.listen_tcp(color.port());
                    }
                }
            }
        }
        ctx.trace(format!("bridge {} deployed", self.automaton.name()));
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        if let Some(mut rt) = self.fused.take() {
            self.fused_datagram(ctx, &mut rt, datagram);
            self.fused = Some(rt);
            return;
        }
        let Some(part_index) = self.part_for_datagram(&datagram) else {
            ctx.trace(format!("bridge: no part for datagram to {}", datagram.to));
            return;
        };
        let parsed = self.codecs[part_index].parse(&datagram.payload);
        let message = match parsed {
            Ok(message) => message,
            Err(err) => {
                self.stats.record_error(format!("parse on part #{part_index}: {err}"));
                ctx.trace(format!("bridge failed to parse datagram: {err}"));
                return;
            }
        };
        match self.route_inbound(part_index, &message, &datagram.from) {
            Route::Existing(key) => {
                let mut session = self.sessions.remove(&key).expect("routed to live session");
                // The reply address and activity clock follow the sender
                // only when the execution accepts the message; a rejected
                // duplicate or spoofed datagram must neither hijack where
                // replies go nor keep deferring the idle expiry of a
                // session that is otherwise dead.
                let previous_reply_to = session.parts[part_index].reply_to.replace(datagram.from);
                let previous_activity = session.last_activity;
                session.last_activity = ctx.now();
                if !self.deliver(ctx, &key, &mut session, message) {
                    session.parts[part_index].reply_to = previous_reply_to;
                    session.last_activity = previous_activity;
                }
                self.conclude(ctx, key, session);
            }
            Route::Fresh(key) => {
                self.open_session(ctx, key, part_index, datagram.from.clone(), message);
            }
        }
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, peer, local_port } => {
                let Some(part_index) = self.part_for_listener(local_port) else {
                    ctx.trace(format!("bridge: no part listens on port {local_port}"));
                    return;
                };
                // Correlate the connection with the session that told
                // this peer to connect: the oldest session resting in the
                // listening part whose recorded originator shares the
                // peer's host and whose part slot is still free — a
                // session already serving one accepted connection must
                // not have it overwritten by a second same-host connect
                // (that one pairs with the next waiting session instead).
                // Anything else *originates* its own session — grafting
                // an unmatched peer onto a waiting session would hand one
                // client's exchange to a stranger (peers whose connect
                // address genuinely differs from their datagram address
                // need a `SessionCorrelator`).
                let matched = self
                    .sessions
                    .iter()
                    .filter(|(_, s)| {
                        s.exec.current().part.0 == part_index
                            && s.parts[part_index].server_conn.is_none()
                            && s.parts.iter().any(|p| {
                                p.reply_to.as_ref().is_some_and(|addr| addr.host == peer.host)
                            })
                    })
                    .min_by_key(|(_, s)| s.seq)
                    .map(|(key, _)| key.clone());
                ctx.trace(format!("bridge accepted {peer} on part #{part_index}"));
                match matched {
                    Some(key) => {
                        let mut session = self.sessions.remove(&key).expect("matched live session");
                        session.parts[part_index].server_conn = Some(conn);
                        session.conns.push(conn);
                        session.last_activity = ctx.now();
                        self.conn_sessions.insert(conn, (key.clone(), part_index));
                        self.sessions.insert(key, session);
                    }
                    None => {
                        let key = SessionKey::Conn(conn);
                        let mut session = self.fresh_session(ctx.now());
                        session.parts[part_index].server_conn = Some(conn);
                        session.conns.push(conn);
                        self.conn_sessions.insert(conn, (key.clone(), part_index));
                        self.stats.record_session_started();
                        self.arm_expiry(ctx, &key, &mut session);
                        self.sessions.insert(key, session);
                    }
                }
            }
            TcpEvent::Connected { conn, .. } => {
                let Some((key, part_index)) = self.conn_sessions.get(&conn).cloned() else {
                    return;
                };
                let Some(mut session) = self.sessions.remove(&key) else { return };
                session.last_activity = ctx.now();
                while let Some(payload) = session.parts[part_index].pending_out.pop_front() {
                    if let Err(err) = ctx.tcp_send(conn, payload) {
                        // A lost handshake-buffered request condemns the
                        // session like any other emit failure.
                        self.stats.record_error(format!("flush on connect: {err}"));
                        session.failed = true;
                        break;
                    }
                }
                self.conclude(ctx, key, session);
            }
            TcpEvent::Data { conn, payload } => {
                let Some((key, part_index)) = self.conn_sessions.get(&conn).cloned() else {
                    return;
                };
                self.buffers.entry(conn).or_default().extend_from_slice(&payload);
                let Some(mut session) = self.sessions.remove(&key) else { return };
                session.last_activity = ctx.now();
                self.drain_stream(ctx, &key, &mut session, conn, part_index);
                self.conclude(ctx, key, session);
            }
            TcpEvent::Closed { conn } => {
                if let Some((key, part_index)) = self.conn_sessions.remove(&conn) {
                    if let Some(session) = self.sessions.get_mut(&key) {
                        let part = &mut session.parts[part_index];
                        if part.server_conn == Some(conn) {
                            part.server_conn = None;
                        }
                        if part.client_conn == Some(conn) {
                            part.client_conn = None;
                        }
                        session.conns.retain(|c| *c != conn);
                    }
                }
                self.buffers.remove(&conn);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if self.retry_sessions.contains_key(&tag) {
            self.on_retry_timer(ctx, tag);
            return;
        }
        if let Some(mut rt) = self.fused.take() {
            self.fused_timer(ctx, &mut rt, tag);
            self.fused = Some(rt);
            return;
        }
        let Some(key) = self.timer_sessions.remove(&tag) else { return };
        let Some(mut session) = self.sessions.remove(&key) else { return };
        session.timer = None;
        let deadline = session.last_activity + self.config.idle_timeout;
        if ctx.now() >= deadline {
            self.unlink(ctx, &mut session);
            self.stats.record_session_expired();
            ctx.trace(format!(
                "bridge session {key} expired after {} idle",
                ctx.now().since(session.last_activity)
            ));
        } else {
            // Activity since the timer was armed: re-arm for the
            // remaining idle window.
            let remaining = deadline.since(ctx.now());
            let new_tag = self.next_timer_tag;
            self.next_timer_tag += 1;
            let id = ctx.set_timer(remaining, new_tag);
            self.timer_sessions.insert(new_tag, key.clone());
            session.timer = Some((id, new_tag));
            self.sessions.insert(key, session);
        }
    }
}
