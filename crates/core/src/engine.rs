//! The Automata Engine (§IV-B): a network actor that "executes the
//! behaviour of the merged automata i.e. it controls the sequence of
//! sending, receiving and translation of messages".
//!
//! One [`BridgeEngine`] is deployed per bridge. At receiving states it
//! listens on the state's colour (port/group), parses arriving bytes with
//! the protocol's MDL codec, and advances the execution; bridge (δ)
//! states apply translation logic and λ actions; at sending states it
//! composes the translated abstract message and emits it with the colour's
//! network semantics (unicast reply, multicast group, or TCP connection
//! pointed by a prior `set_host`).
//!
//! All routing decisions are **precomputed at deployment**: datagram →
//! part and listener → part lookup tables, the per-state emit plans
//! (transport/port/group), and the blank schema instances a fresh session
//! needs. The per-message path does table lookups and reuses one compose
//! scratch buffer — it allocates only what the network layer must own.

use crate::error::{CoreError, Result};
use crate::stats::BridgeStats;
use starlink_automata::{
    Action, Execution, FunctionRegistry, GlobalState, MergedAutomaton, PartId, ResolvedAction,
    StateId, StepOutcome, Transport,
};
use starlink_mdl::MdlCodec;
use starlink_message::AbstractMessage;
use starlink_net::{Actor, ConnId, Context, Datagram, SimAddr, SimTime, TcpEvent};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Per-part (per-protocol) runtime networking state.
#[derive(Debug, Default)]
struct PartState {
    /// Source of the last datagram received for this part — replies go
    /// back there (request/response over UDP).
    reply_to: Option<SimAddr>,
    /// Connection accepted on this part's listening port (we are the
    /// server side, e.g. serving HTTP GET in the UPnP→SLP case).
    server_conn: Option<ConnId>,
    /// Connection we initiated (client side, e.g. fetching the device
    /// description in the SLP→UPnP case).
    client_conn: Option<ConnId>,
    /// Payloads composed before the client connection finished its
    /// handshake; flushed on `Connected`.
    pending_out: VecDeque<Vec<u8>>,
}

/// Network semantics of sending from one state, resolved at deployment.
#[derive(Debug, Clone)]
struct EmitSpec {
    transport: Transport,
    port: u16,
    /// The colour's multicast group endpoint, pre-built.
    group: Option<SimAddr>,
}

/// The deployed bridge: implements [`Actor`] so it can be dropped into a
/// simulation as "the framework ... transparently deployed in the
/// network" (§IV).
pub struct BridgeEngine {
    automaton: Arc<MergedAutomaton>,
    codecs: Vec<Arc<MdlCodec>>,
    functions: Arc<FunctionRegistry>,
    stats: BridgeStats,
    exec: Execution,
    session_started: Option<SimTime>,
    set_host: Option<SimAddr>,
    parts: Vec<PartState>,
    conn_part: BTreeMap<ConnId, usize>,
    buffers: BTreeMap<ConnId, Vec<u8>>,
    /// (UDP port, multicast group) → part, first declaration wins.
    udp_exact: BTreeMap<(u16, Arc<str>), usize>,
    /// UDP port → part for unicast delivery, last declaration wins
    /// (responses come back unicast even on multicast colours).
    udp_fallback: BTreeMap<u16, usize>,
    /// TCP listening port → part, first declaration wins.
    tcp_parts: BTreeMap<u16, usize>,
    /// Per-state emit plans.
    emit_specs: BTreeMap<GlobalState, EmitSpec>,
    /// Blank schema-typed instances for every message the bridge may
    /// compose; cloned into each fresh session's store.
    blank_instances: Vec<AbstractMessage>,
    /// Scratch buffer reused by every compose.
    compose_buf: Vec<u8>,
}

impl std::fmt::Debug for BridgeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BridgeEngine")
            .field("automaton", &self.automaton.name())
            .field("session_started", &self.session_started)
            .finish()
    }
}

impl BridgeEngine {
    /// Creates an engine for `automaton`; `codecs` must be indexed by the
    /// automaton's part order (the framework resolves them by protocol
    /// name). All routing tables are computed here, once.
    pub(crate) fn new(
        automaton: Arc<MergedAutomaton>,
        codecs: Vec<Arc<MdlCodec>>,
        functions: Arc<FunctionRegistry>,
        stats: BridgeStats,
    ) -> Self {
        let parts = (0..automaton.parts().len()).map(|_| PartState::default()).collect();

        let mut udp_exact: BTreeMap<(u16, Arc<str>), usize> = BTreeMap::new();
        let mut udp_fallback: BTreeMap<u16, usize> = BTreeMap::new();
        let mut tcp_parts: BTreeMap<u16, usize> = BTreeMap::new();
        for (index, part) in automaton.parts().iter().enumerate() {
            for color in part.colors() {
                match color.transport() {
                    Transport::Udp => {
                        if let Some(group) = color.group() {
                            udp_exact.entry((color.port(), Arc::from(group))).or_insert(index);
                        }
                        udp_fallback.insert(color.port(), index);
                    }
                    Transport::Tcp => {
                        tcp_parts.entry(color.port()).or_insert(index);
                    }
                }
            }
        }

        let mut emit_specs = BTreeMap::new();
        for (pi, part) in automaton.parts().iter().enumerate() {
            for si in 0..part.states().len() {
                let gs = GlobalState { part: PartId(pi), state: StateId(si) };
                if let Ok(color) = part.color_of(StateId(si)) {
                    emit_specs.insert(
                        gs,
                        EmitSpec {
                            transport: color.transport(),
                            port: color.port(),
                            group: color.group().map(|g| SimAddr::new(g, color.port())),
                        },
                    );
                }
            }
        }

        // Schema-typed blank instances for every message the bridge may
        // need to compose (assignment targets and send-transition labels).
        let mut targets: BTreeSet<&str> = BTreeSet::new();
        for assignment in automaton.assignments() {
            targets.insert(&assignment.target_message);
        }
        for part in automaton.parts() {
            for transition in part.transitions() {
                if transition.action == Action::Send {
                    targets.insert(&transition.message);
                }
            }
        }
        let mut blank_instances = Vec::with_capacity(targets.len());
        for name in targets {
            for codec in &codecs {
                if let Ok(schema) = codec.schema(name) {
                    blank_instances.push(schema.instantiate());
                    break;
                }
            }
        }

        let exec = Self::fresh_execution(&automaton, &functions, &blank_instances);
        BridgeEngine {
            automaton,
            codecs,
            functions,
            stats,
            exec,
            session_started: None,
            set_host: None,
            parts,
            conn_part: BTreeMap::new(),
            buffers: BTreeMap::new(),
            udp_exact,
            udp_fallback,
            tcp_parts,
            emit_specs,
            blank_instances,
            compose_buf: Vec::new(),
        }
    }

    /// The stats handle shared with the harness.
    pub fn stats(&self) -> BridgeStats {
        self.stats.clone()
    }

    /// Builds a fresh execution with the precomputed blank instances
    /// registered in its store.
    fn fresh_execution(
        automaton: &Arc<MergedAutomaton>,
        functions: &Arc<FunctionRegistry>,
        blank_instances: &[AbstractMessage],
    ) -> Execution {
        let mut exec = Execution::new(automaton.clone(), functions.clone());
        for blank in blank_instances {
            exec.store_mut().insert(blank.clone());
        }
        exec
    }

    fn reset_session(&mut self) {
        self.exec = Self::fresh_execution(&self.automaton, &self.functions, &self.blank_instances);
        self.session_started = None;
        self.set_host = None;
        for part in &mut self.parts {
            *part = PartState::default();
        }
        self.conn_part.clear();
        self.buffers.clear();
    }

    /// Finds the part a datagram belongs to by its destination port
    /// (and, for multicast, group address) — a table lookup.
    fn part_for_datagram(&self, datagram: &Datagram) -> Option<usize> {
        if datagram.to.is_multicast() {
            let key = (datagram.to.port, datagram.to.host.clone());
            if let Some(&part) = self.udp_exact.get(&key) {
                return Some(part);
            }
        }
        self.udp_fallback.get(&datagram.to.port).copied()
    }

    fn part_for_listener(&self, local_port: u16) -> Option<usize> {
        self.tcp_parts.get(&local_port).copied()
    }

    fn apply_actions(&mut self, ctx: &mut Context<'_>, outcome: &StepOutcome) {
        for action in &outcome.actions {
            match action {
                ResolvedAction::SetHost { host, port } => {
                    ctx.trace(format!("bridge λ set_host({host}, {port})"));
                    self.set_host = Some(SimAddr::new(host.as_str(), *port));
                }
                ResolvedAction::Custom { name, .. } => {
                    ctx.trace(format!("bridge λ {name}(..) (no engine interpretation)"));
                }
            }
        }
    }

    /// Delivers a parsed message to the execution and pumps any sends
    /// that become ready.
    fn deliver(&mut self, ctx: &mut Context<'_>, message: AbstractMessage) {
        if self.session_started.is_none() {
            self.session_started = Some(ctx.now());
        }
        match self.exec.deliver(message) {
            Ok(outcome) => {
                self.apply_actions(ctx, &outcome);
                self.pump_sends(ctx);
            }
            Err(err) => {
                self.stats.record_error(err.to_string());
                ctx.trace(format!("bridge dropped message: {err}"));
            }
        }
    }

    fn session_complete(&self) -> bool {
        self.exec.at_accepting()
            || (!self.exec.history().is_empty() && self.exec.current() == self.automaton.initial())
    }

    /// Composes and emits messages while the execution rests in sending
    /// states.
    fn pump_sends(&mut self, ctx: &mut Context<'_>) {
        while let Some(name) = self.exec.next_send().map(str::to_owned) {
            let current = self.exec.current();
            let part_index = current.part.0;
            let Some(spec) = self.emit_specs.get(&current).cloned() else {
                self.stats.record_error(format!("state {current} has no colour to send on"));
                return;
            };
            let codec = self.codecs[part_index].clone();
            let message = match self.exec.store().get(&name) {
                Some(instance) => instance.clone(),
                None => AbstractMessage::new(codec.protocol(), name.as_str()),
            };
            // Dynamic ⊨ check (equation (1)): the translated instance must
            // have every mandatory field filled before it may leave the
            // framework — an unfilled field means the declared semantic
            // equivalence did not hold for this exchange.
            let unfilled = message.unfilled_mandatory();
            if !unfilled.is_empty() {
                self.stats.record_error(format!(
                    "⊨ violation: {name} has unfilled mandatory fields {unfilled:?}"
                ));
                ctx.trace(format!(
                    "bridge refused to send {name}: mandatory fields {unfilled:?} unfilled"
                ));
                return;
            }
            let mut payload = std::mem::take(&mut self.compose_buf);
            if let Err(err) = codec.compose_into(&message, &mut payload) {
                self.compose_buf = payload;
                self.stats.record_error(format!("compose {name}: {err}"));
                ctx.trace(format!("bridge failed to compose {name}: {err}"));
                return;
            }
            let emitted = self.emit(ctx, part_index, &spec, &payload);
            self.compose_buf = payload;
            if let Err(err) = emitted {
                self.stats.record_error(format!("emit {name}: {err}"));
                ctx.trace(format!("bridge failed to emit {name}: {err}"));
                return;
            }
            match self.exec.sent(message) {
                Ok(outcome) => self.apply_actions(ctx, &outcome),
                Err(err) => {
                    self.stats.record_error(err.to_string());
                    return;
                }
            }
            if self.session_complete() {
                if let Some(started) = self.session_started {
                    self.stats.record_session(started, ctx.now());
                    ctx.trace(format!("bridge session complete in {}", ctx.now().since(started)));
                }
                self.reset_session();
                break;
            }
        }
    }

    /// Emits composed bytes with the colour's network semantics:
    /// UDP replies go to the requester, UDP requests to the multicast
    /// group (or a `set_host` target), TCP uses the accepted connection
    /// when serving or opens one towards the `set_host` target.
    fn emit(
        &mut self,
        ctx: &mut Context<'_>,
        part_index: usize,
        spec: &EmitSpec,
        payload: &[u8],
    ) -> Result<()> {
        match spec.transport {
            Transport::Udp => {
                let destination = if let Some(reply_to) = self.parts[part_index].reply_to.clone() {
                    reply_to
                } else if let Some(target) = self.set_host.clone() {
                    target
                } else if let Some(group) = spec.group.clone() {
                    group
                } else {
                    return Err(CoreError::Deployment(format!(
                        "no destination for unicast UDP send on part #{part_index}: \
                         no request to reply to, no set_host, no group"
                    )));
                };
                ctx.udp_send(spec.port, destination, payload);
                Ok(())
            }
            Transport::Tcp => {
                if let Some(conn) = self.parts[part_index].server_conn {
                    ctx.tcp_send(conn, payload).map_err(CoreError::from)
                } else if let Some(conn) = self.parts[part_index].client_conn {
                    ctx.tcp_send(conn, payload).map_err(CoreError::from)
                } else {
                    let Some(target) = self.set_host.clone() else {
                        return Err(CoreError::Deployment(
                            "TCP send requires a prior set_host λ action".into(),
                        ));
                    };
                    let conn = ctx.tcp_connect(target).map_err(CoreError::from)?;
                    self.conn_part.insert(conn, part_index);
                    self.parts[part_index].client_conn = Some(conn);
                    self.parts[part_index].pending_out.push_back(payload.to_vec());
                    Ok(())
                }
            }
        }
    }

    /// Parses as many messages as the buffered stream for `conn` holds,
    /// delivering each.
    fn drain_stream(&mut self, ctx: &mut Context<'_>, conn: ConnId, part_index: usize) {
        loop {
            let buffer = self.buffers.entry(conn).or_default();
            if buffer.is_empty() {
                break;
            }
            match self.codecs[part_index].parse_prefix(buffer) {
                Ok((message, consumed)) => {
                    self.buffers.get_mut(&conn).expect("buffer exists").drain(..consumed);
                    self.deliver(ctx, message);
                }
                Err(_) => {
                    // Incomplete message: wait for more stream data.
                    break;
                }
            }
        }
    }
}

impl Actor for BridgeEngine {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Bind every colour of every part: UDP ports + multicast groups
        // for datagram protocols, listeners for stream protocols.
        let mut bound: BTreeSet<u16> = BTreeSet::new();
        for part in self.automaton.parts() {
            for color in part.colors() {
                match color.transport() {
                    Transport::Udp => {
                        if bound.insert(color.port()) {
                            if let Err(err) = ctx.bind_udp(color.port()) {
                                ctx.trace(format!("bridge bind failed: {err}"));
                            }
                        }
                        if let Some(group) = color.group() {
                            ctx.join_group(SimAddr::new(group, color.port()));
                        }
                    }
                    Transport::Tcp => {
                        ctx.listen_tcp(color.port());
                    }
                }
            }
        }
        ctx.trace(format!("bridge {} deployed", self.automaton.name()));
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let Some(part_index) = self.part_for_datagram(&datagram) else {
            ctx.trace(format!("bridge: no part for datagram to {}", datagram.to));
            return;
        };
        let parsed = self.codecs[part_index].parse(&datagram.payload);
        match parsed {
            Ok(message) => {
                self.parts[part_index].reply_to = Some(datagram.from.clone());
                self.deliver(ctx, message);
            }
            Err(err) => {
                self.stats.record_error(format!("parse on part #{part_index}: {err}"));
                ctx.trace(format!("bridge failed to parse datagram: {err}"));
            }
        }
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, peer, local_port } => {
                let Some(part_index) = self.part_for_listener(local_port) else {
                    ctx.trace(format!("bridge: no part listens on port {local_port}"));
                    return;
                };
                ctx.trace(format!("bridge accepted {peer} on part #{part_index}"));
                self.conn_part.insert(conn, part_index);
                self.parts[part_index].server_conn = Some(conn);
            }
            TcpEvent::Connected { conn, .. } => {
                let Some(&part_index) = self.conn_part.get(&conn) else { return };
                while let Some(payload) = self.parts[part_index].pending_out.pop_front() {
                    if let Err(err) = ctx.tcp_send(conn, payload) {
                        self.stats.record_error(err.to_string());
                    }
                }
            }
            TcpEvent::Data { conn, payload } => {
                let Some(&part_index) = self.conn_part.get(&conn) else { return };
                self.buffers.entry(conn).or_default().extend_from_slice(&payload);
                self.drain_stream(ctx, conn, part_index);
            }
            TcpEvent::Closed { conn } => {
                if let Some(part_index) = self.conn_part.remove(&conn) {
                    let part = &mut self.parts[part_index];
                    if part.server_conn == Some(conn) {
                        part.server_conn = None;
                    }
                    if part.client_conn == Some(conn) {
                        part.client_conn = None;
                    }
                }
                self.buffers.remove(&conn);
            }
        }
    }
}
