//! Error type for the Starlink framework.

use starlink_automata::AutomataError;
use starlink_mdl::MdlError;
use starlink_message::MessageError;
use starlink_net::NetError;
use std::fmt;

/// Error raised by the framework (model loading, deployment, execution).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A required protocol has no loaded MDL codec.
    MissingCodec(String),
    /// Deployment-time validation failed (merge constraints, colours).
    Deployment(String),
    /// An MDL operation failed.
    Mdl(MdlError),
    /// An automata operation failed.
    Automata(AutomataError),
    /// A message operation failed.
    Message(MessageError),
    /// A network operation failed.
    Net(NetError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MissingCodec(protocol) => {
                write!(f, "no MDL codec loaded for protocol {protocol:?}")
            }
            CoreError::Deployment(msg) => write!(f, "deployment error: {msg}"),
            CoreError::Mdl(err) => write!(f, "{err}"),
            CoreError::Automata(err) => write!(f, "{err}"),
            CoreError::Message(err) => write!(f, "{err}"),
            CoreError::Net(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Mdl(err) => Some(err),
            CoreError::Automata(err) => Some(err),
            CoreError::Message(err) => Some(err),
            CoreError::Net(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MdlError> for CoreError {
    fn from(err: MdlError) -> Self {
        CoreError::Mdl(err)
    }
}

impl From<AutomataError> for CoreError {
    fn from(err: AutomataError) -> Self {
        CoreError::Automata(err)
    }
}

impl From<MessageError> for CoreError {
    fn from(err: MessageError) -> Self {
        CoreError::Message(err)
    }
}

impl From<NetError> for CoreError {
    fn from(err: NetError) -> Self {
        CoreError::Net(err)
    }
}

/// Convenient result alias for framework operations.
pub type Result<T> = std::result::Result<T, CoreError>;
