//! Error type for the Starlink framework.

use starlink_automata::AutomataError;
use starlink_mdl::MdlError;
use starlink_message::MessageError;
use starlink_net::NetError;
use starlink_xml::{diag, Diagnostic};
use std::fmt;

/// The full `starlink-check` verdict on one rejected model source: the
/// subject (file path or model name) plus every diagnostic, with lint
/// codes and line/column positions intact — so a registry caller can
/// render, filter or machine-read the report instead of grepping a
/// flattened string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelReport {
    /// What was checked (a file path for on-disk sources, a model name
    /// for in-memory gates).
    pub subject: String,
    /// Every diagnostic the checks produced, errors and warnings alike.
    pub diagnostics: Vec<Diagnostic>,
}

impl ModelReport {
    /// The rendered multi-line report, errors first — identical to the
    /// `starlink-check` CLI output for the same source.
    pub fn render(&self) -> String {
        diag::render(&self.diagnostics)
    }

    /// Diagnostics of `Error` severity (the ones that rejected the
    /// source).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity() == starlink_xml::Severity::Error)
    }
}

impl fmt::Display for ModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rejected:\n{}", self.subject, self.render())
    }
}

/// Error raised by the framework (model loading, deployment, execution).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A required protocol has no loaded MDL codec.
    MissingCodec(String),
    /// Deployment-time validation failed (merge constraints, colours).
    Deployment(String),
    /// The registry's deployment gate rejected a model source; the
    /// report carries the structured `starlink-check` diagnostics.
    Rejected(ModelReport),
    /// An MDL operation failed.
    Mdl(MdlError),
    /// An automata operation failed.
    Automata(AutomataError),
    /// A message operation failed.
    Message(MessageError),
    /// A network operation failed.
    Net(NetError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MissingCodec(protocol) => {
                write!(f, "no MDL codec loaded for protocol {protocol:?}")
            }
            CoreError::Deployment(msg) => write!(f, "deployment error: {msg}"),
            CoreError::Rejected(report) => write!(f, "deployment gate: {report}"),
            CoreError::Mdl(err) => write!(f, "{err}"),
            CoreError::Automata(err) => write!(f, "{err}"),
            CoreError::Message(err) => write!(f, "{err}"),
            CoreError::Net(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Mdl(err) => Some(err),
            CoreError::Automata(err) => Some(err),
            CoreError::Message(err) => Some(err),
            CoreError::Net(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MdlError> for CoreError {
    fn from(err: MdlError) -> Self {
        CoreError::Mdl(err)
    }
}

impl From<AutomataError> for CoreError {
    fn from(err: AutomataError) -> Self {
        CoreError::Automata(err)
    }
}

impl From<MessageError> for CoreError {
    fn from(err: MessageError) -> Self {
        CoreError::Message(err)
    }
}

impl From<NetError> for CoreError {
    fn from(err: NetError) -> Self {
        CoreError::Net(err)
    }
}

/// Convenient result alias for framework operations.
pub type Result<T> = std::result::Result<T, CoreError>;
