//! The Starlink framework facade (Fig. 6): model registries plus bridge
//! deployment. "The framework is composed of general software elements
//! that are specialised by models; a process that can be executed
//! dynamically."

use crate::engine::{BridgeEngine, EngineConfig};
use crate::error::{CoreError, Result};
use crate::stats::{AtomicConcurrency, BridgeStats, ShardedStats};
use starlink_automata::{load_bridge, FunctionRegistry, MergedAutomaton};
use starlink_mdl::{load_mdl, MarshallerRegistry, MdlCodec, MdlRegistry};
use starlink_message::Value;
use std::sync::Arc;

/// The framework: load MDLs and bridge models at runtime, then deploy
/// engines.
///
/// ```
/// use starlink_core::Starlink;
///
/// let mut starlink = Starlink::new();
/// starlink.load_mdl_xml(r#"
///   <MDL protocol="Echo" kind="binary">
///     <Header type="Echo"><Op>8</Op></Header>
///     <Message type="Ping"><Rule>Op=1</Rule></Message>
///   </MDL>"#)?;
/// assert!(starlink.codec("Echo").is_some());
/// # Ok::<(), starlink_core::CoreError>(())
/// ```
pub struct Starlink {
    mdls: MdlRegistry,
    marshallers: Arc<MarshallerRegistry>,
    functions: FunctionRegistry,
}

impl std::fmt::Debug for Starlink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Starlink").field("protocols", &self.mdls.protocols()).finish()
    }
}

impl Starlink {
    /// Creates a framework instance with the built-in marshallers and
    /// translation functions.
    pub fn new() -> Self {
        Starlink {
            mdls: MdlRegistry::new(),
            marshallers: Arc::new(MarshallerRegistry::with_builtins()),
            functions: FunctionRegistry::with_builtins(),
        }
    }

    /// Creates a framework instance with a custom marshaller registry
    /// (runtime type plug-ins, §IV-A).
    pub fn with_marshallers(marshallers: MarshallerRegistry) -> Self {
        Starlink {
            mdls: MdlRegistry::new(),
            marshallers: Arc::new(marshallers),
            functions: FunctionRegistry::with_builtins(),
        }
    }

    /// Loads an MDL XML document, generating and registering its codec.
    ///
    /// # Errors
    ///
    /// Fails on malformed documents or inconsistent specs.
    pub fn load_mdl_xml(&mut self, xml: &str) -> Result<Arc<MdlCodec>> {
        let spec = load_mdl(xml)?;
        let codec = Arc::new(MdlCodec::generate_with(spec, self.marshallers.clone())?);
        self.mdls.insert(codec.clone());
        Ok(codec)
    }

    /// The codec loaded for `protocol`, if any.
    pub fn codec(&self, protocol: &str) -> Option<Arc<MdlCodec>> {
        self.mdls.get(protocol).cloned()
    }

    /// Protocols with loaded codecs, sorted.
    pub fn protocols(&self) -> Vec<&str> {
        self.mdls.protocols()
    }

    /// The framework's translation-function registry (builtins plus
    /// anything added via [`Starlink::register_function`]).
    pub fn functions(&self) -> &FunctionRegistry {
        &self.functions
    }

    /// Registers a custom translation function `T` (§III-D).
    pub fn register_function(
        &mut self,
        name: impl Into<String>,
        function: impl Fn(&[Value]) -> starlink_automata::Result<Value> + Send + Sync + 'static,
    ) {
        self.functions.register(name, function);
    }

    /// Loads a `<Bridge>` XML document into a merged automaton.
    ///
    /// # Errors
    ///
    /// Fails on malformed documents or unresolved state references.
    pub fn load_bridge_xml(&self, xml: &str) -> Result<MergedAutomaton> {
        Ok(load_bridge(xml)?)
    }

    /// Deploys a merged automaton as a bridge engine.
    ///
    /// Validates the paper's merge constraints first and resolves one
    /// loaded codec per part protocol. The returned engine is an
    /// [`starlink_net::Actor`]; add it to a simulation at the bridge's
    /// host. The [`BridgeStats`] handle reports translation times.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Deployment`] when the merge constraints are
    /// violated (or two parts declare colours on the same port) and
    /// [`CoreError::MissingCodec`] when a part protocol has no codec.
    pub fn deploy(&self, merged: MergedAutomaton) -> Result<(BridgeEngine, BridgeStats)> {
        self.deploy_with(merged, EngineConfig::default())
    }

    /// Deploys a merged automaton with an explicit runtime policy (idle
    /// timeout, session correlator).
    ///
    /// # Errors
    ///
    /// As [`Starlink::deploy`].
    pub fn deploy_with(
        &self,
        merged: MergedAutomaton,
        config: EngineConfig,
    ) -> Result<(BridgeEngine, BridgeStats)> {
        let (merged, codecs) = self.check_and_resolve(merged)?;
        gate_diagnostics(crate::check::check_deployment(
            &merged,
            &codecs,
            config.correlator.as_deref(),
        ))?;
        let stats = BridgeStats::new();
        let engine = BridgeEngine::new(
            Arc::new(merged),
            codecs,
            Arc::new(self.functions.clone()),
            stats.clone(),
            config,
        )?;
        Ok((engine, stats))
    }

    /// Deploys a merged automaton as `shards` independent engines for a
    /// [`crate::ShardedBridge`]: the automaton, codecs and function
    /// registry are shared (`Arc`), while each engine gets its own
    /// session table and a shard-local [`BridgeStats`] mirroring into
    /// the returned [`ShardedStats`]' fleet-wide gauge. Hand the engines
    /// to [`crate::ShardedBridge::launch`]:
    ///
    /// ```
    /// use starlink_core::{EngineConfig, ShardedBridge, Starlink};
    /// use starlink_net::SimTime;
    /// use starlink_protocols::bridges;
    ///
    /// let mut framework = Starlink::new();
    /// bridges::load_all_mdls(&mut framework)?;
    /// let merged = bridges::slp_to_bonjour();
    /// let (engines, stats) =
    ///     framework.deploy_sharded(merged, EngineConfig::default(), 4)?;
    /// assert_eq!(engines.len(), 4);
    ///
    /// // Each shard runs its engine inside a private simulation on its
    /// // own worker thread; ingress is pinned by source host.
    /// let mut bridge = ShardedBridge::launch(7, "10.0.0.2", engines, |_shard, _sim| {});
    /// bridge.dispatch(SimTime::from_millis(1), std::iter::empty());
    /// bridge.flush(); // barrier: all workers idle, stats stable
    /// assert_eq!(stats.concurrency().started, 0);
    /// # Ok::<(), starlink_core::CoreError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As [`Starlink::deploy`], plus [`CoreError::Deployment`] when
    /// `shards` is zero.
    pub fn deploy_sharded(
        &self,
        merged: MergedAutomaton,
        config: EngineConfig,
        shards: usize,
    ) -> Result<(Vec<BridgeEngine>, ShardedStats)> {
        if shards == 0 {
            return Err(CoreError::Deployment("a sharded bridge needs at least one shard".into()));
        }
        let (merged, codecs) = self.check_and_resolve(merged)?;
        gate_diagnostics(crate::check::check_deployment(
            &merged,
            &codecs,
            config.correlator.as_deref(),
        ))?;
        let automaton = Arc::new(merged);
        let functions = Arc::new(self.functions.clone());
        let gauge = Arc::new(AtomicConcurrency::new());
        let mut engines = Vec::with_capacity(shards);
        let mut shard_stats = Vec::with_capacity(shards);
        for _ in 0..shards {
            let stats = BridgeStats::with_mirror(gauge.clone());
            engines.push(BridgeEngine::new(
                automaton.clone(),
                codecs.clone(),
                functions.clone(),
                stats.clone(),
                config.clone(),
            )?);
            shard_stats.push(stats);
        }
        Ok((engines, ShardedStats::new(shard_stats, gauge)))
    }

    /// Validates the merge constraints and resolves one codec per part.
    /// `pub(crate)` so the runtime registry can reuse the same resolution
    /// with its own structured deployment gate.
    pub(crate) fn check_and_resolve(
        &self,
        merged: MergedAutomaton,
    ) -> Result<(MergedAutomaton, Vec<Arc<MdlCodec>>)> {
        let report = merged.check_merge();
        if !report.is_mergeable() {
            return Err(CoreError::Deployment(format!("merge constraints violated: {report}")));
        }
        let mut codecs = Vec::with_capacity(merged.parts().len());
        for part in merged.parts() {
            let codec = self
                .mdls
                .get(part.protocol())
                .cloned()
                .ok_or_else(|| CoreError::MissingCodec(part.protocol().to_owned()))?;
            codecs.push(codec);
        }
        Ok((merged, codecs))
    }
}

impl Default for Starlink {
    fn default() -> Self {
        Starlink::new()
    }
}

/// The deployment gate: refuses the model when any analysis reports an
/// `Error`-severity diagnostic. The rendered report carries each lint
/// code and source span, so the [`CoreError::Deployment`] message reads
/// like compiler output.
fn gate_diagnostics(diags: Vec<starlink_xml::Diagnostic>) -> Result<()> {
    use starlink_xml::Severity;
    if starlink_xml::diag::any_at_least(&diags, Severity::Error) {
        return Err(CoreError::Deployment(format!(
            "model verification failed:\n{}",
            starlink_xml::diag::render(
                &diags.into_iter().filter(|d| d.severity() == Severity::Error).collect::<Vec<_>>()
            )
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_automata::{Color, ColoredAutomaton, Delta, Mode, Transport};

    const ECHO_MDL: &str = r#"
      <MDL protocol="Echo" kind="binary">
        <Header type="Echo"><Op>8</Op></Header>
        <Message type="Ping"><Rule>Op=1</Rule></Message>
        <Message type="Pong"><Rule>Op=2</Rule></Message>
      </MDL>"#;

    const QUERY_MDL: &str = r#"
      <MDL protocol="Query" kind="binary">
        <Header type="Query"><Op>8</Op></Header>
        <Message type="Ask"><Rule>Op=1</Rule></Message>
        <Message type="Answer"><Rule>Op=2</Rule></Message>
      </MDL>"#;

    fn echo_part() -> ColoredAutomaton {
        ColoredAutomaton::builder("Echo")
            .color(Color::new(Transport::Udp, 1000, Mode::Async).multicast("239.0.0.1"))
            .state("s0")
            .state_accepting("s1")
            .receive("s0", "Ping", "s1")
            .send("s1", "Pong", "s0")
            .build()
            .unwrap()
    }

    fn query_part() -> ColoredAutomaton {
        ColoredAutomaton::builder("Query")
            .color(Color::new(Transport::Udp, 2000, Mode::Async).multicast("239.0.0.2"))
            .state("q0")
            .state("q1")
            .state_accepting("q2")
            .send("q0", "Ask", "q1")
            .receive("q1", "Answer", "q2")
            .build()
            .unwrap()
    }

    fn bridge() -> MergedAutomaton {
        MergedAutomaton::builder("echo-query")
            .part(echo_part())
            .part(query_part())
            .equivalence("Ask", &["Ping"])
            .equivalence("Pong", &["Answer"])
            .delta(Delta::new("Echo:s1", "Query:q0"))
            .delta(Delta::new("Query:q2", "Echo:s1"))
            .build()
            .unwrap()
    }

    #[test]
    fn loads_codecs_and_reports_protocols() {
        let mut starlink = Starlink::new();
        starlink.load_mdl_xml(ECHO_MDL).unwrap();
        starlink.load_mdl_xml(QUERY_MDL).unwrap();
        assert_eq!(starlink.protocols(), vec!["Echo", "Query"]);
        assert!(starlink.codec("Echo").is_some());
        assert!(starlink.codec("Ghost").is_none());
    }

    #[test]
    fn deploy_requires_codecs_for_every_part() {
        let mut starlink = Starlink::new();
        starlink.load_mdl_xml(ECHO_MDL).unwrap();
        let err = starlink.deploy(bridge()).unwrap_err();
        assert!(matches!(err, CoreError::MissingCodec(p) if p == "Query"));
    }

    #[test]
    fn deploy_rejects_unmergeable_automata() {
        let mut starlink = Starlink::new();
        starlink.load_mdl_xml(ECHO_MDL).unwrap();
        starlink.load_mdl_xml(QUERY_MDL).unwrap();
        // Missing return δ: not weakly merged.
        let broken = MergedAutomaton::builder("broken")
            .part(echo_part())
            .part(query_part())
            .equivalence("Ask", &["Ping"])
            .delta(Delta::new("Echo:s1", "Query:q0"))
            .build()
            .unwrap();
        let err = starlink.deploy(broken).unwrap_err();
        assert!(matches!(err, CoreError::Deployment(_)));
    }

    #[test]
    fn deploy_succeeds_with_all_models_loaded() {
        let mut starlink = Starlink::new();
        starlink.load_mdl_xml(ECHO_MDL).unwrap();
        starlink.load_mdl_xml(QUERY_MDL).unwrap();
        let (engine, stats) = starlink.deploy(bridge()).unwrap();
        assert_eq!(stats.session_count(), 0);
        drop(engine);
    }

    #[test]
    fn deploy_rejects_udp_port_collision_between_parts() {
        // Two parts declaring colours on the same UDP port cannot be
        // routed unambiguously: before the session-table runtime this
        // silently misrouted (last declaration won in the fallback
        // table); now it is a deployment error.
        let mut starlink = Starlink::new();
        starlink.load_mdl_xml(ECHO_MDL).unwrap();
        starlink.load_mdl_xml(QUERY_MDL).unwrap();
        let clashing_query = ColoredAutomaton::builder("Query")
            .color(Color::new(Transport::Udp, 1000, Mode::Async).multicast("239.0.0.2"))
            .state("q0")
            .state("q1")
            .state_accepting("q2")
            .send("q0", "Ask", "q1")
            .receive("q1", "Answer", "q2")
            .build()
            .unwrap();
        let merged = MergedAutomaton::builder("clash")
            .part(echo_part())
            .part(clashing_query)
            .equivalence("Ask", &["Ping"])
            .equivalence("Pong", &["Answer"])
            .delta(Delta::new("Echo:s1", "Query:q0"))
            .delta(Delta::new("Query:q2", "Echo:s1"))
            .build()
            .unwrap();
        let err = starlink.deploy(merged).unwrap_err();
        assert!(
            matches!(&err, CoreError::Deployment(msg) if msg.contains("UDP port 1000")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn custom_function_registration() {
        let mut starlink = Starlink::new();
        starlink.register_function("triple", |args| {
            Ok(Value::Unsigned(
                args[0].as_u64().map_err(starlink_automata::AutomataError::from)? * 3,
            ))
        });
        // The function is visible to subsequently deployed engines via the
        // cloned registry; direct check through deploy is covered by the
        // engine tests.
        starlink.load_mdl_xml(ECHO_MDL).unwrap();
    }
}
