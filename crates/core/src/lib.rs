//! # starlink-core
//!
//! The **Starlink framework** (§IV of the paper): the runtime that loads
//! high-level models — MDL message descriptions, coloured automata,
//! merged automata with translation logic — and executes them as a
//! transparent protocol bridge in the network.
//!
//! Architecture (Fig. 6):
//!
//! * **Message composers and parsers** — generated at runtime from MDL
//!   specifications (provided by `starlink-mdl`, registered here);
//! * **Automata engine** ([`BridgeEngine`]) — executes the merged
//!   automaton: listens at receiving states, translates at bridge (δ)
//!   states, composes and sends at sending states;
//! * **Network engine** — provided by `starlink-net`; the engine consumes
//!   state *colours* to bind ports, join multicast groups, open TCP
//!   connections (pointed by `set_host` λ actions) and send with the
//!   right semantics.
//!
//! [`Starlink`] is the entry point: load models, [`Starlink::deploy`] a
//! bridge, drop the returned engine into a simulation, and read
//! translation times from [`BridgeStats`].
//!
//! ```
//! use starlink_core::Starlink;
//!
//! let mut starlink = Starlink::new();
//! starlink.load_mdl_xml(r#"
//!   <MDL protocol="Echo" kind="binary">
//!     <Header type="Echo"><Op>8</Op></Header>
//!     <Message type="Ping"><Rule>Op=1</Rule></Message>
//!   </MDL>"#)?;
//! assert_eq!(starlink.protocols(), vec!["Echo"]);
//! # Ok::<(), starlink_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod engine;
mod error;
mod framework;
mod fused;
mod gateway;
mod host;
mod metrics;
mod registry;
mod shard;
mod stats;
mod synthesis;

pub use check::{check_correlator, check_deployment, check_model_source, XML_LINT_CODE};
pub use engine::{
    BridgeEngine, EngineConfig, FieldCorrelator, SessionCorrelator, SessionKey, StoreForward,
};
pub use error::{CoreError, ModelReport, Result};
pub use framework::Starlink;
pub use fused::FuseReject;
pub use gateway::{GatewayConfig, GatewayStats, ShardedGateway};
pub use host::{BridgeCommand, EngineHost};
pub use metrics::MetricsHub;
pub use registry::{
    deploy_commands, swap_commands, undeploy_commands, BridgeRegistry, DeployState, DeployedBridge,
    LoadedModel,
};
pub use shard::{ControlSlot, ShardHandle, ShardInput, ShardOutput, ShardedBridge};
pub use stats::{
    AtomicConcurrency, BridgeStats, CacheStats, ConcurrencyStats, SessionRecord, ShardedStats,
    StoreForwardStats,
};
pub use synthesis::{analyze_ontology, synthesize_bridge, Ontology};
