//! The live control plane's shard-side half: a host actor multiplexing
//! **coexisting versions** of one bridge on a single simulated host.
//!
//! A [`ShardedBridge`](crate::ShardedBridge) deploys one [`EngineHost`]
//! per shard instead of a bare engine. The host owns a stack of
//! [`BridgeEngine`]s — the *versions* — and implements drain-then-swap:
//!
//! * **fresh traffic** routes to the newest non-draining version (the
//!   *active* one);
//! * **in-flight traffic** — retransmissions, legacy replies, accepted
//!   connections, stream data, timers — routes to whichever version
//!   owns the session, via the engine's ownership probes, so an
//!   exchange started on v1 finishes on v1 even while v2 serves;
//! * **reaping** — a draining version whose live-session count reaches
//!   zero is dropped (its [`BridgeStats`](crate::BridgeStats) ledger is
//!   frozen as retired, never reset), after any event that could have
//!   closed its last session.
//!
//! Commands arrive as [`BridgeCommand`] payloads over the simulator's
//! out-of-band control channel (`SimNet::deliver_control`), which the
//! sharded runtime feeds from its ordinary batch queues — so a swap is
//! serialized against traffic exactly like any other input, per shard.

use crate::engine::BridgeEngine;
use starlink_net::{Actor, Context, Datagram, TcpEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Timer tags are namespaced per hosted version (`version << TAG_SHIFT`)
/// so two engines sharing one simulated host can never collide in the
/// host's timer space.
const TAG_SHIFT: u32 = 40;

/// A control command addressed to one shard's [`EngineHost`].
///
/// The engine it carries was built and gated (deployment checks) on the
/// control-plane side; the host only installs it.
#[derive(Debug)]
pub enum BridgeCommand {
    /// Install `engine` as version `version` and make it the active
    /// target for fresh sessions. Existing versions keep serving their
    /// in-flight sessions.
    Deploy {
        /// Monotonic version number (unique per host; `< 2^24`).
        version: u64,
        /// The gated engine to install.
        engine: BridgeEngine,
    },
    /// Mark every non-draining version as draining and install `engine`
    /// as the new active version — the atomic drain-then-swap.
    Swap {
        /// Version number of the replacement.
        version: u64,
        /// The gated engine to install.
        engine: BridgeEngine,
    },
    /// Mark version `version` as draining without a replacement. With
    /// no active version left, fresh traffic is dropped (and counted as
    /// unrouted) until the next deploy.
    Undeploy {
        /// The version to retire.
        version: u64,
    },
}

/// One hosted engine version.
struct HostedVersion {
    version: u64,
    engine: BridgeEngine,
    draining: bool,
}

/// The multi-version bridge host: see the module docs.
pub struct EngineHost {
    /// Deploy order; the active version is the newest non-draining one.
    versions: Vec<HostedVersion>,
    /// Fresh traffic arriving with no active version, shared across
    /// shards so the driver can read one fleet-wide count.
    unrouted: Arc<AtomicU64>,
}

impl std::fmt::Debug for EngineHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHost")
            .field("versions", &self.versions.iter().map(|v| v.version).collect::<Vec<_>>())
            .finish()
    }
}

impl EngineHost {
    /// Hosts `engine` as the initial active version.
    pub fn new(version: u64, mut engine: BridgeEngine, unrouted: Arc<AtomicU64>) -> Self {
        engine.set_timer_tag_base(version << TAG_SHIFT);
        EngineHost { versions: vec![HostedVersion { version, engine, draining: false }], unrouted }
    }

    fn active_index(&self) -> Option<usize> {
        self.versions.iter().rposition(|v| !v.draining)
    }

    /// Installs a freshly deployed version: namespace its timers, run
    /// its bindings (idempotent on an already-bound host) and make it
    /// the newest — therefore active — version.
    fn install(&mut self, ctx: &mut Context<'_>, version: u64, mut engine: BridgeEngine) {
        engine.set_timer_tag_base(version << TAG_SHIFT);
        let mut hosted = HostedVersion { version, engine, draining: false };
        hosted.engine.on_start(ctx);
        ctx.trace(format!(
            "control: deployed {} v{version} ({} coexisting)",
            hosted.engine.automaton_name(),
            self.versions.len() + 1
        ));
        self.versions.push(hosted);
    }

    /// Marks one version as draining: its stats flip to draining and it
    /// stops receiving fresh sessions from this host.
    fn drain(ctx: &mut Context<'_>, hosted: &mut HostedVersion) {
        if hosted.draining {
            return;
        }
        hosted.draining = true;
        hosted.engine.stats().record_draining();
        ctx.trace(format!(
            "control: draining {} v{} ({} sessions in flight)",
            hosted.engine.automaton_name(),
            hosted.version,
            hosted.engine.live_sessions()
        ));
    }

    /// Reaps every draining version that has drained to zero live
    /// sessions. Called after each event — the moment a version's last
    /// session closes, it is gone.
    fn reap_idle(&mut self, ctx: &mut Context<'_>) {
        let mut index = 0;
        while index < self.versions.len() {
            let hosted = &self.versions[index];
            if hosted.draining && hosted.engine.live_sessions() == 0 {
                let hosted = self.versions.remove(index);
                hosted.engine.stats().record_retired();
                ctx.trace(format!(
                    "control: reaped {} v{} (drained)",
                    hosted.engine.automaton_name(),
                    hosted.version
                ));
            } else {
                index += 1;
            }
        }
    }

    /// Counts fresh traffic arriving with no active version to take it.
    fn record_unrouted(&self, ctx: &mut Context<'_>, what: &str) {
        self.unrouted.fetch_add(1, Ordering::Relaxed);
        ctx.trace(format!("control: dropped unrouted {what} (no active version)"));
    }
}

impl Actor for EngineHost {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for hosted in &mut self.versions {
            hosted.engine.on_start(ctx);
        }
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        // In-flight first: the oldest version owning the datagram's
        // session claims it, so a drained exchange can never leak onto
        // the new version (no cross-version delivery).
        let owner = self
            .versions
            .iter_mut()
            .position(|v| v.engine.owns_datagram(&datagram))
            .or_else(|| self.active_index());
        match owner {
            Some(index) => self.versions[index].engine.on_datagram(ctx, datagram),
            None => self.record_unrouted(ctx, "datagram"),
        }
        self.reap_idle(ctx);
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        let owner = match &event {
            // A fresh accept pairs with the oldest waiting session
            // across versions (mirroring the engine's own oldest-first
            // matching); unmatched peers originate on the active one.
            TcpEvent::Accepted { peer, local_port, .. } => self
                .versions
                .iter()
                .position(|v| v.engine.wants_accept(*local_port, peer))
                .or_else(|| self.active_index()),
            // Established connections already belong to one version.
            TcpEvent::Connected { conn, .. }
            | TcpEvent::Data { conn, .. }
            | TcpEvent::Closed { conn } => {
                self.versions.iter().position(|v| v.engine.owns_conn(*conn))
            }
        };
        match owner {
            Some(index) => self.versions[index].engine.on_tcp(ctx, event),
            // An orphaned Connected/Data/Closed (its version already
            // reaped, or a stranger's accept with no active version) is
            // dropped; only fresh accepts count as unrouted traffic.
            None => {
                if matches!(event, TcpEvent::Accepted { .. }) {
                    self.record_unrouted(ctx, "tcp accept");
                }
            }
        }
        self.reap_idle(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        // Tags are version-namespaced *and* checked against the owning
        // engine's pending-timer tables, so a stale tag (version reaped
        // between arming and firing) falls through harmlessly.
        if let Some(hosted) = self.versions.iter_mut().find(|v| v.engine.owns_timer(tag)) {
            hosted.engine.on_timer(ctx, tag);
        }
        self.reap_idle(ctx);
    }

    fn on_control(&mut self, ctx: &mut Context<'_>, payload: Box<dyn std::any::Any + Send>) {
        let command = match payload.downcast::<BridgeCommand>() {
            Ok(command) => *command,
            Err(_) => {
                ctx.trace("control: dropped payload of unknown type".to_owned());
                return;
            }
        };
        match command {
            BridgeCommand::Deploy { version, engine } => {
                self.install(ctx, version, engine);
            }
            BridgeCommand::Swap { version, engine } => {
                for hosted in &mut self.versions {
                    Self::drain(ctx, hosted);
                }
                self.install(ctx, version, engine);
            }
            BridgeCommand::Undeploy { version } => {
                match self.versions.iter_mut().find(|v| v.version == version) {
                    Some(hosted) => Self::drain(ctx, hosted),
                    None => {
                        ctx.trace(format!("control: undeploy of unknown version {version}"));
                    }
                }
            }
        }
        self.reap_idle(ctx);
    }
}
