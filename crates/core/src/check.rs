//! Deployment-time static verification — the core layer of
//! `starlink-check`.
//!
//! [`check_deployment`] aggregates every model-level analysis over a
//! bridge about to deploy: the MDL lints of each part's spec
//! ([`starlink_mdl::analyze_mdl`]), the automata lints of the merged
//! automaton ([`starlink_automata::analyze_merged`]), and — when a
//! session correlator is configured — the AUT006 correlator-coverage
//! check defined here. [`crate::Starlink::deploy`] runs it as a hard
//! gate: any `Error`-severity diagnostic refuses the deployment before
//! a single session starts, with the lint code and source span in the
//! [`crate::CoreError::Deployment`] message.

use crate::engine::SessionCorrelator;
use starlink_automata::{analyze_automaton, analyze_merged, AutomataError, MergedAutomaton};
use starlink_mdl::{analyze_mdl, MdlCodec, MdlError};
use starlink_xml::{Diagnostic, Element};
use std::sync::Arc;

/// Lint code reported for documents that cannot be parsed or loaded at
/// all: malformed XML, an unknown root element, or a grammar violation
/// inside an otherwise well-formed document.
pub const XML_LINT_CODE: &str = "XML001";

/// Checks one XML model document from source: sniffs the root element
/// (`<MDL>`, `<ColoredAutomaton>` or `<Bridge>`), loads the model, and
/// runs the matching analysis with the parsed document supplied so
/// findings carry line/column spans. Parse and load failures become
/// [`XML_LINT_CODE`] error diagnostics, so callers can treat "file does
/// not even load" and "file loads but is broken" uniformly.
///
/// This is the engine behind the `starlink-check` CLI and the fixture
/// corpus tests; [`check_deployment`] is its deploy-time counterpart
/// for already-built models.
pub fn check_model_source(source: &str) -> Vec<Diagnostic> {
    let root = match Element::parse(source) {
        Ok(root) => root,
        Err(e) => return vec![Diagnostic::error(XML_LINT_CODE, e.kind_message()).at(e.position())],
    };
    match root.name() {
        "MDL" => match starlink_mdl::load_mdl_element_unvalidated(&root) {
            Ok(spec) => analyze_mdl(&spec, Some(&root)),
            Err(MdlError::Xml { message, position }) => {
                vec![Diagnostic::error(XML_LINT_CODE, message).at(position)]
            }
            Err(e) => vec![Diagnostic::error(XML_LINT_CODE, e.to_string())],
        },
        "ColoredAutomaton" => match starlink_automata::load_automaton_element(&root) {
            Ok(automaton) => analyze_automaton(&automaton, Some(&root)),
            Err(AutomataError::Xml { message, position }) => {
                vec![Diagnostic::error(XML_LINT_CODE, message).at(position)]
            }
            Err(e) => vec![Diagnostic::error(XML_LINT_CODE, e.to_string())],
        },
        "Bridge" => match starlink_automata::load_bridge_element(&root) {
            Ok(merged) => analyze_merged(&merged, Some(&root)),
            Err(AutomataError::Xml { message, position }) => {
                vec![Diagnostic::error(XML_LINT_CODE, message).at(position)]
            }
            Err(e) => vec![Diagnostic::error(XML_LINT_CODE, e.to_string())],
        },
        other => vec![Diagnostic::error(
            XML_LINT_CODE,
            format!(
                "unrecognized root element <{other}>; expected <MDL>, \
                 <ColoredAutomaton> or <Bridge>"
            ),
        )
        .at(root.position())],
    }
}

/// AUT006 — correlator-field coverage: every message for which the
/// deployed correlator declares an id field must actually carry that
/// field in its schema. A missing field would make every session key
/// unresolvable at runtime — requests forwarded, answers never routed
/// back — so it is an error.
pub fn check_correlator(
    merged: &MergedAutomaton,
    codecs: &[Arc<MdlCodec>],
    correlator: &dyn SessionCorrelator,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (part, codec) in merged.parts().iter().zip(codecs) {
        let subject = format!("automaton:{}", part.protocol());
        for message in part.messages() {
            let Some(field) = correlator.id_field(part.protocol(), message) else {
                continue;
            };
            let Ok(schema) = codec.schema(message) else {
                diags.push(
                    Diagnostic::error(
                        "AUT006",
                        format!(
                            "correlator keys {message} on field {field:?}, but the {} MDL \
                             defines no such message",
                            part.protocol()
                        ),
                    )
                    .on(subject.clone()),
                );
                continue;
            };
            if !schema.fields().iter().any(|f| f.label.as_str() == field) {
                diags.push(
                    Diagnostic::error(
                        "AUT006",
                        format!(
                            "correlator keys {message} on field {field:?}, which the \
                             message does not carry; sessions could never be matched"
                        ),
                    )
                    .on(subject.clone()),
                );
            }
        }
    }
    diags
}

/// Runs every model-level analysis relevant to deploying `merged` with
/// `codecs`: per-part MDL lints, merged-automaton lints, and (when
/// given) correlator coverage. Pure accumulation — the caller decides
/// what severity gates.
pub fn check_deployment(
    merged: &MergedAutomaton,
    codecs: &[Arc<MdlCodec>],
    correlator: Option<&dyn SessionCorrelator>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for codec in codecs {
        diags.extend(analyze_mdl(codec.spec(), None));
    }
    diags.extend(analyze_merged(merged, None));
    if let Some(correlator) = correlator {
        diags.extend(check_correlator(merged, codecs, correlator));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FieldCorrelator;
    use crate::framework::Starlink;
    use starlink_automata::{Color, ColoredAutomaton, Mode, Transport};

    const ECHO_MDL: &str = r#"
      <MDL protocol="Echo" kind="binary">
        <Header type="Echo"><Op>8</Op><Tag>16</Tag></Header>
        <Message type="Ping"><Rule>Op=1</Rule></Message>
        <Message type="Pong"><Rule>Op=2</Rule></Message>
      </MDL>"#;

    fn echo_part() -> ColoredAutomaton {
        ColoredAutomaton::builder("Echo")
            .color(Color::new(Transport::Udp, 1000, Mode::Async).multicast("239.0.0.1"))
            .state("s0")
            .state_accepting("s1")
            .receive("s0", "Ping", "s1")
            .send("s1", "Pong", "s0")
            .build()
            .unwrap()
    }

    #[test]
    fn covered_correlator_field_is_clean() {
        let mut starlink = Starlink::new();
        let codec = starlink.load_mdl_xml(ECHO_MDL).unwrap();
        let merged = MergedAutomaton::from_single(echo_part());
        let correlator = FieldCorrelator::new([("Echo", "Tag")]);
        assert!(check_correlator(&merged, &[codec], &correlator).is_empty());
    }

    #[test]
    fn missing_correlator_field_is_aut006() {
        let mut starlink = Starlink::new();
        let codec = starlink.load_mdl_xml(ECHO_MDL).unwrap();
        let merged = MergedAutomaton::from_single(echo_part());
        let correlator = FieldCorrelator::new([("Echo", "SessionId")]);
        let diags = check_correlator(&merged, &[codec], &correlator);
        assert_eq!(diags.len(), 2, "{diags:?}"); // Ping and Pong both keyed
        assert!(diags.iter().all(|d| d.code() == "AUT006"));
    }

    #[test]
    fn undeclared_protocols_are_not_checked() {
        let mut starlink = Starlink::new();
        let codec = starlink.load_mdl_xml(ECHO_MDL).unwrap();
        let merged = MergedAutomaton::from_single(echo_part());
        let correlator = FieldCorrelator::new([("Other", "ID")]);
        assert!(check_correlator(&merged, &[codec], &correlator).is_empty());
    }

    #[test]
    fn deployment_check_aggregates_all_layers() {
        let mut starlink = Starlink::new();
        let codec = starlink.load_mdl_xml(ECHO_MDL).unwrap();
        let merged = MergedAutomaton::from_single(echo_part());
        let diags = check_deployment(&merged, &[codec], None);
        // The MDL006 flattenability note is always present; nothing at
        // warning severity or above may fire on a clean model.
        assert!(
            !starlink_xml::diag::any_at_least(&diags, starlink_xml::Severity::Warning),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.code() == "MDL006"));
    }
}
