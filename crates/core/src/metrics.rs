//! Observability export: one [`MetricsHub`] aggregates every versioned
//! deployment's counters into a deterministic Prometheus-style text
//! page, and classifies simulator trace entries into a bounded
//! JSON-lines event log.
//!
//! The hub is the read side of the control plane. Deployment handles
//! ([`DeployedBridge`]) share their stats with the hub, so the page
//! reflects both versions' counters *during* a drain — the old
//! version's ledger keeps its final values after retirement (a swap
//! never resets or double-counts a counter).
//!
//! Serving is the transport's job: [`MetricsHub::render_fn`] plugs into
//! [`starlink_net::MetricsServer`], which a
//! [`ShardedGateway`](crate::ShardedGateway) wires up via
//! `serve_metrics` — `GET /metrics` for the counter page, `GET /trace`
//! for the event log.

use crate::gateway::GatewayStats;
use crate::registry::DeployedBridge;
use starlink_net::{RenderFn, TraceEntry};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Bound on the retained JSON-lines trace log; older events fall off.
const TRACE_CAP: usize = 4096;

/// How a trace event was classified for export.
const TRACE_KINDS: [&str; 5] = ["control", "impairment", "session", "wire", "event"];

type GatewayReader = Box<dyn Fn() -> GatewayStats + Send + Sync>;

#[derive(Default)]
struct HubInner {
    /// Registered deployments, deduped by version; rendering sorts by
    /// (case, version) so the page is deterministic.
    deployments: Vec<DeployedBridge>,
    /// Gateway counter reader, installed by `serve_metrics`.
    gateway: Option<GatewayReader>,
    /// The fleet-wide unrouted-traffic counter, shared with the shards.
    unrouted: Option<Arc<AtomicU64>>,
    /// Bounded JSON-lines event log.
    trace: VecDeque<String>,
    /// Events dropped off the front of the bounded log.
    trace_dropped: u64,
    /// Per-kind event counts (index into [`TRACE_KINDS`]); count every
    /// event ever seen, not just the retained window.
    trace_counts: [u64; 5],
}

/// The aggregation point for the metrics/trace export surface: see the
/// module docs. Clone freely — clones share state.
#[derive(Clone, Default)]
pub struct MetricsHub {
    inner: Arc<Mutex<HubInner>>,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("MetricsHub")
            .field("deployments", &inner.deployments.len())
            .field("trace", &inner.trace.len())
            .finish()
    }
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    fn lock(&self) -> MutexGuard<'_, HubInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers a deployment for rendering. Stats are shared with the
    /// handle, so the page tracks the version through serving, draining
    /// and retirement. Re-registering a version is a no-op.
    pub fn register(&self, deployment: &DeployedBridge) {
        let mut inner = self.lock();
        if inner.deployments.iter().any(|d| d.version() == deployment.version()) {
            return;
        }
        inner.deployments.push(deployment.clone());
    }

    /// Installs the gateway counter reader (wired by
    /// `ShardedGateway::serve_metrics`).
    pub fn set_gateway(&self, read: impl Fn() -> GatewayStats + Send + Sync + 'static) {
        self.lock().gateway = Some(Box::new(read));
    }

    /// Shares the fleet-wide unrouted-traffic counter with the hub.
    pub fn set_unrouted(&self, counter: Arc<AtomicU64>) {
        self.lock().unrouted = Some(counter);
    }

    /// Classifies and appends one simulator trace entry to the bounded
    /// JSON-lines log. `source` names the emitting shard/host.
    pub fn record_trace(&self, source: &str, entry: &TraceEntry) {
        let kind = classify(&entry.description);
        let line = format!(
            r#"{{"at_us":{},"source":"{}","kind":"{}","event":"{}"}}"#,
            entry.at.as_micros(),
            escape_json(source),
            kind,
            escape_json(&entry.description)
        );
        let mut inner = self.lock();
        if let Some(index) = TRACE_KINDS.iter().position(|k| *k == kind) {
            inner.trace_counts[index] += 1;
        }
        if inner.trace.len() == TRACE_CAP {
            inner.trace.pop_front();
            inner.trace_dropped += 1;
        }
        inner.trace.push_back(line);
    }

    /// The retained JSON-lines event log, oldest first.
    pub fn trace_lines(&self) -> Vec<String> {
        self.lock().trace.iter().cloned().collect()
    }

    /// Renders the Prometheus-style counter page. Deterministic: same
    /// counter state, same page, byte for byte.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut deployments: Vec<&DeployedBridge> = inner.deployments.iter().collect();
        deployments.sort_by(|a, b| a.case().cmp(b.case()).then(a.version().cmp(&b.version())));

        let mut page = String::new();
        let out = &mut page;
        let _ = writeln!(out, "# HELP starlink_up The export surface is serving.");
        let _ = writeln!(out, "# TYPE starlink_up gauge");
        let _ = writeln!(out, "starlink_up 1");
        let _ = writeln!(out, "# HELP starlink_deployments Versioned deployments registered.");
        let _ = writeln!(out, "# TYPE starlink_deployments gauge");
        let _ = writeln!(out, "starlink_deployments {}", deployments.len());

        family(
            out,
            "starlink_deployment_state",
            "gauge",
            "Lifecycle state of each versioned deployment (1 = current state).",
        );
        for d in &deployments {
            let _ = writeln!(
                out,
                "starlink_deployment_state{{{},state=\"{}\"}} 1",
                labels(d),
                d.state()
            );
        }
        family(out, "starlink_deployment_shards", "gauge", "Shards per deployment, by state.");
        for d in &deployments {
            let _ =
                writeln!(out, "starlink_deployment_shards{{{}}} {}", labels(d), d.shard_count());
            let _ = writeln!(
                out,
                "starlink_deployment_shards_draining{{{}}} {}",
                labels(d),
                d.stats().draining_shards()
            );
            let _ = writeln!(
                out,
                "starlink_deployment_shards_retired{{{}}} {}",
                labels(d),
                d.stats().retired_shards()
            );
        }
        family(
            out,
            "starlink_sessions_total",
            "counter",
            "Sessions per deployment by outcome; started == completed + failed + expired + active.",
        );
        for d in &deployments {
            let c = d.stats().merged().concurrency();
            for (outcome, value) in [
                ("started", c.started),
                ("completed", c.completed),
                ("failed", c.failed),
                ("expired", c.expired),
            ] {
                let _ = writeln!(
                    out,
                    "starlink_sessions_total{{{},outcome=\"{outcome}\"}} {value}",
                    labels(d)
                );
            }
        }
        family(
            out,
            "starlink_sessions_active",
            "gauge",
            "Sessions live right now, per deployment.",
        );
        for d in &deployments {
            let c = d.stats().merged().concurrency();
            let _ = writeln!(out, "starlink_sessions_active{{{}}} {}", labels(d), c.active);
            let _ =
                writeln!(out, "starlink_sessions_peak_active{{{}}} {}", labels(d), c.peak_active);
        }
        family(
            out,
            "starlink_translation_micros",
            "counter",
            "Sum and count of end-to-end translation times, per deployment.",
        );
        for d in &deployments {
            let times = d.stats().translation_times();
            let sum: u64 = times.iter().map(|t| t.as_micros()).sum();
            let _ = writeln!(out, "starlink_translation_micros_sum{{{}}} {sum}", labels(d));
            let _ =
                writeln!(out, "starlink_translation_micros_count{{{}}} {}", labels(d), times.len());
        }
        family(
            out,
            "starlink_cache_events_total",
            "counter",
            "Answer-cache events per deployment (fused bridges only).",
        );
        for d in &deployments {
            let cache = d.stats().cache();
            for (event, value) in [
                ("hit", cache.hits),
                ("miss", cache.misses),
                ("insertion", cache.insertions),
                ("expiration", cache.expirations),
            ] {
                let _ = writeln!(
                    out,
                    "starlink_cache_events_total{{{},event=\"{event}\"}} {value}",
                    labels(d)
                );
            }
        }
        family(
            out,
            "starlink_store_forward_total",
            "counter",
            "Store-and-forward leg events per deployment (delay-tolerant sessions only).",
        );
        for d in &deployments {
            let sf = d.stats().store_forward();
            for (event, value) in [
                ("parked", sf.parked),
                ("replayed", sf.replayed),
                ("overflow", sf.overflow),
                ("abandoned", sf.abandoned),
            ] {
                let _ = writeln!(
                    out,
                    "starlink_store_forward_total{{{},event=\"{event}\"}} {value}",
                    labels(d)
                );
            }
        }
        family(
            out,
            "starlink_engine_errors_total",
            "counter",
            "Messages the engines dropped (parse/translate failures), per deployment.",
        );
        for d in &deployments {
            let _ = writeln!(
                out,
                "starlink_engine_errors_total{{{}}} {}",
                labels(d),
                d.stats().errors().len()
            );
        }
        if let Some(counter) = &inner.unrouted {
            family(
                out,
                "starlink_unrouted_total",
                "counter",
                "Fresh traffic dropped because no active version would take it.",
            );
            let _ = writeln!(out, "starlink_unrouted_total {}", counter.load(Ordering::Relaxed));
        }
        if let Some(read) = &inner.gateway {
            let g = read();
            family(
                out,
                "starlink_gateway_datagrams_total",
                "counter",
                "Datagrams crossing the gateway's real sockets.",
            );
            let _ = writeln!(
                out,
                "starlink_gateway_datagrams_total{{direction=\"in\"}} {}",
                g.datagrams_in
            );
            let _ = writeln!(
                out,
                "starlink_gateway_datagrams_total{{direction=\"out\"}} {}",
                g.datagrams_out
            );
            family(
                out,
                "starlink_gateway_submits_total",
                "counter",
                "Batches the gateway submitted to shard queues.",
            );
            let _ = writeln!(out, "starlink_gateway_submits_total {}", g.submits);
            family(
                out,
                "starlink_gateway_send_errors_total",
                "counter",
                "Egress sends that failed (batch finished anyway).",
            );
            let _ = writeln!(out, "starlink_gateway_send_errors_total {}", g.send_errors);
        }
        family(
            out,
            "starlink_trace_events_total",
            "counter",
            "Classified simulator trace events seen by the hub.",
        );
        for (kind, count) in TRACE_KINDS.iter().zip(inner.trace_counts) {
            let _ = writeln!(out, "starlink_trace_events_total{{kind=\"{kind}\"}} {count}");
        }
        let _ = writeln!(out, "starlink_trace_events_dropped {}", inner.trace_dropped);
        page
    }

    /// Routes a request path to a page: `/metrics` renders the counter
    /// page, `/trace` the JSON-lines event log; anything else is a 404.
    pub fn render_page(&self, path: &str) -> Option<String> {
        match path {
            "/metrics" => Some(self.render()),
            "/trace" => {
                let mut body = self.trace_lines().join("\n");
                body.push('\n');
                Some(body)
            }
            _ => None,
        }
    }

    /// The hub as a [`starlink_net::MetricsServer`] render callback.
    pub fn render_fn(&self) -> RenderFn {
        let hub = self.clone();
        Arc::new(move |path| hub.render_page(path))
    }
}

/// Emits one family's `# HELP` / `# TYPE` preamble.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// The shared `case`/`version` label pair of one deployment.
fn labels(deployment: &DeployedBridge) -> String {
    format!(r#"case="{}",version="{}""#, escape_json(deployment.case()), deployment.version())
}

/// Classifies a trace description for export. The vocabulary is the
/// simulator's own: chaos/pass-schedule impairments, control-plane
/// messages, engine session events, raw wire traffic.
fn classify(description: &str) -> &'static str {
    if description.starts_with("control") {
        "control"
    } else if description.starts_with("chaos") || description.starts_with("pass ") {
        "impairment"
    } else if description.starts_with("bridge ") || description.contains("session") {
        "session"
    } else if description.starts_with("udp") || description.starts_with("tcp") {
        "wire"
    } else {
        "event"
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape_json(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(escaped, "\\u{:04x}", c as u32);
            }
            c => escaped.push(c),
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_net::SimTime;

    #[test]
    fn empty_hub_renders_a_stable_header() {
        let hub = MetricsHub::new();
        let page = hub.render();
        assert!(page.starts_with("# HELP starlink_up"));
        assert!(page.contains("starlink_up 1\n"));
        assert!(page.contains("starlink_deployments 0\n"));
        assert_eq!(hub.render(), page, "rendering is deterministic");
    }

    #[test]
    fn pages_route_and_404() {
        let hub = MetricsHub::new();
        assert!(hub.render_page("/metrics").is_some());
        assert!(hub.render_page("/trace").is_some());
        assert!(hub.render_page("/nope").is_none());
        let render = hub.render_fn();
        assert!(render("/metrics").is_some());
    }

    #[test]
    fn trace_log_classifies_escapes_and_bounds() {
        let hub = MetricsHub::new();
        let entry = |description: &str| TraceEntry {
            at: SimTime::from_micros(7),
            description: description.to_owned(),
        };
        hub.record_trace("shard0", &entry("chaos drop a -> b"));
        hub.record_trace("shard0", &entry("control: deployed x v2 (2 coexisting)"));
        hub.record_trace("shard1", &entry("udp a -> b (12 bytes)"));
        hub.record_trace("shard1", &entry("said \"hi\"\n"));
        let lines = hub.trace_lines();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(r#""kind":"impairment""#));
        assert!(lines[1].contains(r#""kind":"control""#));
        assert!(lines[2].contains(r#""kind":"wire""#));
        assert!(lines[3].contains(r#"said \"hi\"\n"#));
        for _ in 0..TRACE_CAP {
            hub.record_trace("s", &entry("filler"));
        }
        assert_eq!(hub.trace_lines().len(), TRACE_CAP);
        let page = hub.render();
        assert!(page.contains("starlink_trace_events_dropped 4\n"), "{page}");
        assert!(page.contains("starlink_trace_events_total{kind=\"impairment\"} 1\n"));
    }
}
