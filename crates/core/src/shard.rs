//! The sharded bridge runtime: throughput that scales with cores.
//!
//! One [`crate::BridgeEngine`] is inherently single-threaded — it is an
//! [`Actor`] inside a deterministic event loop. A [`ShardedBridge`]
//! deploys **N independent engines** ("shards"), each owning a private
//! single-threaded [`SimNet`] on its own worker thread, and routes every
//! client to exactly one shard:
//!
//! ```text
//!                        ┌─ queue ─▶ worker 0: SimNet[engine₀ (+svc)] ─▶ outbox 0
//!   ingress ─ hash(src ──┼─ queue ─▶ worker 1: SimNet[engine₁ (+svc)] ─▶ outbox 1
//!   batches    host) ────┼─ queue ─▶ worker 2: SimNet[engine₂ (+svc)] ─▶ outbox 2
//!                        └─ queue ─▶ worker 3: SimNet[engine₃ (+svc)] ─▶ outbox 3
//! ```
//!
//! * **Session pinning** — a datagram is dispatched by the FxHash of its
//!   *source host*, and a TCP connect by the connecting host, so every
//!   message of one originator (and therefore every event of one
//!   session, whose [`crate::SessionKey`] derives from that originator)
//!   lands on the same shard. Within a shard the engine's session table,
//!   executions and compose buffers stay single-threaded and lock-free;
//!   per-session message ordering is preserved because each shard's
//!   queue is drained FIFO by one worker.
//! * **Batched hand-off** — [`ShardedBridge::dispatch`] moves a whole
//!   batch of inputs per queue operation (one lock + one wake per shard
//!   per pump, not per datagram).
//! * **Stats** — every shard records into its own [`crate::BridgeStats`]
//!   and mirrors lifecycle counters into one shared lock-free gauge
//!   ([`crate::ShardedStats`]).
//!
//! The driver side mirrors the realnet gateway contract: inject ingress,
//! advance virtual time, drain egress. Replies the engines address to
//! external endpoints come back through per-shard outboxes tagged with
//! the shard index, so a target-side response can be fed back to the
//! shard that emitted the request — exactly how per-shard real sockets
//! behave (the reply returns to the socket that sent the query).
//!
//! Correlator caveat: a [`crate::SessionCorrelator`] that collapses
//! retransmissions *across source hosts* only sees traffic of its own
//! shard; host-affine keying is the sharding contract.

use crate::engine::BridgeEngine;
use crate::host::{BridgeCommand, EngineHost};
use fxhash::FxHashMap;
use starlink_net::{Bytes, Datagram, ExternalTcpEvent, SimAddr, SimNet, SimTime, TraceEntry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// A single-delivery slot carrying one [`BridgeCommand`] through the
/// shard batch queues. `ShardInput` must stay `Clone` for the gateway's
/// injection path, but an engine is not cloneable — so the command rides
/// in a shared slot and the first delivery takes it (a cloned slot
/// delivers nothing, which never happens on the one-queue path).
#[derive(Clone)]
pub struct ControlSlot(Arc<Mutex<Option<Box<BridgeCommand>>>>);

impl ControlSlot {
    /// Wraps a command for one shard's queue.
    pub fn new(command: BridgeCommand) -> Self {
        ControlSlot(Arc::new(Mutex::new(Some(Box::new(command)))))
    }

    /// Takes the command out (first caller wins).
    pub fn take(&self) -> Option<Box<BridgeCommand>> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
    }
}

impl std::fmt::Debug for ControlSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let taken = self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).is_none();
        f.debug_struct("ControlSlot").field("delivered", &taken).finish()
    }
}

/// One ingress item for [`ShardedBridge::dispatch`]. TCP streams are
/// addressed by a caller-chosen `token` (unique per connection) rather
/// than a raw connection id, because connection ids are only meaningful
/// inside a single shard's simulation.
#[derive(Debug, Clone)]
pub enum ShardInput {
    /// A datagram from an external client; `from.host` pins the shard.
    Datagram(Datagram),
    /// An external client opens a TCP connection to a listening port of
    /// the bridge; `from.host` pins the shard and `token` names the
    /// connection in later inputs/outputs.
    TcpConnect {
        /// Caller-chosen connection handle (unique while open).
        token: u64,
        /// The connecting external endpoint.
        from: SimAddr,
        /// The bridge listener to connect to.
        to: SimAddr,
    },
    /// Stream bytes from the external end of connection `token`.
    TcpData {
        /// The connection handle from [`ShardInput::TcpConnect`].
        token: u64,
        /// Payload bytes.
        payload: Bytes,
    },
    /// The external end closes connection `token`.
    TcpClose {
        /// The connection handle.
        token: u64,
    },
    /// A control-plane command (deploy/swap/undeploy) for this shard's
    /// [`EngineHost`], delivered out-of-band at the batch's virtual time
    /// — serialized against traffic like any other input.
    Control(ControlSlot),
}

/// One egress item drained from a shard's outbox.
#[derive(Debug, Clone)]
pub enum ShardOutput {
    /// A datagram the shard's engine addressed to an external endpoint.
    Datagram(Datagram),
    /// Stream bytes for the external end of connection `token`.
    TcpData {
        /// The connection handle.
        token: u64,
        /// Payload bytes.
        payload: Bytes,
    },
    /// The simulated side closed connection `token`.
    TcpClosed {
        /// The connection handle.
        token: u64,
    },
    /// A [`ShardInput::TcpConnect`] failed (nothing listening).
    TcpConnectFailed {
        /// The connection handle.
        token: u64,
        /// Why the connect failed.
        error: String,
    },
}

/// A batch of work for one shard.
struct Batch {
    now: SimTime,
    inputs: Vec<ShardInput>,
}

/// Shared driver↔worker channel state of one shard.
struct ChannelState {
    queue: VecDeque<Batch>,
    submitted: u64,
    completed: u64,
    shutdown: bool,
}

struct Channel {
    state: Mutex<ChannelState>,
    /// Wakes the worker when work (or shutdown) arrives.
    work: Condvar,
    /// Wakes [`ShardedBridge::flush`] when a batch completes.
    done: Condvar,
}

impl Channel {
    fn new() -> Self {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                submitted: 0,
                completed: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ChannelState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A callback a shard worker fires after publishing egress into its
/// outbox — how a readiness-driven gateway thread sleeping in
/// `epoll_wait` learns there is egress to flush (it registers its
/// waker here via [`ShardHandle::set_egress_notifier`]).
type EgressNotifier = Box<dyn Fn() + Send>;

/// A callback a shard worker streams fresh simulation trace entries
/// into after each batch — the structured trace-export hook
/// ([`ShardHandle::set_trace_sink`]). Receives every entry exactly once,
/// in order.
type TraceSink = Box<dyn Fn(&TraceEntry) + Send>;

struct Shard {
    channel: Arc<Channel>,
    outbox: Arc<Mutex<Vec<ShardOutput>>>,
    notifier: Arc<Mutex<Option<EgressNotifier>>>,
    trace_sink: Arc<Mutex<Option<TraceSink>>>,
    worker: Option<JoinHandle<()>>,
}

/// A cloneable per-shard ingress/egress endpoint for external gateway
/// threads: submit input batches straight onto one shard's queue and
/// drain its outbox, without going through the [`ShardedBridge`]
/// driver's host-pinning dispatch.
///
/// The multi-threaded gateway front uses one handle per shard, each
/// owned by exactly one gateway thread, so per-shard batch ordering
/// (and therefore the monotonic virtual clock and per-session FIFO) is
/// preserved. Handles share the `submitted`/`completed` counters with
/// the bridge, so [`ShardedBridge::flush`] still covers work submitted
/// through handles.
///
/// **Contract:** every submitter of one shard must keep that shard's
/// `now` monotonically non-decreasing — one thread per shard is the
/// intended topology. Host-pinned affinity becomes the *caller's*
/// obligation: route each client's traffic to the handle of
/// [`ShardedBridge::shard_of`] (or keep a client on one per-shard
/// socket, which is how `ShardedGateway` does it).
#[derive(Clone)]
pub struct ShardHandle {
    index: usize,
    channel: Arc<Channel>,
    outbox: Arc<Mutex<Vec<ShardOutput>>>,
    notifier: Arc<Mutex<Option<EgressNotifier>>>,
    trace_sink: Arc<Mutex<Option<TraceSink>>>,
}

impl std::fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle").field("index", &self.index).finish()
    }
}

impl ShardHandle {
    /// The shard this handle feeds.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Queues one batch of inputs and advances this shard's virtual
    /// clock to `now` (an empty batch still advances timers).
    pub fn submit(&self, now: SimTime, inputs: Vec<ShardInput>) {
        let mut state = self.channel.lock();
        state.queue.push_back(Batch { now, inputs });
        state.submitted += 1;
        drop(state);
        self.channel.work.notify_one();
    }

    /// Moves everything from this shard's outbox into `out` (appended;
    /// `out` is not cleared).
    pub fn drain_outbox(&self, out: &mut Vec<ShardOutput>) {
        let mut outbox = self.outbox.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        out.append(&mut outbox);
    }

    /// Installs `notify`, fired by the shard worker after each batch
    /// that published egress — typically an `epoll` waker, so the
    /// gateway thread blocked in its reactor flushes the outbox
    /// immediately instead of on its next tick.
    pub fn set_egress_notifier(&self, notify: impl Fn() + Send + 'static) {
        let mut slot = self.notifier.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = Some(Box::new(notify));
    }

    /// Removes the notifier (e.g. before the gateway thread exits).
    pub fn clear_egress_notifier(&self) {
        let mut slot = self.notifier.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = None;
    }

    /// Installs `sink`, fed every fresh simulation trace entry of this
    /// shard after each batch (exactly once, in order) — the export
    /// hook structured trace streaming builds on. Entries recorded
    /// before installation are not replayed.
    pub fn set_trace_sink(&self, sink: impl Fn(&TraceEntry) + Send + 'static) {
        let mut slot = self.trace_sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = Some(Box::new(sink));
    }

    /// Removes the trace sink.
    pub fn clear_trace_sink(&self) {
        let mut slot = self.trace_sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = None;
    }

    /// Batches submitted but not yet completed by the worker.
    pub fn backlog(&self) -> u64 {
        let state = self.channel.lock();
        state.submitted - state.completed
    }
}

/// A sharded multi-threaded bridge deployment (see the module docs).
pub struct ShardedBridge {
    shards: Vec<Shard>,
    host: Arc<str>,
    /// Open TCP connection token → owning shard (driver side).
    tokens: FxHashMap<u64, usize>,
    /// Per-shard dispatch scratch, reused across calls.
    pending: Vec<Vec<ShardInput>>,
    /// Fresh traffic dropped by any shard's host because no version was
    /// active to take it (undeploy without replacement).
    unrouted: Arc<AtomicU64>,
}

impl std::fmt::Debug for ShardedBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBridge").field("shards", &self.shards.len()).finish()
    }
}

impl ShardedBridge {
    /// Launches one worker thread per engine in `engines` (typically
    /// from [`crate::Starlink::deploy_sharded`]). Every engine is hosted
    /// at `host` inside its own seeded [`SimNet`] (`seed + shard`);
    /// `populate` may add further actors to each shard's simulation —
    /// e.g. a target-side service — and tune its latency model before
    /// the worker starts.
    ///
    /// # Panics
    ///
    /// Panics when `engines` is empty.
    pub fn launch(
        seed: u64,
        host: impl Into<String>,
        engines: Vec<BridgeEngine>,
        mut populate: impl FnMut(usize, &mut SimNet),
    ) -> Self {
        assert!(!engines.is_empty(), "a sharded bridge needs at least one shard");
        let host = host.into();
        let unrouted = Arc::new(AtomicU64::new(0));
        let mut shards = Vec::with_capacity(engines.len());
        for (index, engine) in engines.into_iter().enumerate() {
            let mut sim = SimNet::new(seed.wrapping_add(index as u64));
            // Every shard hosts its engine behind a multi-version
            // EngineHost, so a live control plane can drain-then-swap
            // versions without restarting the worker.
            sim.add_actor(host.clone(), EngineHost::new(1, engine, unrouted.clone()));
            populate(index, &mut sim);
            // Run every actor's on_start (port binds, listeners) without
            // firing any future timer.
            sim.run_until(SimTime::ZERO);
            let channel = Arc::new(Channel::new());
            let outbox = Arc::new(Mutex::new(Vec::new()));
            let notifier: Arc<Mutex<Option<EgressNotifier>>> = Arc::new(Mutex::new(None));
            let trace_sink: Arc<Mutex<Option<TraceSink>>> = Arc::new(Mutex::new(None));
            let worker = {
                let channel = channel.clone();
                let outbox = outbox.clone();
                let notifier = notifier.clone();
                let trace_sink = trace_sink.clone();
                let host = host.clone();
                std::thread::spawn(move || {
                    shard_worker(sim, &host, &channel, &outbox, &notifier, &trace_sink);
                })
            };
            shards.push(Shard { channel, outbox, notifier, trace_sink, worker: Some(worker) });
        }
        let pending = (0..shards.len()).map(|_| Vec::new()).collect();
        ShardedBridge {
            shards,
            host: Arc::from(host),
            tokens: FxHashMap::default(),
            pending,
            unrouted,
        }
    }

    /// The simulated host every shard's engine is deployed at.
    pub fn host(&self) -> &Arc<str> {
        &self.host
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One [`ShardHandle`] per shard, for external gateway threads that
    /// feed and drain shards directly (see the handle's contract).
    pub fn handles(&self) -> Vec<ShardHandle> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardHandle {
                index,
                channel: shard.channel.clone(),
                outbox: shard.outbox.clone(),
                notifier: shard.notifier.clone(),
                trace_sink: shard.trace_sink.clone(),
            })
            .collect()
    }

    /// Fresh traffic dropped fleet-wide because no bridge version was
    /// active on the receiving shard (zero unless a case was undeployed
    /// without a replacement).
    pub fn unrouted(&self) -> u64 {
        self.unrouted.load(Ordering::Relaxed)
    }

    /// The shared unrouted-traffic counter itself (for export surfaces
    /// that outlive a borrow of the bridge).
    pub(crate) fn unrouted_handle(&self) -> Arc<AtomicU64> {
        self.unrouted.clone()
    }

    /// The shard a client host is pinned to.
    pub fn shard_of(&self, client_host: &str) -> usize {
        (fxhash::hash64(client_host) % self.shards.len() as u64) as usize
    }

    /// Dispatches a batch of ingress inputs and advances every shard's
    /// virtual clock to `now` (monotonically increasing across calls).
    /// Datagrams and connects are pinned by source host; stream data and
    /// closes follow their connection's token. All shards receive a
    /// batch — even an empty one — so idle shards still advance their
    /// clocks and fire due timers (session idle expiry).
    pub fn dispatch(&mut self, now: SimTime, inputs: impl IntoIterator<Item = ShardInput>) {
        for input in inputs {
            let shard = match &input {
                ShardInput::Datagram(datagram) => self.shard_of(&datagram.from.host),
                ShardInput::TcpConnect { token, from, .. } => {
                    let shard = self.shard_of(&from.host);
                    self.tokens.insert(*token, shard);
                    shard
                }
                ShardInput::TcpData { token, .. } => match self.tokens.get(token) {
                    Some(&shard) => shard,
                    // Unknown token: the connection never opened (or
                    // already closed); nothing to route.
                    None => continue,
                },
                ShardInput::TcpClose { token } => match self.tokens.remove(token) {
                    Some(shard) => shard,
                    None => continue,
                },
                // Control commands are per-shard (each shard gets its
                // own engine instance) and cannot be host-pinned; they
                // only travel via dispatch_control or a ShardHandle.
                ShardInput::Control(_) => continue,
            };
            self.pending[shard].push(input);
        }
        for (shard, inputs) in self.shards.iter().zip(self.pending.iter_mut()) {
            let mut state = shard.channel.lock();
            state.queue.push_back(Batch { now, inputs: std::mem::take(inputs) });
            state.submitted += 1;
            drop(state);
            shard.channel.work.notify_one();
        }
    }

    /// Advances every shard's virtual clock to `now` without new inputs
    /// (lets pending in-simulation events and timers run).
    pub fn advance(&mut self, now: SimTime) {
        self.dispatch(now, std::iter::empty());
    }

    /// Submits one control command to every shard at virtual time `now`
    /// — the drain-then-swap entry point. `commands` must hold exactly
    /// one command per shard (each shard installs its own engine
    /// instance); they ride the ordinary batch queues, so the swap is
    /// serialized against traffic already dispatched.
    ///
    /// # Panics
    ///
    /// Panics when `commands.len() != self.shard_count()`.
    pub fn dispatch_control(&mut self, now: SimTime, commands: Vec<BridgeCommand>) {
        assert_eq!(
            commands.len(),
            self.shards.len(),
            "dispatch_control needs one command per shard"
        );
        for (shard, command) in commands.into_iter().enumerate() {
            self.pending[shard].push(ShardInput::Control(ControlSlot::new(command)));
        }
        self.dispatch(now, std::iter::empty());
    }

    /// Drains every shard's outbox into `out` as `(shard, output)`
    /// pairs, in shard order. Target-side responses should be fed back
    /// via [`ShardedBridge::dispatch_to_shard`] to the shard that
    /// emitted the request.
    pub fn drain_into(&mut self, out: &mut Vec<(usize, ShardOutput)>) {
        for (index, shard) in self.shards.iter().enumerate() {
            let mut outbox = shard.outbox.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for output in outbox.drain(..) {
                // A connection the simulated side closed — or that never
                // opened — is dead: drop its routing entry here so the
                // token map cannot grow without bound on a long-running
                // gateway, and so later data for the token is discarded
                // at the driver instead of routed to a stale shard.
                match &output {
                    ShardOutput::TcpClosed { token }
                    | ShardOutput::TcpConnectFailed { token, .. } => {
                        self.tokens.remove(token);
                    }
                    _ => {}
                }
                out.push((index, output));
            }
        }
    }

    /// Queues a datagram directly onto one shard, bypassing source-host
    /// pinning — the reply path for target-side responders that answer
    /// whichever shard queried them. Delivered with the *next*
    /// [`ShardedBridge::dispatch`]/[`ShardedBridge::advance`] call.
    pub fn dispatch_to_shard(&mut self, shard: usize, datagram: Datagram) {
        self.pending[shard].push(ShardInput::Datagram(datagram));
    }

    /// Blocks until every shard has processed every batch submitted so
    /// far — the barrier tests use to read stable stats.
    ///
    /// # Panics
    ///
    /// Panics when a shard worker died (engine panic) with work still
    /// queued.
    pub fn flush(&self) {
        for shard in &self.shards {
            let mut state = shard.channel.lock();
            while state.completed < state.submitted {
                let worker_dead =
                    shard.worker.as_ref().is_none_or(std::thread::JoinHandle::is_finished);
                if worker_dead {
                    panic!("shard worker exited with {} batches pending", {
                        state.submitted - state.completed
                    });
                }
                let (next, _) = shard
                    .channel
                    .done
                    .wait_timeout(state, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state = next;
            }
        }
    }
}

impl Drop for ShardedBridge {
    fn drop(&mut self) {
        for shard in &self.shards {
            let mut state = shard.channel.lock();
            state.shutdown = true;
            drop(state);
            shard.channel.work.notify_one();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                // A worker that panicked already printed its message;
                // dropping the bridge must not panic again.
                let _ = worker.join();
            }
        }
    }
}

/// The worker loop of one shard: pop batches FIFO, feed the private
/// simulation, run it to the batch's virtual time, and publish egress.
fn shard_worker(
    mut sim: SimNet,
    host: &str,
    channel: &Channel,
    outbox: &Mutex<Vec<ShardOutput>>,
    notifier: &Mutex<Option<EgressNotifier>>,
    trace_sink: &Mutex<Option<TraceSink>>,
) {
    // Worker-local TCP token maps (connection ids are shard-private).
    let mut conn_of: FxHashMap<u64, starlink_net::ConnId> = FxHashMap::default();
    let mut token_of: FxHashMap<starlink_net::ConnId, u64> = FxHashMap::default();
    let mut egress: Vec<Datagram> = Vec::new();
    let mut staged: Vec<ShardOutput> = Vec::new();
    // Trace entries already streamed to the sink.
    let mut streamed = sim.trace().len();
    loop {
        let batch = {
            let mut state = channel.lock();
            loop {
                if let Some(batch) = state.queue.pop_front() {
                    break Some(batch);
                }
                if state.shutdown {
                    break None;
                }
                state = channel.work.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let Some(Batch { now, inputs }) = batch else { return };

        for input in inputs {
            match input {
                ShardInput::Datagram(datagram) => sim.inject_datagram(datagram),
                ShardInput::TcpConnect { token, from, to } => {
                    match sim.external_tcp_connect(from, to) {
                        Ok(conn) => {
                            conn_of.insert(token, conn);
                            token_of.insert(conn, token);
                        }
                        Err(err) => staged
                            .push(ShardOutput::TcpConnectFailed { token, error: err.to_string() }),
                    }
                }
                ShardInput::TcpData { token, payload } => {
                    if let Some(&conn) = conn_of.get(&token) {
                        if sim.inject_tcp_data(conn, payload).is_err() {
                            staged.push(ShardOutput::TcpClosed { token });
                        }
                    }
                }
                ShardInput::TcpClose { token } => {
                    if let Some(conn) = conn_of.remove(&token) {
                        token_of.remove(&conn);
                        let _ = sim.inject_tcp_close(conn);
                    }
                }
                ShardInput::Control(slot) => {
                    // First delivery wins; a cloned slot is empty.
                    if let Some(command) = slot.take() {
                        sim.deliver_control(host, command as Box<dyn std::any::Any + Send>);
                    }
                }
            }
        }
        sim.run_until(now);

        sim.drain_egress_into(&mut egress);
        staged.extend(egress.drain(..).map(ShardOutput::Datagram));
        for event in sim.drain_tcp_egress() {
            match event {
                ExternalTcpEvent::Data { conn, payload } => {
                    if let Some(&token) = token_of.get(&conn) {
                        staged.push(ShardOutput::TcpData { token, payload });
                    }
                }
                ExternalTcpEvent::Closed { conn } => {
                    if let Some(token) = token_of.remove(&conn) {
                        conn_of.remove(&token);
                        staged.push(ShardOutput::TcpClosed { token });
                    }
                }
            }
        }
        if !staged.is_empty() {
            let mut out = outbox.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            out.append(&mut staged);
            drop(out);
            // Egress landed: wake a gateway thread sleeping in its
            // reactor so the outbox flushes now, not on the next tick.
            let slot = notifier.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(notify) = slot.as_ref() {
                notify();
            }
        }

        // Stream fresh trace entries to the export sink, exactly once
        // each. The cursor advances even with no sink installed, so a
        // late-installed sink starts from "now" instead of replaying
        // history.
        let trace = sim.trace();
        if streamed < trace.len() {
            let slot = trace_sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(sink) = slot.as_ref() {
                for entry in &trace[streamed..] {
                    sink(entry);
                }
            }
            streamed = trace.len();
        }

        let mut state = channel.lock();
        state.completed += 1;
        drop(state);
        channel.done.notify_all();
    }
}
