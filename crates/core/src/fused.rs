//! The fused fast path: a whole-bridge translation plan compiled at
//! deployment.
//!
//! A bridge whose merged automaton is a plain two-part request/response
//! relay — receive on the source protocol, cross a δ carrying only field
//! assignments, send on the target protocol, and back — and whose MDLs
//! both fall inside the flattenable subset ([`FlatPlan`]) can skip the
//! interpreted machinery entirely. [`FusedPlan::compile`] probes the
//! automaton's structure once; when it succeeds, the per-message path
//! becomes: flat-parse the wire bytes into a slot record, run a
//! precompiled list of (source slot → target slot, conversion) steps
//! ([`FusedStep`]), flat-compose, emit. No `AbstractMessage` tree, no
//! per-message function-name lookups, no allocation in steady state.
//!
//! The probe is deliberately conservative: anything it cannot prove —
//! more than two parts, TCP colours, branching states, λ actions on a
//! δ, assignments it cannot resolve into slots, a correlator it cannot
//! mirror — rejects fusion with a reason, and the engine transparently
//! stays on the interpreted path. Rejection is never a behaviour change,
//! only a performance one; the differential suites hold the two paths to
//! byte-identical output.

use crate::engine::SessionCorrelator;
use starlink_automata::{
    compile_steps, Action, FunctionRegistry, FuseError, FusedArg, FusedFn, FusedOut, FusedSource,
    FusedStep, GlobalState, MergedAutomaton, PartId, SlotRef, Transition, Transport,
};
use starlink_mdl::{FlatPlan, FlatRecord, FlatView, MdlCodec};
use std::fmt;
use std::sync::Arc;

/// Why a deployed bridge stays on the interpreted path instead of the
/// fused one. Every reject carries a lint code (`FUS001`–`FUS006`) so
/// `starlink-check --explain-fusion` can report fusion status per
/// bridge; rejection is never an error, only a performance note.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FuseReject {
    /// `FUS001` — the merged automaton is not a plain two-part UDP
    /// request/response relay (part count, colours, transport, or
    /// transition shape).
    Structure(String),
    /// `FUS002` — the δ-transitions do not form the forward/backward
    /// pair fusion needs, or carry λ network actions.
    DeltaShape(String),
    /// `FUS003` — an MDL falls outside the flattenable subset, or an
    /// exchange message is missing from its flat plan.
    FlatPlanGap(String),
    /// `FUS004` — a δ assignment has no allocation-free lowering.
    Translation(FuseError),
    /// `FUS005` — the deployed correlator cannot be mirrored onto
    /// record slots.
    CorrelatorGap(String),
    /// `FUS006` — the engine configuration pins the interpreted path.
    ForcedInterpreted,
    /// `FUS006` — the target colour has no multicast group to emit the
    /// translated query on.
    NoMulticastGroup,
}

impl FuseReject {
    /// The `starlink-check` lint code of this reject category.
    pub fn code(&self) -> &'static str {
        match self {
            FuseReject::Structure(_) => "FUS001",
            FuseReject::DeltaShape(_) => "FUS002",
            FuseReject::FlatPlanGap(_) => "FUS003",
            FuseReject::Translation(_) => "FUS004",
            FuseReject::CorrelatorGap(_) => "FUS005",
            FuseReject::ForcedInterpreted | FuseReject::NoMulticastGroup => "FUS006",
        }
    }
}

impl fmt::Display for FuseReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuseReject::Structure(msg)
            | FuseReject::DeltaShape(msg)
            | FuseReject::FlatPlanGap(msg)
            | FuseReject::CorrelatorGap(msg) => write!(f, "{msg}"),
            FuseReject::Translation(err) => write!(f, "{err}"),
            FuseReject::ForcedInterpreted => {
                write!(f, "pinned to the interpreted path by configuration")
            }
            FuseReject::NoMulticastGroup => write!(f, "target colour has no multicast group"),
        }
    }
}

impl std::error::Error for FuseReject {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FuseReject::Translation(err) => Some(err),
            _ => None,
        }
    }
}

/// The compiled fast path of one fusable bridge. See the module docs for
/// the shape it proves and the [`crate::BridgeEngine`] for how it runs.
#[derive(Debug)]
pub(crate) struct FusedPlan {
    source_part: usize,
    target_part: usize,
    source_plan: Arc<FlatPlan>,
    target_plan: Arc<FlatPlan>,
    /// Message indices into `source_plan` / `target_plan`.
    req_in: usize,
    resp_out: usize,
    req_out: usize,
    resp_in: usize,
    /// Precompiled assignment steps of the two δ-transitions.
    forward: Vec<FusedStep>,
    backward: Vec<FusedStep>,
    /// Correlation-id slots mirrored from the deployed correlator
    /// (`None` when the engine runs with address-based routing).
    req_in_id: Option<usize>,
    req_out_id: Option<usize>,
    resp_in_id: Option<usize>,
    /// Request slots feeding the forward steps, minus the correlation
    /// id: the answer-cache key. Two requests agreeing on these slots
    /// produce the same upstream query, hence the same answer.
    cache_slots: Vec<usize>,
    /// Send states of the two outbound messages, for emit-spec lookup.
    req_out_state: GlobalState,
    resp_out_state: GlobalState,
}

impl FusedPlan {
    /// Probes `automaton` and compiles the fused plan, or explains why
    /// the bridge must stay interpreted.
    pub(crate) fn compile(
        automaton: &MergedAutomaton,
        codecs: &[Arc<MdlCodec>],
        correlator: Option<&dyn SessionCorrelator>,
        functions: &FunctionRegistry,
    ) -> Result<FusedPlan, FuseReject> {
        let parts = automaton.parts();
        if parts.len() != 2 {
            return Err(FuseReject::Structure(format!(
                "{} parts (fusion needs exactly 2)",
                parts.len()
            )));
        }
        for part in parts {
            if part.colors().len() != 1 {
                return Err(FuseReject::Structure(format!(
                    "part {} has multiple colours",
                    part.protocol()
                )));
            }
            if part.colors()[0].transport() != Transport::Udp {
                return Err(FuseReject::Structure(format!("part {} is not UDP", part.protocol())));
            }
            if part.transitions().len() != 2 {
                return Err(FuseReject::Structure(format!(
                    "part {} has {} transitions (fusion needs a plain request/response pair)",
                    part.protocol(),
                    part.transitions().len()
                )));
            }
        }

        // Identify the two roles by the transition leaving each part's
        // initial state: the source side receives first, the target
        // side sends first.
        let mut source = None;
        let mut target = None;
        for (index, part) in parts.iter().enumerate() {
            let from_initial: Vec<&Transition> = part.transitions_from(part.initial()).collect();
            if from_initial.len() != 1 {
                return Err(FuseReject::Structure(format!(
                    "part {} branches at its initial state",
                    part.protocol()
                )));
            }
            match from_initial[0].action {
                Action::Receive if source.replace(index).is_none() => {}
                Action::Send if target.replace(index).is_none() => {}
                _ => {
                    return Err(FuseReject::Structure(
                        "parts do not pair a receive-first and a send-first side".into(),
                    ))
                }
            }
        }
        let (Some(source_part), Some(target_part)) = (source, target) else {
            return Err(FuseReject::Structure(
                "parts do not pair a receive-first and a send-first side".into(),
            ));
        };

        // Source shape: initial --receive REQ_IN--> after_req, and a
        // send of RESP_OUT whose destination closes the session.
        let src = &parts[source_part];
        let receive =
            src.transitions_from(src.initial()).next().expect("source shape checked above");
        let req_in_name = receive.message.clone();
        let after_req = receive.to;
        let send =
            src.transitions().iter().find(|t| t.action == Action::Send).ok_or_else(|| {
                FuseReject::Structure("source part never sends a response".into())
            })?;
        let resp_out_name = send.message.clone();
        let resp_out_state = GlobalState { part: PartId(source_part), state: send.from };
        let after_send = GlobalState { part: PartId(source_part), state: send.to };
        if !automaton.is_accepting(after_send) && send.to != src.initial() {
            return Err(FuseReject::Structure("source part continues past its response".into()));
        }

        // Target shape: initial --send REQ_OUT--> await --receive RESP_IN-->.
        let tgt = &parts[target_part];
        let send_out =
            tgt.transitions_from(tgt.initial()).next().expect("target shape checked above");
        let req_out_name = send_out.message.clone();
        let req_out_state = GlobalState { part: PartId(target_part), state: tgt.initial() };
        let await_state = send_out.to;
        let receive_in =
            tgt.transitions().iter().find(|t| t.action == Action::Receive).ok_or_else(|| {
                FuseReject::Structure("target part never receives a response".into())
            })?;
        if receive_in.from != await_state {
            return Err(FuseReject::Structure(
                "target part does not await its response where it sent the query".into(),
            ));
        }
        let resp_in_name = receive_in.message.clone();
        let after_resp = receive_in.to;

        // The two δ-transitions: forward carries the request
        // translation, backward the response translation. λ actions need
        // the interpreted engine.
        if automaton.deltas().len() != 2 {
            return Err(FuseReject::DeltaShape(format!(
                "{} δ-transitions (fusion needs 2)",
                automaton.deltas().len()
            )));
        }
        for delta in automaton.deltas() {
            if !delta.actions.is_empty() {
                return Err(FuseReject::DeltaShape(
                    "δ-transition carries λ network actions".into(),
                ));
            }
        }
        let forward_delta =
            automaton.deltas().iter().find(|d| d.from.part.0 == source_part).ok_or_else(|| {
                FuseReject::DeltaShape("no forward δ from the source part".into())
            })?;
        let backward_delta =
            automaton.deltas().iter().find(|d| d.from.part.0 == target_part).ok_or_else(|| {
                FuseReject::DeltaShape("no backward δ from the target part".into())
            })?;
        if forward_delta.from.state != after_req
            || forward_delta.to != (GlobalState { part: PartId(target_part), state: tgt.initial() })
        {
            return Err(FuseReject::DeltaShape(
                "forward δ does not connect request receipt to the target query".into(),
            ));
        }
        if backward_delta.from != (GlobalState { part: PartId(target_part), state: after_resp })
            || backward_delta.to != resp_out_state
        {
            return Err(FuseReject::DeltaShape(
                "backward δ does not connect the response to the reply send".into(),
            ));
        }

        // Both MDLs must have compiled flat plans, holding all four
        // exchange messages.
        let source_plan = codecs[source_part]
            .flat_plan()
            .ok_or_else(|| {
                FuseReject::FlatPlanGap(format!("protocol {} has no flat plan", src.protocol()))
            })?
            .clone();
        let target_plan = codecs[target_part]
            .flat_plan()
            .ok_or_else(|| {
                FuseReject::FlatPlanGap(format!("protocol {} has no flat plan", tgt.protocol()))
            })?
            .clone();
        let message_index = |plan: &FlatPlan, name: &str| {
            plan.message_index(name).ok_or_else(|| {
                FuseReject::FlatPlanGap(format!(
                    "message {name} missing from {} flat plan",
                    plan.protocol()
                ))
            })
        };
        let req_in = message_index(&source_plan, &req_in_name)?;
        let resp_out = message_index(&source_plan, &resp_out_name)?;
        let req_out = message_index(&target_plan, &req_out_name)?;
        let resp_in = message_index(&target_plan, &resp_in_name)?;

        // Compile the δ assignments into slot-to-slot steps, folding
        // literal-only function applications through the real registry.
        let forward = compile_steps(
            &forward_delta.assignments,
            &req_out_name,
            &|label| target_plan.slot_index(req_out, label),
            &|message, label| {
                (message == req_in_name)
                    .then(|| source_plan.slot_index(req_in, label).map(SlotRef::Request))
                    .flatten()
            },
            functions,
        )
        .map_err(FuseReject::Translation)?;
        let backward = compile_steps(
            &backward_delta.assignments,
            &resp_out_name,
            &|label| source_plan.slot_index(resp_out, label),
            &|message, label| {
                if message == req_in_name {
                    source_plan.slot_index(req_in, label).map(SlotRef::Request)
                } else if message == resp_in_name {
                    target_plan.slot_index(resp_in, label).map(SlotRef::Response)
                } else {
                    None
                }
            },
            functions,
        )
        .map_err(FuseReject::Translation)?;

        // Mirror the correlator: the fused path must key, alias and
        // match sessions exactly as the interpreted engine would. A
        // correlator whose id fields are unknown cannot be mirrored.
        let (req_in_id, req_out_id, resp_in_id) = match correlator {
            None => (None, None, None),
            Some(correlator) => {
                let resolve = |protocol: &str, plan: &FlatPlan, msg: usize, name: &str| {
                    let field = correlator.id_field(protocol, name).ok_or_else(|| {
                        FuseReject::CorrelatorGap(format!(
                            "correlator declares no id field for {name}"
                        ))
                    })?;
                    plan.slot_index(msg, field).ok_or_else(|| {
                        FuseReject::CorrelatorGap(format!("id field {field} missing from {name}"))
                    })
                };
                (
                    Some(resolve(src.protocol(), &source_plan, req_in, &req_in_name)?),
                    Some(resolve(tgt.protocol(), &target_plan, req_out, &req_out_name)?),
                    Some(resolve(tgt.protocol(), &target_plan, resp_in, &resp_in_name)?),
                )
            }
        };

        let mut cache_slots = Vec::new();
        for step in &forward {
            collect_request_slots(&step.source, &mut cache_slots);
        }
        cache_slots.retain(|slot| Some(*slot) != req_in_id);
        cache_slots.sort_unstable();
        cache_slots.dedup();

        Ok(FusedPlan {
            source_part,
            target_part,
            source_plan,
            target_plan,
            req_in,
            resp_out,
            req_out,
            resp_in,
            forward,
            backward,
            req_in_id,
            req_out_id,
            resp_in_id,
            cache_slots,
            req_out_state,
            resp_out_state,
        })
    }

    pub(crate) fn source_part(&self) -> usize {
        self.source_part
    }

    pub(crate) fn target_part(&self) -> usize {
        self.target_part
    }

    pub(crate) fn source_plan(&self) -> &FlatPlan {
        &self.source_plan
    }

    pub(crate) fn target_plan(&self) -> &FlatPlan {
        &self.target_plan
    }

    pub(crate) fn req_in(&self) -> usize {
        self.req_in
    }

    pub(crate) fn resp_in(&self) -> usize {
        self.resp_in
    }

    pub(crate) fn req_in_id(&self) -> Option<usize> {
        self.req_in_id
    }

    pub(crate) fn req_out_id(&self) -> Option<usize> {
        self.req_out_id
    }

    pub(crate) fn resp_in_id(&self) -> Option<usize> {
        self.resp_in_id
    }

    pub(crate) fn req_out_state(&self) -> GlobalState {
        self.req_out_state
    }

    pub(crate) fn resp_out_state(&self) -> GlobalState {
        self.resp_out_state
    }

    pub(crate) fn req_out_name(&self) -> &str {
        self.target_plan.message_name(self.req_out)
    }

    pub(crate) fn resp_out_name(&self) -> &str {
        self.source_plan.message_name(self.resp_out)
    }

    /// Runs the forward steps: parsed request → outbound query record.
    pub(crate) fn translate_request(
        &self,
        req: &FlatRecord,
        out: &mut FlatRecord,
        scratch: &mut String,
    ) -> Result<(), String> {
        out.reset(self.req_out, self.target_plan.slot_count(self.req_out));
        self.apply_steps(&self.forward, req, None, out, scratch)
    }

    /// Runs the backward steps: (original request, legacy response) →
    /// outbound reply record. The request record personalises echoed
    /// ids, so a cached response serves any requester correctly.
    pub(crate) fn translate_response(
        &self,
        req: &FlatRecord,
        resp: &FlatRecord,
        out: &mut FlatRecord,
        scratch: &mut String,
    ) -> Result<(), String> {
        out.reset(self.resp_out, self.source_plan.slot_count(self.resp_out));
        self.apply_steps(&self.backward, req, Some(resp), out, scratch)
    }

    fn apply_steps(
        &self,
        steps: &[FusedStep],
        req: &FlatRecord,
        resp: Option<&FlatRecord>,
        out: &mut FlatRecord,
        scratch: &mut String,
    ) -> Result<(), String> {
        for step in steps {
            let start = scratch.len();
            let result = eval_value(&step.source, req, resp, scratch);
            match result {
                Ok(Some(number)) => out.set_num(step.target, number),
                Ok(None) => out.set_text(step.target, &scratch.as_bytes()[start..]),
                Err(err) => {
                    scratch.truncate(start);
                    return Err(err);
                }
            }
            scratch.truncate(start);
        }
        Ok(())
    }

    /// Probes whether a completed exchange qualifies for wire-level
    /// replay: serving future duplicates of `request_wire` (same bytes
    /// except the correlation id) by splicing the new id into the
    /// already-composed `reply_wire`, with no parse, translation or
    /// compose at all.
    ///
    /// The proof is differential: re-compose the request and the reply
    /// with every byte of the id value flipped, and require that the
    /// two request wires differ in exactly one contiguous run (the id's
    /// wire span) and that every differing run of the two reply wires
    /// is accounted for — either a byte-verbatim echo of that span, or
    /// covered by the output of a single [`FusedFn`] the backward steps
    /// apply to the id (checked against *both* probe ids, so a function
    /// that merely coincides with one sample cannot slip through). Any
    /// failure returns `None` and the exchange simply stays on the
    /// (already correct) record-replay path.
    pub(crate) fn build_replay_parts(
        &self,
        req: &FlatRecord,
        request_wire: &[u8],
        resp: &FlatRecord,
        reply_wire: &[u8],
    ) -> Option<ReplayParts> {
        let id_slot = self.req_in_id?;

        // The template only serves clients whose encoder agrees with
        // ours byte-for-byte; anyone else misses it and takes the
        // normal path.
        let mut w1 = Vec::new();
        self.source_plan.compose(req, &mut w1).ok()?;
        if w1 != request_wire {
            return None;
        }

        let mut flipped = req.clone();
        let mut w2 = Vec::new();
        match req.view(id_slot) {
            FlatView::Num(v) => {
                // Flip every byte of the id's wire encoding. The field
                // width is not visible here, so try the widest XOR mask
                // first and narrow until the value fits its field; a
                // mask at least as wide as the field flips every
                // encoded byte.
                let mut composed = false;
                for mask in [u64::MAX, 0xFFFF_FFFF, 0xFFFF, 0xFF] {
                    flipped.set_num(id_slot, v ^ mask);
                    w2.clear();
                    if self.source_plan.compose(&flipped, &mut w2).is_ok() {
                        composed = true;
                        break;
                    }
                }
                if !composed {
                    return None;
                }
            }
            FlatView::Text(t) => {
                // XOR 1 guarantees every byte changes while the length
                // stays put; the flipped record is only ever composed,
                // never re-parsed.
                let bytes: Vec<u8> = t.iter().map(|b| b ^ 1).collect();
                flipped.set_text(id_slot, &bytes);
                self.source_plan.compose(&flipped, &mut w2).ok()?;
            }
            FlatView::Unset => return None,
        }
        let mut runs = diff_runs(&w1, &w2)?;
        if runs.len() != 1 {
            // Zero runs would mean the id is not wire-visible (so
            // "duplicates" could be distinct exchanges); two or more
            // mean the id feeds something else too (length, digest).
            return None;
        }
        let id_span = runs.remove(0);

        let mut out = FlatRecord::new();
        let mut scratch = String::new();
        self.translate_response(&flipped, resp, &mut out, &mut scratch).ok()?;
        let mut r2 = Vec::new();
        self.source_plan.compose(&out, &mut r2).ok()?;
        let echo_runs = diff_runs(reply_wire, &r2)?;

        // Candidate derived echoes: every single-builtin application of
        // the id the backward steps perform (e.g. WS-Discovery derives
        // the reply MessageID from the request MessageID). Evaluate each
        // on *both* probe ids and locate spans of the reply where both
        // outputs appear at the same offset — those spans are provably
        // a function of the id and can be recomputed at replay time.
        let id1 = &w1[id_span.clone()];
        let id2 = &w2[id_span.clone()];
        let mut derived: Vec<ReplayEcho> = Vec::new();
        if let (Ok(t1), Ok(t2)) = (std::str::from_utf8(id1), std::str::from_utf8(id2)) {
            let mut funcs: Vec<FusedFn> = Vec::new();
            for step in &self.backward {
                if let FusedSource::Apply(f, inner) = &step.source {
                    if matches!(**inner, FusedSource::Slot(SlotRef::Request(s)) if s == id_slot)
                        && !funcs.contains(f)
                    {
                        funcs.push(*f);
                    }
                }
            }
            let (mut s1, mut s2) = (String::new(), String::new());
            for &func in &funcs {
                s1.clear();
                s2.clear();
                let o1 = func.apply(FusedArg::Text(t1), &mut s1);
                let o2 = func.apply(FusedArg::Text(t2), &mut s2);
                if !matches!(o1, Ok(FusedOut::Text))
                    || !matches!(o2, Ok(FusedOut::Text))
                    || s1.len() != s2.len()
                    || s1.is_empty()
                    || s1 == s2
                {
                    continue;
                }
                let len = s1.len();
                for offset in 0..=reply_wire.len().saturating_sub(len) {
                    if reply_wire[offset..offset + len] == *s1.as_bytes()
                        && r2[offset..offset + len] == *s2.as_bytes()
                    {
                        derived.push(ReplayEcho::Derived { offset, len, func });
                    }
                }
            }
        }

        // Every differing run of the reply pair must be explained:
        // inside a derived span, or a byte-verbatim copy of the id.
        let mut echoes: Vec<ReplayEcho> = Vec::new();
        for run in echo_runs {
            let covering = derived.iter().find(|e| match e {
                ReplayEcho::Derived { offset, len, .. } => {
                    run.start >= *offset && run.end <= offset + len
                }
                ReplayEcho::Verbatim { .. } => false,
            });
            if let Some(&echo) = covering {
                let already = echoes.iter().any(|e| {
                    matches!(
                        (e, &echo),
                        (
                            ReplayEcho::Derived { offset: a, .. },
                            ReplayEcho::Derived { offset: b, .. }
                        ) if a == b
                    )
                });
                if !already {
                    echoes.push(echo);
                }
                continue;
            }
            if run.len() == id_span.len()
                && reply_wire[run.clone()] == w1[id_span.clone()]
                && r2[run.clone()] == w2[id_span.clone()]
            {
                echoes.push(ReplayEcho::Verbatim { offset: run.start });
                continue;
            }
            return None;
        }
        Some(ReplayParts { id_span, echoes })
    }

    /// Serialises the cache-key slots of `req` into `buf`: a canonical
    /// byte string two equivalent queries share. The stored copy is
    /// compared on lookup, so a 64-bit hash collision degrades to a
    /// miss, never a wrong answer.
    pub(crate) fn cache_key_bytes(&self, req: &FlatRecord, buf: &mut Vec<u8>) {
        buf.clear();
        for &slot in &self.cache_slots {
            buf.extend_from_slice(&(slot as u32).to_le_bytes());
            match req.view(slot) {
                FlatView::Unset => buf.push(0),
                FlatView::Num(v) => {
                    buf.push(1);
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                FlatView::Text(t) => {
                    buf.push(2);
                    buf.extend_from_slice(&(t.len() as u32).to_le_bytes());
                    buf.extend_from_slice(t);
                }
            }
        }
    }
}

/// The wire geometry of a replayable exchange, proven by
/// [`FusedPlan::build_replay_parts`]: where the correlation id sits in
/// the request wire, and where (and how) it reappears in the reply.
#[derive(Debug)]
pub(crate) struct ReplayParts {
    pub(crate) id_span: std::ops::Range<usize>,
    pub(crate) echoes: Vec<ReplayEcho>,
}

/// One id-dependent span of the cached reply wire, re-personalised per
/// duplicate query at replay time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ReplayEcho {
    /// The reply copies the request id's wire bytes verbatim at
    /// `offset` (span length = the id span's length).
    Verbatim { offset: usize },
    /// `len` bytes at `offset` are `func` applied to the id text; the
    /// builtin is re-run on the incoming id and spliced in. Replay
    /// bails (falls back to the normal path) if the output length ever
    /// differs from the proven `len`.
    Derived { offset: usize, len: usize, func: FusedFn },
}

/// Maximal contiguous byte ranges where `a` and `b` differ; `None` when
/// the lengths differ (replay needs positionally comparable wires).
fn diff_runs(a: &[u8], b: &[u8]) -> Option<Vec<std::ops::Range<usize>>> {
    if a.len() != b.len() {
        return None;
    }
    let mut runs = Vec::new();
    let mut start = None;
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        match (x == y, start) {
            (false, None) => start = Some(i),
            (true, Some(s)) => {
                runs.push(s..i);
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        runs.push(s..a.len());
    }
    Some(runs)
}

/// Reads a correlation id from a slot exactly as
/// [`crate::FieldCorrelator`] reads it from the interpreted message:
/// numbers key directly, decimal text parses, other non-empty text
/// hashes, empty text correlates nothing.
pub(crate) fn correlation_id(record: &FlatRecord, slot: usize) -> Option<u64> {
    match record.view(slot) {
        FlatView::Num(v) => Some(v),
        FlatView::Text(t) => {
            let text = std::str::from_utf8(t).ok()?;
            match text.trim().parse::<u64>() {
                Ok(id) => Some(id),
                Err(_) if !text.is_empty() => Some(fxhash::hash64(&text)),
                Err(_) => None,
            }
        }
        FlatView::Unset => None,
    }
}

fn collect_request_slots(source: &FusedSource, out: &mut Vec<usize>) {
    match source {
        FusedSource::Slot(SlotRef::Request(slot)) => out.push(*slot),
        FusedSource::Apply(_, inner) => collect_request_slots(inner, out),
        _ => {}
    }
}

/// Evaluates one step source. `Ok(Some(v))` is a numeric result;
/// `Ok(None)` means the textual result was appended to `scratch` (the
/// caller owns the segment it marked before the call).
fn eval_value(
    source: &FusedSource,
    req: &FlatRecord,
    resp: Option<&FlatRecord>,
    scratch: &mut String,
) -> Result<Option<u64>, String> {
    use starlink_automata::{FusedArg, FusedOut};
    match source {
        FusedSource::Slot(slot) => match read_slot(slot, req, resp)? {
            FlatView::Num(v) => Ok(Some(v)),
            FlatView::Text(t) => {
                scratch.push_str(view_text(t)?);
                Ok(None)
            }
            FlatView::Unset => Err("source field unset".into()),
        },
        FusedSource::LitNum(v) => Ok(Some(*v)),
        FusedSource::LitText(t) => {
            scratch.push_str(t);
            Ok(None)
        }
        FusedSource::Apply(function, inner) => {
            // Depth-1 applications (every fusable bridge today) borrow
            // their argument straight from a record or literal; deeper
            // nesting evaluates into a temporary first.
            let nested_text;
            let arg = match inner.as_ref() {
                FusedSource::Slot(slot) => match read_slot(slot, req, resp)? {
                    FlatView::Num(v) => FusedArg::Num(v),
                    FlatView::Text(t) => FusedArg::Text(view_text(t)?),
                    FlatView::Unset => return Err("source field unset".into()),
                },
                FusedSource::LitNum(v) => FusedArg::Num(*v),
                FusedSource::LitText(t) => FusedArg::Text(t),
                nested @ FusedSource::Apply(..) => {
                    let mut tmp = String::new();
                    match eval_value(nested, req, resp, &mut tmp)? {
                        Some(v) => FusedArg::Num(v),
                        None => {
                            nested_text = tmp;
                            FusedArg::Text(&nested_text)
                        }
                    }
                }
            };
            match function.apply(arg, scratch)? {
                FusedOut::Num(v) => Ok(Some(v)),
                FusedOut::Text => Ok(None),
            }
        }
    }
}

fn read_slot<'r>(
    slot: &SlotRef,
    req: &'r FlatRecord,
    resp: Option<&'r FlatRecord>,
) -> Result<FlatView<'r>, String> {
    match slot {
        SlotRef::Request(index) => Ok(req.view(*index)),
        SlotRef::Response(index) => Ok(resp.ok_or("response record unavailable")?.view(*index)),
    }
}

fn view_text(bytes: &[u8]) -> Result<&str, String> {
    std::str::from_utf8(bytes).map_err(|_| "non-UTF-8 text slot".to_string())
}
