//! The multi-threaded gateway front: N gateway threads, each running a
//! readiness reactor over its share of per-shard real sockets, feeding
//! the [`ShardedBridge`] ingress queues and flushing per-shard outbox
//! egress back out.
//!
//! ```text
//!                 gateway thread 0                 gateway thread 1
//!              ┌───────────────────┐            ┌───────────────────┐
//!   real UDP ─▶│ GatewayReactor    │  real UDP ─▶ GatewayReactor    │
//!   sockets    │  epoll_wait ──────┼─ batches ──┼─ epoll_wait ──────┼─ batches
//!   (shard 0,2 │  drain ready only │     │      │ (shard 1,3        │    │
//!    × ports)  └───────▲───────────┘     ▼      │  × ports)         │    ▼
//!                      │        ShardHandle 0,2 └──────▲────────────┘  ShardHandle 1,3
//!                 waker│               │ submit        │waker            │ submit
//!                      │               ▼               │                 ▼
//!              egress  │        shard workers 0,2      │          shard workers 1,3
//!              notifier└───────────── outbox ──────────┴─────────────  outbox
//! ```
//!
//! **Affinity contract.** Every shard × simulated-port pair gets its own
//! real loopback socket, and each shard is owned by exactly one gateway
//! thread (`shard % threads`). A datagram arriving on the socket of
//! shard *s* is submitted to shard *s* — no hashing at the gateway, no
//! cross-thread handoff — and egress a shard emits from simulated port
//! *p* leaves through that same `(s, p)` socket, so a client that keeps
//! talking to one socket keeps one session on one shard, and a
//! target-side responder that answers the socket that queried it
//! automatically reaches the shard that asked. Clients that want the
//! FxHash pinning of [`ShardedBridge::shard_of`] resolve their shard
//! with [`ShardedGateway::shard_of`] and use that shard's socket
//! ([`ShardedGateway::ingress_real_port`]); either way all traffic of
//! one client host lands on one shard, which is the sharding contract.
//!
//! Where epoll is unavailable the same topology runs on a polling
//! front (bounded backoff sleeps instead of `epoll_wait`) — check
//! [`ShardedGateway::mode`].

use crate::host::BridgeCommand;
use crate::metrics::MetricsHub;
use crate::shard::{ControlSlot, ShardHandle, ShardInput, ShardOutput, ShardedBridge};
use starlink_net::{
    readiness_supported, BufferPool, Bytes, Datagram, GatewayReactor, LoopbackUdp, MetricsServer,
    NetError, ReadinessWaker, SimAddr, SimTime,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`ShardedGateway::launch`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// The simulated UDP ports every shard's engine listens on; each
    /// gets one real socket per shard.
    pub udp_ports: Vec<u16>,
    /// Gateway threads (each runs one reactor). Clamped to the shard
    /// count — more threads than shards would own nothing.
    pub threads: usize,
    /// Poll timeout while traffic is flowing: bounds how long a
    /// matured in-simulation reply can wait for the virtual clock to
    /// advance past it.
    pub active_tick: Duration,
    /// Poll timeout once the gateway has been idle for a while: the
    /// thread blocks in `epoll_wait` this long between empty-batch
    /// clock advances, burning ~0 CPU. Arrivals still wake it
    /// instantly; only *timer-driven* work (idle session expiry) waits
    /// for the tick.
    pub idle_tick: Duration,
    /// How long without traffic before stretching to `idle_tick`.
    pub idle_after: Duration,
    /// Forces the portable polling front even where epoll works
    /// (exercises the fallback path).
    pub force_polling: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            udp_ports: Vec::new(),
            threads: 1,
            active_tick: Duration::from_millis(1),
            idle_tick: Duration::from_millis(200),
            idle_after: Duration::from_millis(50),
            force_polling: false,
        }
    }
}

/// Aggregate gateway counters (all threads summed).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GatewayStats {
    /// Datagrams received on real sockets and submitted to shards.
    pub datagrams_in: u64,
    /// Egress datagrams sent out of real sockets.
    pub datagrams_out: u64,
    /// Batches submitted to shard queues (including empty clock
    /// advances).
    pub submits: u64,
    /// Egress sends that failed (recorded, batch finished anyway).
    pub send_errors: u64,
}

#[derive(Default)]
struct Counters {
    datagrams_in: AtomicU64,
    datagrams_out: AtomicU64,
    submits: AtomicU64,
    send_errors: AtomicU64,
}

/// The socket front of one gateway thread: the readiness reactor, or a
/// portable polling fallback with the same surface.
enum Front {
    Readiness(GatewayReactor),
    Polling { slots: Vec<(u64, LoopbackUdp)>, by_tag: HashMap<u64, usize> },
}

impl Front {
    fn add_socket(&mut self, tag: u64) -> Result<u16, NetError> {
        match self {
            Front::Readiness(reactor) => reactor.add_socket(tag),
            Front::Polling { slots, by_tag } => {
                let socket = LoopbackUdp::bind_nonblocking()?;
                let port = socket.port()?;
                by_tag.insert(tag, slots.len());
                slots.push((tag, socket));
                Ok(port)
            }
        }
    }

    /// Waits up to `timeout` for traffic, then drains it into `sink`.
    /// The polling front sleeps in small bounded quanta and drains
    /// every socket; the readiness front blocks in `epoll_wait` and
    /// drains only ready ones.
    fn poll(
        &mut self,
        timeout: Duration,
        pool: &mut BufferPool,
        mut sink: impl FnMut(u64, &[u8], u16),
    ) -> Result<usize, NetError> {
        match self {
            Front::Readiness(reactor) => reactor.poll(Some(timeout), pool, sink),
            Front::Polling { slots, .. } => {
                const QUANTUM: Duration = Duration::from_millis(2);
                let deadline = Instant::now() + timeout;
                let mut buf = pool.acquire();
                let mut drained = 0usize;
                loop {
                    for (tag, socket) in slots.iter() {
                        while let Some((len, from_port)) = socket.try_recv_into(&mut buf)? {
                            sink(*tag, &buf[..len], from_port);
                            drained += 1;
                        }
                    }
                    let now = Instant::now();
                    if drained > 0 || now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(QUANTUM));
                }
                pool.release(buf);
                Ok(drained)
            }
        }
    }

    fn send_from(&mut self, tag: u64, payload: &[u8], to_port: u16) -> Result<(), NetError> {
        match self {
            Front::Readiness(reactor) => reactor.send_from(tag, payload, to_port),
            Front::Polling { slots, by_tag } => {
                let &idx = by_tag
                    .get(&tag)
                    .ok_or_else(|| NetError::Io(format!("gateway tag {tag} not registered")))?;
                slots[idx].1.send_to(payload, to_port)
            }
        }
    }

    fn rebuild(&mut self) -> Result<(), NetError> {
        match self {
            Front::Readiness(reactor) => reactor.rebuild(),
            // Nothing to rebuild: the polling front has no epoll fd.
            Front::Polling { .. } => Ok(()),
        }
    }
}

/// Shared state each gateway thread works against.
struct Control {
    stop: AtomicBool,
    /// Bumped by [`ShardedGateway::request_rebuild`]; threads rebuild
    /// their front when their seen generation lags.
    rebuild_generation: AtomicU64,
    counters: Counters,
    errors: Mutex<Vec<String>>,
    /// Per-shard driver-injected inputs (TCP legs of chain cases),
    /// drained by the owning gateway thread each iteration.
    injected: Vec<Mutex<Vec<ShardInput>>>,
    /// Non-datagram shard outputs (TCP data/close), for
    /// [`ShardedGateway::drain_tcp`].
    tcp_out: Mutex<Vec<(usize, ShardOutput)>>,
}

struct GatewayThread {
    front: Front,
    /// Shards this thread owns, paired with their handles.
    owned: Vec<(usize, ShardHandle)>,
    config: GatewayConfig,
}

/// The compound tag of one real socket: shard index × simulated port.
fn tag_of(shard: usize, sim_port: u16) -> u64 {
    ((shard as u64) << 16) | u64::from(sim_port)
}

/// A [`ShardedBridge`] served over real loopback sockets by N gateway
/// threads (see the module docs for the topology and affinity
/// contract). TCP chain legs are carried via [`ShardedGateway::inject`]
/// / [`ShardedGateway::drain_tcp`]; only UDP crosses real sockets.
pub struct ShardedGateway {
    bridge: ShardedBridge,
    handles: Vec<ShardHandle>,
    control: Arc<Control>,
    /// Waker of each gateway thread's reactor (empty in polling mode).
    wakers: Vec<Arc<ReadinessWaker>>,
    /// (shard, sim_port) → real loopback port.
    real_ports: HashMap<(usize, u16), u16>,
    threads: Vec<JoinHandle<()>>,
    mode: &'static str,
}

impl std::fmt::Debug for ShardedGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedGateway")
            .field("shards", &self.handles.len())
            .field("threads", &self.threads.len())
            .field("mode", &self.mode)
            .finish()
    }
}

impl ShardedGateway {
    /// Takes ownership of `bridge` and serves it over real sockets:
    /// binds one socket per shard × port of `config.udp_ports`, spawns
    /// `config.threads` gateway threads (readiness-driven where epoll
    /// is available, polling otherwise), and installs each shard's
    /// egress notifier so workers wake the owning thread the moment
    /// replies land.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`](crate::CoreError::Net) when a socket
    /// cannot be bound or registered.
    pub fn launch(bridge: ShardedBridge, config: GatewayConfig) -> crate::Result<Self> {
        let handles = bridge.handles();
        let shard_count = handles.len();
        let thread_count = config.threads.clamp(1, shard_count);
        let readiness = !config.force_polling && readiness_supported();
        let mode = if readiness { "readiness" } else { "polling" };

        // Build every thread's front up-front so the port map is
        // complete before any traffic can arrive.
        let mut fronts = Vec::with_capacity(thread_count);
        let mut wakers = Vec::new();
        for _ in 0..thread_count {
            let front = if readiness {
                let reactor = GatewayReactor::new().map_err(crate::CoreError::Net)?;
                wakers.push(reactor.waker());
                Front::Readiness(reactor)
            } else {
                Front::Polling { slots: Vec::new(), by_tag: HashMap::new() }
            };
            fronts.push(front);
        }
        let mut real_ports = HashMap::new();
        for shard in 0..shard_count {
            let front = &mut fronts[shard % thread_count];
            for &port in &config.udp_ports {
                let real = front.add_socket(tag_of(shard, port)).map_err(crate::CoreError::Net)?;
                real_ports.insert((shard, port), real);
            }
        }

        let control = Arc::new(Control {
            stop: AtomicBool::new(false),
            rebuild_generation: AtomicU64::new(0),
            counters: Counters::default(),
            errors: Mutex::new(Vec::new()),
            injected: (0..shard_count).map(|_| Mutex::new(Vec::new())).collect(),
            tcp_out: Mutex::new(Vec::new()),
        });

        // Egress notifiers: a shard worker that publishes egress wakes
        // the reactor of the thread owning that shard.
        if readiness {
            for (shard, handle) in handles.iter().enumerate() {
                let waker = Arc::clone(&wakers[shard % thread_count]);
                handle.set_egress_notifier(move || waker.wake());
            }
        }

        let epoch = Instant::now();
        let mut threads = Vec::with_capacity(thread_count);
        for (index, front) in fronts.into_iter().enumerate() {
            let owned: Vec<(usize, ShardHandle)> = handles
                .iter()
                .enumerate()
                .filter(|(shard, _)| shard % thread_count == index)
                .map(|(shard, handle)| (shard, handle.clone()))
                .collect();
            let thread = GatewayThread { front, owned, config: config.clone() };
            let control = Arc::clone(&control);
            let host = Arc::clone(bridge.host());
            threads.push(std::thread::spawn(move || {
                gateway_thread(thread, &control, &host, epoch);
            }));
        }

        Ok(ShardedGateway { bridge, handles, control, wakers, real_ports, threads, mode })
    }

    /// `"readiness"` (epoll-driven) or `"polling"` (portable fallback).
    pub fn mode(&self) -> &'static str {
        self.mode
    }

    /// Number of shards served.
    pub fn shard_count(&self) -> usize {
        self.handles.len()
    }

    /// The shard FxHash pins `client_host` to — clients that want
    /// hash-affinity resolve their socket with this plus
    /// [`ShardedGateway::ingress_real_port`].
    pub fn shard_of(&self, client_host: &str) -> usize {
        (fxhash::hash64(client_host) % self.handles.len() as u64) as usize
    }

    /// The real loopback port exposing `sim_port` of `shard`.
    pub fn ingress_real_port(&self, shard: usize, sim_port: u16) -> Option<u16> {
        self.real_ports.get(&(shard, sim_port)).copied()
    }

    /// Queues a non-datagram input (TCP chain legs) onto `shard`,
    /// picked up by the owning gateway thread within one active tick.
    pub fn inject(&self, shard: usize, input: ShardInput) {
        let mut queue =
            self.control.injected[shard].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        queue.push(input);
        drop(queue);
        if let Some(waker) = self.wakers.get(shard % self.threads.len().max(1)) {
            waker.wake();
        }
    }

    /// Drains TCP shard outputs (stream data, closes, connect
    /// failures) collected by the gateway threads, as `(shard, output)`
    /// pairs.
    pub fn drain_tcp(&self, out: &mut Vec<(usize, ShardOutput)>) {
        let mut queue =
            self.control.tcp_out.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        out.append(&mut queue);
    }

    /// Asks every gateway thread to tear down and rebuild its epoll
    /// registration set (fd churn) at its next iteration. The sockets —
    /// and therefore every [`ShardedGateway::ingress_real_port`] — are
    /// untouched.
    pub fn request_rebuild(&self) {
        self.control.rebuild_generation.fetch_add(1, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> GatewayStats {
        let c = &self.control.counters;
        GatewayStats {
            datagrams_in: c.datagrams_in.load(Ordering::Relaxed),
            datagrams_out: c.datagrams_out.load(Ordering::Relaxed),
            submits: c.submits.load(Ordering::Relaxed),
            send_errors: c.send_errors.load(Ordering::Relaxed),
        }
    }

    /// Errors gateway threads recorded (egress send failures and the
    /// like — each finished its batch and kept serving).
    pub fn errors(&self) -> Vec<String> {
        self.control.errors.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Sends one control command per shard down the ordinary injected
    /// path: each command rides the owning gateway thread's next batch,
    /// so a live swap is serialized against socket traffic exactly like
    /// any other ingress. Advertised ports ([`Self::ingress_real_port`])
    /// are untouched — clients keep their sockets across the swap.
    ///
    /// # Panics
    ///
    /// Panics when `commands.len() != self.shard_count()`.
    pub fn dispatch_control(&self, commands: Vec<BridgeCommand>) {
        assert_eq!(
            commands.len(),
            self.handles.len(),
            "dispatch_control needs one command per shard"
        );
        for (shard, command) in commands.into_iter().enumerate() {
            self.inject(shard, ShardInput::Control(ControlSlot::new(command)));
        }
    }

    /// Serves `hub`'s pages from a loopback HTTP endpoint
    /// (`GET /metrics`, `GET /trace`), wiring the gateway's own
    /// counters, the fleet-wide unrouted counter and every shard's
    /// trace stream into the hub first. Drop the returned server to
    /// stop serving; the sinks stay installed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Net`](crate::CoreError::Net) when the
    /// endpoint socket cannot be bound.
    pub fn serve_metrics(&self, hub: &MetricsHub) -> crate::Result<MetricsServer> {
        let control = Arc::clone(&self.control);
        hub.set_gateway(move || {
            let c = &control.counters;
            GatewayStats {
                datagrams_in: c.datagrams_in.load(Ordering::Relaxed),
                datagrams_out: c.datagrams_out.load(Ordering::Relaxed),
                submits: c.submits.load(Ordering::Relaxed),
                send_errors: c.send_errors.load(Ordering::Relaxed),
            }
        });
        hub.set_unrouted(self.bridge.unrouted_handle());
        for (shard, handle) in self.handles.iter().enumerate() {
            let hub = hub.clone();
            let source = format!("shard{shard}");
            handle.set_trace_sink(move |entry| hub.record_trace(&source, entry));
        }
        MetricsServer::serve(hub.render_fn()).map_err(crate::CoreError::Net)
    }

    /// Blocks until every shard has processed every batch submitted so
    /// far (the [`ShardedBridge::flush`] barrier).
    pub fn flush(&self) {
        self.bridge.flush();
    }
}

impl Drop for ShardedGateway {
    fn drop(&mut self) {
        self.control.stop.store(true, Ordering::SeqCst);
        for waker in &self.wakers {
            waker.wake();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        for handle in &self.handles {
            handle.clear_egress_notifier();
        }
        // `bridge` drops last, shutting down the shard workers.
    }
}

/// The loop of one gateway thread (see the module diagram): wait for
/// readiness, drain ready sockets into per-shard batches, submit with
/// the virtual clock slaved to real elapsed time, flush outbox egress
/// back through the owning sockets.
fn gateway_thread(mut thread: GatewayThread, control: &Control, host: &Arc<str>, epoch: Instant) {
    let loopback: Arc<str> = Arc::from("127.0.0.1");
    let mut pool = BufferPool::new();
    let mut pending: HashMap<usize, Vec<ShardInput>> =
        thread.owned.iter().map(|(shard, _)| (*shard, Vec::new())).collect();
    let mut outbox: Vec<ShardOutput> = Vec::new();
    let mut seen_generation = 0u64;
    let mut last_traffic = Instant::now();

    while !control.stop.load(Ordering::SeqCst) {
        let generation = control.rebuild_generation.load(Ordering::SeqCst);
        if generation != seen_generation {
            seen_generation = generation;
            if let Err(err) = thread.front.rebuild() {
                record_error(control, format!("front rebuild failed: {err}"));
            }
        }

        let idle = last_traffic.elapsed() >= thread.config.idle_after;
        let timeout = if idle { thread.config.idle_tick } else { thread.config.active_tick };
        let drained = {
            let counters = &control.counters;
            thread.front.poll(timeout, &mut pool, |tag, payload, from_port| {
                let shard = (tag >> 16) as usize;
                let sim_port = (tag & 0xFFFF) as u16;
                if let Some(batch) = pending.get_mut(&shard) {
                    batch.push(ShardInput::Datagram(Datagram {
                        from: SimAddr { host: loopback.clone(), port: from_port },
                        to: SimAddr { host: host.clone(), port: sim_port },
                        payload: Bytes::copy_from_slice(payload),
                    }));
                    counters.datagrams_in.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        match drained {
            Ok(0) => {}
            Ok(_) => last_traffic = Instant::now(),
            Err(err) => record_error(control, format!("ingress poll failed: {err}")),
        }

        // Driver-injected inputs (TCP chain legs) ride the same batch.
        let mut injected_any = false;
        for (shard, _) in &thread.owned {
            let mut queue =
                control.injected[*shard].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !queue.is_empty() {
                injected_any = true;
                pending.get_mut(shard).expect("owned shard").append(&mut queue);
            }
        }
        if injected_any {
            last_traffic = Instant::now();
        }

        // Submit every owned shard — an empty batch still advances the
        // virtual clock, so timers (idle expiry, calibrated service
        // delays) keep firing while sockets are quiet.
        let now = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
        for (shard, handle) in &thread.owned {
            handle.submit(now, std::mem::take(pending.get_mut(shard).expect("owned shard")));
            control.counters.submits.fetch_add(1, Ordering::Relaxed);
        }

        // Flush egress the workers have published. Replies matured in
        // the submit above usually land here on the *next* iteration —
        // within one active tick, or immediately when the shard
        // worker's egress notifier wakes the reactor.
        for (shard, handle) in &thread.owned {
            outbox.clear();
            handle.drain_outbox(&mut outbox);
            let mut sent_any = false;
            let mut first_error: Option<String> = None;
            for output in outbox.drain(..) {
                match output {
                    ShardOutput::Datagram(datagram) => {
                        let tag = tag_of(*shard, datagram.from.port);
                        match thread.front.send_from(tag, &datagram.payload, datagram.to.port) {
                            Ok(()) => {
                                sent_any = true;
                                control.counters.datagrams_out.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(err) => {
                                // Finish the batch; report the first
                                // failure (the UdpBridge::pump rule).
                                control.counters.send_errors.fetch_add(1, Ordering::Relaxed);
                                first_error.get_or_insert_with(|| {
                                    format!("egress send failed (shard {shard}): {err}")
                                });
                            }
                        }
                    }
                    other => {
                        let mut queue = control
                            .tcp_out
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        queue.push((*shard, other));
                    }
                }
            }
            if let Some(error) = first_error {
                record_error(control, error);
            }
            if sent_any {
                last_traffic = Instant::now();
            }
        }
    }
}

fn record_error(control: &Control, error: String) {
    let mut errors = control.errors.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Bounded so a persistent failure cannot grow memory on a
    // long-lived gateway.
    if errors.len() < 1024 {
        errors.push(error);
    }
}
