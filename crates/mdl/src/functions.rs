//! Compose-time field functions (§IV-A): `f-length(field)` computes a
//! length field from another field's wire image ("the marshaller takes the
//! value to be written to the URLEntry field, calculates the length and
//! then composes this as the URLLength value"); `f-total-length()` and
//! `f-count(field)` are the natural companions needed by SLP and DNS
//! headers.

use crate::error::{MdlError, Result};
use crate::marshal::MarshallerRegistry;
use crate::size::{ResolvedSize, SizeSpec};
use crate::spec::{FieldSpec, MdlSpec};
use starlink_message::{AbstractMessage, FieldPath, Value};

/// The sizing context a field uses when its wire width must be derived
/// from its value rather than from a fixed declaration.
fn sizing_of(size: &SizeSpec) -> ResolvedSize {
    match size {
        SizeSpec::Bits(bits) => ResolvedSize::Bits(u64::from(*bits)),
        SizeSpec::SelfDelimiting => ResolvedSize::SelfDelimiting,
        // FieldRef / delimiters / remaining: width follows the value.
        _ => ResolvedSize::Remaining,
    }
}

/// Computes the wire width in bits of `field` given the current `message`
/// values.
///
/// # Errors
///
/// Fails when the field is missing from the message or its marshaller
/// cannot size the value.
pub fn field_wire_bits(
    spec: &MdlSpec,
    marshallers: &MarshallerRegistry,
    message: &AbstractMessage,
    field: &FieldSpec,
) -> Result<u64> {
    let value = message
        .field(&field.label)
        .ok_or_else(|| MdlError::Compose(format!("message is missing field {:?}", field.label)))?
        .value()?;
    let marshaller = marshallers.get(spec.base_type(&field.label))?;
    marshaller.wire_bits(value, sizing_of(&field.size))
}

/// Evaluates every field function of `fields` against `message`, writing
/// the computed values back into the message. Local functions
/// (`f-length`, `f-count`) run first, then `f-total-length`, which needs
/// every other width settled.
///
/// # Errors
///
/// Fails on unknown functions, missing argument fields, or unsizable
/// values.
pub fn evaluate_functions(
    spec: &MdlSpec,
    marshallers: &MarshallerRegistry,
    fields: &[&FieldSpec],
    message: &mut AbstractMessage,
) -> Result<()> {
    // Pass 1: value-local functions.
    for field in fields {
        let Some(def) = spec.types().get(&field.label) else { continue };
        let Some(function) = &def.function else { continue };
        match function.name.as_str() {
            "f-length" => {
                let target_label = function.args.first().ok_or_else(|| {
                    MdlError::Function("f-length requires one field argument".into())
                })?;
                let target = fields.iter().find(|f| &f.label == target_label).ok_or_else(|| {
                    MdlError::Function(format!(
                        "f-length target {target_label:?} is not a field of this message"
                    ))
                })?;
                let bits = field_wire_bits(spec, marshallers, message, target)?;
                message.set(&FieldPath::field(&field.label), Value::Unsigned(bits / 8))?;
            }
            "f-count" => {
                let target_label = function.args.first().ok_or_else(|| {
                    MdlError::Function("f-count requires one field argument".into())
                })?;
                let count = match message.field(target_label) {
                    Some(f) => match f.value() {
                        Ok(Value::List(items)) => items.len() as u64,
                        Ok(_) => 1,
                        Err(_) => f.as_structured().map(|s| s.fields().len()).unwrap_or(0) as u64,
                    },
                    None => 0,
                };
                message.set(&FieldPath::field(&field.label), Value::Unsigned(count))?;
            }
            "f-total-length" => {} // second pass
            other => {
                return Err(MdlError::Function(format!("unknown field function {other:?}")));
            }
        }
    }
    // Pass 2: whole-message functions.
    for field in fields {
        let Some(def) = spec.types().get(&field.label) else { continue };
        let Some(function) = &def.function else { continue };
        if function.name == "f-total-length" {
            let mut total_bits = 0u64;
            for f in fields {
                total_bits += field_wire_bits(spec, marshallers, message, f)?;
            }
            message.set(&FieldPath::field(&field.label), Value::Unsigned(total_bits / 8))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use crate::spec::{MdlKind, MessageSpec};
    use crate::types::{FieldFunction, TypeDef};
    use starlink_message::Field;

    fn spec() -> MdlSpec {
        MdlSpec::new("T", MdlKind::Binary)
            .type_entry("Url", TypeDef::plain("String"))
            .type_entry(
                "UrlLen",
                TypeDef::with_function(
                    "Integer",
                    FieldFunction::new("f-length", vec!["Url".into()]),
                ),
            )
            .type_entry(
                "Total",
                TypeDef::with_function("Integer", FieldFunction::new("f-total-length", vec![])),
            )
            .header_field(FieldSpec::new("Total", SizeSpec::Bits(16)))
            .message(
                MessageSpec::new("M", Rule::Always)
                    .field(FieldSpec::new("UrlLen", SizeSpec::Bits(16)))
                    .field(FieldSpec::new("Url", SizeSpec::FieldRef("UrlLen".into()))),
            )
    }

    fn message(url: &str) -> AbstractMessage {
        let mut msg = AbstractMessage::new("T", "M");
        msg.push_field(Field::primitive("Total", 0u16));
        msg.push_field(Field::primitive("UrlLen", 0u16));
        msg.push_field(Field::primitive("Url", url));
        msg
    }

    fn run(msg: &mut AbstractMessage) {
        let s = spec();
        let m = MarshallerRegistry::with_builtins();
        let body = s.message_spec("M").unwrap();
        let fields: Vec<&FieldSpec> = s.header().iter().chain(body.fields.iter()).collect();
        evaluate_functions(&s, &m, &fields, msg).unwrap();
    }

    #[test]
    fn f_length_computes_byte_length() {
        let mut msg = message("http://x/desc.xml");
        run(&mut msg);
        assert_eq!(msg.get(&"UrlLen".into()).unwrap().as_u64().unwrap(), 17);
    }

    #[test]
    fn f_total_length_counts_all_fields() {
        let mut msg = message("abcd");
        run(&mut msg);
        // Total(2 bytes) + UrlLen(2 bytes) + Url(4 bytes) = 8.
        assert_eq!(msg.get(&"Total".into()).unwrap().as_u64().unwrap(), 8);
    }

    #[test]
    fn unknown_function_is_rejected() {
        let s = MdlSpec::new("T", MdlKind::Binary)
            .type_entry(
                "X",
                TypeDef::with_function("Integer", FieldFunction::new("f-magic", vec![])),
            )
            .message(
                MessageSpec::new("M", Rule::Always).field(FieldSpec::new("X", SizeSpec::Bits(8))),
            );
        let m = MarshallerRegistry::with_builtins();
        let body = s.message_spec("M").unwrap();
        let fields: Vec<&FieldSpec> = body.fields.iter().collect();
        let mut msg = AbstractMessage::new("T", "M");
        msg.push_field(Field::primitive("X", 0u8));
        assert!(matches!(
            evaluate_functions(&s, &m, &fields, &mut msg),
            Err(MdlError::Function(_))
        ));
    }

    #[test]
    fn f_count_counts_list_items() {
        let s = MdlSpec::new("T", MdlKind::Binary)
            .type_entry("Records", TypeDef::plain("String"))
            .type_entry(
                "Count",
                TypeDef::with_function(
                    "Integer",
                    FieldFunction::new("f-count", vec!["Records".into()]),
                ),
            )
            .message(
                MessageSpec::new("M", Rule::Always)
                    .field(FieldSpec::new("Count", SizeSpec::Bits(16)))
                    .field(FieldSpec::new("Records", SizeSpec::Remaining)),
            );
        let m = MarshallerRegistry::with_builtins();
        let body = s.message_spec("M").unwrap();
        let fields: Vec<&FieldSpec> = body.fields.iter().collect();
        let mut msg = AbstractMessage::new("T", "M");
        msg.push_field(Field::primitive("Count", 0u16));
        msg.push_field(Field::primitive(
            "Records",
            vec![Value::Str("a".into()), Value::Str("b".into()), Value::Str("c".into())],
        ));
        evaluate_functions(&s, &m, &fields, &mut msg).unwrap();
        assert_eq!(msg.get(&"Count".into()).unwrap().as_u64().unwrap(), 3);
    }
}
