//! The in-memory model of an MDL specification (§IV-A).

use crate::error::{MdlError, Result};
use crate::rule::Rule;
use crate::size::SizeSpec;
use crate::types::{TypeDef, TypeTable};
use starlink_message::{FieldSchema, Label, MessageSchema};

/// Whether the protocol's wire image is a bit/byte sequence or delimited
/// text ("specialised languages for binary messages, text messages ...
/// can be plugged into the framework", §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MdlKind {
    /// Bit-structured messages (SLP, DNS).
    Binary,
    /// Line/delimiter-structured messages (SSDP, HTTP).
    Text,
}

impl MdlKind {
    /// Parses the `kind` attribute value.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] for unknown kinds.
    pub fn parse(text: &str) -> Result<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "binary" => Ok(MdlKind::Binary),
            "text" => Ok(MdlKind::Text),
            other => Err(MdlError::Spec(format!("unknown MDL kind {other:?}"))),
        }
    }

    /// The canonical attribute value.
    pub fn as_str(&self) -> &'static str {
        match self {
            MdlKind::Binary => "binary",
            MdlKind::Text => "text",
        }
    }
}

/// One field of a header or message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field label (also the key into the type table).
    pub label: Label,
    /// Declared size.
    pub size: SizeSpec,
    /// Whether the ⊨ operator treats this field as mandatory.
    pub mandatory: bool,
}

impl FieldSpec {
    /// Creates a field spec.
    pub fn new(label: impl Into<Label>, size: SizeSpec) -> Self {
        FieldSpec { label: label.into(), size, mandatory: false }
    }

    /// Builder: marks the field mandatory.
    pub fn required(mut self) -> Self {
        self.mandatory = true;
        self
    }
}

/// A `<Message>` section: name, selection rule, body fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpec {
    /// Message type name (e.g. `SLPSrvRequest`).
    pub name: Label,
    /// Predicate on header fields selecting this body.
    pub rule: Rule,
    /// Body fields in wire order.
    pub fields: Vec<FieldSpec>,
}

impl MessageSpec {
    /// Creates a message spec.
    pub fn new(name: impl Into<Label>, rule: Rule) -> Self {
        MessageSpec { name: name.into(), rule, fields: Vec::new() }
    }

    /// Builder: appends a body field.
    pub fn field(mut self, field: FieldSpec) -> Self {
        self.fields.push(field);
        self
    }
}

/// A complete MDL specification for one protocol.
///
/// ```
/// use starlink_mdl::{MdlSpec, MdlKind, FieldSpec, MessageSpec, Rule, SizeSpec};
///
/// let spec = MdlSpec::new("SLP", MdlKind::Binary)
///     .header_field(FieldSpec::new("Version", SizeSpec::Bits(8)))
///     .header_field(FieldSpec::new("FunctionID", SizeSpec::Bits(8)))
///     .message(
///         MessageSpec::new("SLPSrvRequest", Rule::parse("FunctionID=1")?)
///             .field(FieldSpec::new("SRVTypeLength", SizeSpec::Bits(16)))
///             .field(FieldSpec::new("SRVType", SizeSpec::FieldRef("SRVTypeLength".into()))),
///     );
/// assert_eq!(spec.messages().len(), 1);
/// # Ok::<(), starlink_mdl::MdlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdlSpec {
    protocol: Label,
    kind: MdlKind,
    types: TypeTable,
    header: Vec<FieldSpec>,
    messages: Vec<MessageSpec>,
}

impl MdlSpec {
    /// Creates an empty spec for `protocol`.
    pub fn new(protocol: impl Into<Label>, kind: MdlKind) -> Self {
        MdlSpec {
            protocol: protocol.into(),
            kind,
            types: TypeTable::new(),
            header: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// The protocol name (`SLP`, `SSDP`, ...).
    pub fn protocol(&self) -> &str {
        &self.protocol
    }

    /// The protocol name as a shared label (allocation-free to clone).
    pub fn protocol_label(&self) -> &Label {
        &self.protocol
    }

    /// Binary or text.
    pub fn kind(&self) -> MdlKind {
        self.kind
    }

    /// The type table.
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// Header fields in wire order.
    pub fn header(&self) -> &[FieldSpec] {
        &self.header
    }

    /// Message sections in declaration order (rule evaluation order).
    pub fn messages(&self) -> &[MessageSpec] {
        &self.messages
    }

    /// Builder: registers a type entry.
    pub fn type_entry(mut self, label: impl Into<String>, def: TypeDef) -> Self {
        self.types.insert(label, def);
        self
    }

    /// Builder: appends a header field.
    pub fn header_field(mut self, field: FieldSpec) -> Self {
        self.header.push(field);
        self
    }

    /// Builder: appends a message section.
    pub fn message(mut self, message: MessageSpec) -> Self {
        self.messages.push(message);
        self
    }

    /// Looks up a message section by name.
    pub fn message_spec(&self, name: &str) -> Option<&MessageSpec> {
        self.messages.iter().find(|m| m.name == name)
    }

    /// Selects the message section whose rule matches the parsed header.
    pub fn select_by_rule(
        &self,
        header: &starlink_message::AbstractMessage,
    ) -> Option<&MessageSpec> {
        self.messages.iter().find(|m| m.rule.matches(header))
    }

    /// The marshaller base name for a field label (defaulting to `Integer`
    /// for binary specs and `String` for text specs, matching the paper's
    /// elided listings).
    pub fn base_type(&self, label: &str) -> &str {
        let default = match self.kind {
            MdlKind::Binary => "Integer",
            MdlKind::Text => "String",
        };
        self.types.base_or(label, default)
    }

    /// Derives the abstract-message schema of one message type: the header
    /// fields followed by the body fields, with rule discriminators
    /// pre-bound as defaults so composed messages select the right rule.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::UnknownMessage`] for unknown names.
    pub fn schema(&self, name: &str) -> Result<MessageSchema> {
        let message =
            self.message_spec(name).ok_or_else(|| MdlError::UnknownMessage(name.to_owned()))?;
        let mut schema = MessageSchema::new(self.protocol.clone(), name);
        let bindings = message.rule.bindings();
        for field in self.header.iter().chain(message.fields.iter()) {
            let mut fs = FieldSchema::primitive(field.label.clone(), self.base_type(&field.label));
            if let SizeSpec::Bits(bits) = field.size {
                fs = fs.with_length(bits);
            }
            if field.mandatory {
                fs = fs.required();
            }
            if let Some((_, literal)) = bindings.iter().find(|(f, _)| *f == field.label) {
                fs = match self.base_type(&field.label) {
                    "Integer" | "Unsigned" | "Signed" => match literal.parse::<u64>() {
                        Ok(v) => fs.with_default(v),
                        Err(_) => fs.with_default(literal.to_string()),
                    },
                    _ => fs.with_default(literal.to_string()),
                };
            }
            schema = schema.field(fs);
        }
        Ok(schema)
    }

    /// Validates internal consistency: field references resolve to earlier
    /// fields, types with functions reference known labels, message names
    /// are unique.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        let mut seen = std::collections::BTreeSet::new();
        for message in &self.messages {
            if !seen.insert(&message.name) {
                return Err(MdlError::Spec(format!("duplicate message type {:?}", message.name)));
            }
        }
        for message in &self.messages {
            let mut known: Vec<&str> = self.header.iter().map(|f| f.label.as_str()).collect();
            for field in &message.fields {
                if let SizeSpec::FieldRef(target) = &field.size {
                    if !known.contains(&target.as_str()) {
                        return Err(MdlError::Spec(format!(
                            "field {:?} of message {:?} references {:?} before it is parsed",
                            field.label, message.name, target
                        )));
                    }
                }
                known.push(field.label.as_str());
            }
        }
        // Header field refs must reference earlier header fields.
        let mut known: Vec<&str> = Vec::new();
        for field in &self.header {
            if let SizeSpec::FieldRef(target) = &field.size {
                if !known.contains(&target.as_str()) {
                    return Err(MdlError::Spec(format!(
                        "header field {:?} references {:?} before it is parsed",
                        field.label, target
                    )));
                }
            }
            known.push(field.label.as_str());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FieldFunction;
    use starlink_message::Value;

    fn spec() -> MdlSpec {
        MdlSpec::new("SLP", MdlKind::Binary)
            .type_entry("SRVType", TypeDef::plain("String"))
            .type_entry(
                "SRVTypeLength",
                TypeDef::with_function(
                    "Integer",
                    FieldFunction::new("f-length", vec!["SRVType".into()]),
                ),
            )
            .header_field(FieldSpec::new("Version", SizeSpec::Bits(8)))
            .header_field(FieldSpec::new("FunctionID", SizeSpec::Bits(8)))
            .message(
                MessageSpec::new("SLPSrvRequest", Rule::parse("FunctionID=1").unwrap())
                    .field(FieldSpec::new("SRVTypeLength", SizeSpec::Bits(16)))
                    .field(
                        FieldSpec::new("SRVType", SizeSpec::FieldRef("SRVTypeLength".into()))
                            .required(),
                    ),
            )
            .message(MessageSpec::new("SLPSrvReply", Rule::parse("FunctionID=2").unwrap()))
    }

    #[test]
    fn base_type_defaults_by_kind() {
        let s = spec();
        assert_eq!(s.base_type("SRVType"), "String");
        assert_eq!(s.base_type("Version"), "Integer"); // not in table, binary default
        let text = MdlSpec::new("SSDP", MdlKind::Text);
        assert_eq!(text.base_type("Anything"), "String");
    }

    #[test]
    fn schema_includes_header_and_body() {
        let schema = spec().schema("SLPSrvRequest").unwrap();
        let labels: Vec<&str> = schema.fields().iter().map(|f| f.label.as_str()).collect();
        assert_eq!(labels, vec!["Version", "FunctionID", "SRVTypeLength", "SRVType"]);
    }

    #[test]
    fn schema_prebinds_rule_discriminators() {
        let schema = spec().schema("SLPSrvRequest").unwrap();
        let msg = schema.instantiate();
        assert_eq!(msg.get(&"FunctionID".into()).unwrap(), &Value::Unsigned(1));
    }

    #[test]
    fn schema_marks_mandatory() {
        let schema = spec().schema("SLPSrvRequest").unwrap();
        assert!(schema.instantiate().is_mandatory("SRVType"));
    }

    #[test]
    fn schema_unknown_message_fails() {
        assert!(matches!(spec().schema("Nope"), Err(MdlError::UnknownMessage(_))));
    }

    #[test]
    fn select_by_rule_picks_matching_body() {
        let s = spec();
        let mut header = starlink_message::AbstractMessage::new("SLP", "header");
        header.push_field(starlink_message::Field::primitive("FunctionID", 2u8));
        assert_eq!(s.select_by_rule(&header).unwrap().name, "SLPSrvReply");
    }

    #[test]
    fn validate_accepts_good_spec() {
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let bad = MdlSpec::new("X", MdlKind::Binary).message(
            MessageSpec::new("M", Rule::Always)
                .field(FieldSpec::new("Data", SizeSpec::FieldRef("Len".into())))
                .field(FieldSpec::new("Len", SizeSpec::Bits(16))),
        );
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_message_names() {
        let bad = MdlSpec::new("X", MdlKind::Binary)
            .message(MessageSpec::new("M", Rule::Always))
            .message(MessageSpec::new("M", Rule::Always));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn kind_parse() {
        assert_eq!(MdlKind::parse("Binary").unwrap(), MdlKind::Binary);
        assert_eq!(MdlKind::parse("text").unwrap(), MdlKind::Text);
        assert!(MdlKind::parse("xml").is_err());
    }
}
