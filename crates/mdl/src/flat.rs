//! Flat slot plans: the allocation-free fast path under the fused
//! translation engine.
//!
//! A [`FlatPlan`] is compiled from an [`MdlSpec`] once, at codec
//! generation. Where the interpreted parser materialises an
//! [`AbstractMessage`](starlink_message::AbstractMessage) tree — one
//! heap-allocated field per wire field — the flat parser writes each
//! field into a numbered *slot* of a reusable [`FlatRecord`]: numbers as
//! raw `u64`s, text as spans of a per-record byte arena. Steady-state
//! parse → compose touches no allocator at all.
//!
//! Not every MDL can be flattened: the plan compiler is deliberately
//! conservative and returns `None` for any construct whose flat
//! semantics could diverge from the interpreted codec (bit-unaligned
//! fields, `DelimitedPairs` header sections, `f-count`, unresolvable
//! rules, ...). Callers treat an absent plan as "no fast path" and stay
//! on the interpreted pipeline, so a `None` here is never a behaviour
//! change — only a performance one. Whatever *is* flattened must match
//! the interpreted codec byte-for-byte; the equivalence suites in the
//! protocols crate hold the two paths to that.

use crate::error::{MdlError, Result};
use crate::size::SizeSpec;
use crate::spec::{MdlKind, MdlSpec};

/// One field value inside a [`FlatRecord`]: unset, a number, or a span
/// of the record's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Never written — compose falls back to the rule binding or the
    /// typed default, exactly like an untouched schema instance.
    Unset,
    /// An integer field value.
    Num(u64),
    /// A text field value: `arena[start..start + len]`.
    Text { start: u32, len: u32 },
}

/// A borrowed view of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatView<'a> {
    /// The slot was never written.
    Unset,
    /// An integer value.
    Num(u64),
    /// A text value (valid UTF-8 except for lossy-decoded wire input).
    Text(&'a [u8]),
}

/// A reusable parsed-message record: the message index, one slot per
/// plan field, and the text arena the slots point into. Reusing one
/// record across messages keeps the hot path allocation-free once the
/// slot vector and arena have grown to their steady-state capacity.
#[derive(Debug, Clone, Default)]
pub struct FlatRecord {
    message: usize,
    slots: Vec<Slot>,
    arena: Vec<u8>,
}

impl FlatRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        FlatRecord::default()
    }

    /// Clears the record and sizes it for message `message` with
    /// `slots` unset slots (the compose-side initialisation).
    pub fn reset(&mut self, message: usize, slots: usize) {
        self.message = message;
        self.slots.clear();
        self.slots.resize(slots, Slot::Unset);
        self.arena.clear();
    }

    /// The plan message index this record holds.
    pub fn message(&self) -> usize {
        self.message
    }

    /// The number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the record has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// A view of slot `index` (out-of-range reads as unset).
    pub fn view(&self, index: usize) -> FlatView<'_> {
        match self.slots.get(index) {
            None | Some(Slot::Unset) => FlatView::Unset,
            Some(Slot::Num(v)) => FlatView::Num(*v),
            Some(Slot::Text { start, len }) => {
                FlatView::Text(&self.arena[*start as usize..(*start + *len) as usize])
            }
        }
    }

    /// Writes a numeric value into slot `index`.
    pub fn set_num(&mut self, index: usize, value: u64) {
        self.slots[index] = Slot::Num(value);
    }

    /// Writes a text value into slot `index`, copying `bytes` into the
    /// arena.
    pub fn set_text(&mut self, index: usize, bytes: &[u8]) {
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(bytes);
        self.slots[index] = Slot::Text { start, len: bytes.len() as u32 };
    }

    fn clear(&mut self) {
        self.message = 0;
        self.slots.clear();
        self.arena.clear();
    }

    fn push(&mut self, slot: Slot) {
        self.slots.push(slot);
    }

    /// Appends a text slot, lossily re-encoding invalid UTF-8 exactly
    /// like the interpreted parsers do.
    fn push_text(&mut self, bytes: &[u8]) {
        let start = self.arena.len() as u32;
        match std::str::from_utf8(bytes) {
            Ok(_) => self.arena.extend_from_slice(bytes),
            Err(_) => self.arena.extend_from_slice(String::from_utf8_lossy(bytes).as_bytes()),
        }
        let len = self.arena.len() as u32 - start;
        self.slots.push(Slot::Text { start, len });
    }
}

/// The wire representation of a flat field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlatBase {
    /// `Integer`/`Unsigned`: big-endian fixed width (binary) or decimal
    /// digits (text).
    Int,
    /// `String`: raw bytes.
    Str,
    /// `FQDN`: DNS label sequence on the wire, dotted text in the slot.
    Fqdn,
}

/// How a flat field's extent is found.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FlatSize {
    /// Fixed width in whole bytes (binary).
    Bytes(u32),
    /// Length in bytes read from an earlier slot of the same message.
    FieldRef(usize),
    /// Self-delimiting (FQDN label sequence).
    SelfDelim,
    /// Everything to the end of the input.
    Remaining,
    /// Up to (and consuming) a delimiter byte sequence (text).
    Delim(Vec<u8>),
}

/// A compose-time field function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlatFunc {
    /// `f-length(target)`: the byte length of the target field's wire
    /// image (binary) or text image (text).
    Length {
        /// Slot index of the measured field.
        target: usize,
    },
    /// `f-total-length()`: the byte length of the whole message.
    TotalLength,
}

/// A typed literal: a rule binding or rule condition value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FlatVal {
    Num(u64),
    Text(String),
}

/// One compiled field.
#[derive(Debug, Clone)]
struct FlatField {
    label: String,
    base: FlatBase,
    size: FlatSize,
    func: Option<FlatFunc>,
    mandatory: bool,
    /// The rule-binding literal for this field, mirroring the schema
    /// default the interpreted pipeline pre-binds.
    binding: Option<FlatVal>,
}

/// One compiled message: header fields followed by body fields, plus
/// the header-slot conditions that select it during parsing.
#[derive(Debug, Clone)]
struct FlatMessage {
    name: String,
    fields: Vec<FlatField>,
    /// `(header slot, literal)` conjunction from the message rule.
    conditions: Vec<(usize, FlatVal)>,
    has_total: bool,
}

/// A compiled flat plan for one protocol. See the module docs.
#[derive(Debug, Clone)]
pub struct FlatPlan {
    protocol: String,
    kind: MdlKind,
    header_len: usize,
    messages: Vec<FlatMessage>,
}

/// The effective value of a field at compose time.
#[derive(Debug, Clone, Copy)]
enum EffVal<'a> {
    Num(u64),
    Text(&'a [u8]),
}

fn decimal_digits(mut v: u64) -> u64 {
    let mut digits = 1;
    while v >= 10 {
        digits += 1;
        v /= 10;
    }
    digits
}

fn push_decimal(out: &mut Vec<u8>, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// Mirrors `Value::as_u64` for text: trimmed decimal parse.
fn parse_decimal(bytes: &[u8]) -> Option<u64> {
    std::str::from_utf8(bytes).ok()?.trim().parse::<u64>().ok()
}

fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from > haystack.len() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|i| i + from)
}

fn parse_err(reason: String, pos: usize) -> MdlError {
    MdlError::Parse { reason, offset_bits: pos as u64 * 8 }
}

impl FlatPlan {
    /// Compiles a flat plan from `spec`, or `None` when any construct
    /// falls outside the supported (provably equivalent) subset.
    pub fn compile(spec: &MdlSpec) -> Option<FlatPlan> {
        let kind = spec.kind();
        let header_len = spec.header().len();
        let mut messages = Vec::with_capacity(spec.messages().len());
        for message in spec.messages() {
            let specs: Vec<_> = spec.header().iter().chain(message.fields.iter()).collect();
            let mut fields = Vec::with_capacity(specs.len());
            for field in &specs {
                let base = match spec.base_type(&field.label) {
                    "Integer" | "Unsigned" => FlatBase::Int,
                    "String" => FlatBase::Str,
                    "FQDN" => FlatBase::Fqdn,
                    _ => return None,
                };
                let size = match (&field.size, kind, base) {
                    (SizeSpec::Bits(bits), MdlKind::Binary, FlatBase::Int)
                        if *bits > 0 && *bits <= 64 && bits % 8 == 0 =>
                    {
                        FlatSize::Bytes(bits / 8)
                    }
                    (SizeSpec::Bits(bits), MdlKind::Binary, FlatBase::Str) if bits % 8 == 0 => {
                        FlatSize::Bytes(bits / 8)
                    }
                    (SizeSpec::FieldRef(label), _, FlatBase::Int | FlatBase::Str) => {
                        let target = fields.iter().position(|f: &FlatField| f.label == *label)?;
                        FlatSize::FieldRef(target)
                    }
                    (SizeSpec::SelfDelimiting, MdlKind::Binary, FlatBase::Fqdn) => {
                        FlatSize::SelfDelim
                    }
                    (SizeSpec::Remaining, _, FlatBase::Str) => FlatSize::Remaining,
                    (SizeSpec::Delimiter(delim), MdlKind::Text, FlatBase::Int | FlatBase::Str)
                        if !delim.is_empty() =>
                    {
                        FlatSize::Delim(delim.clone())
                    }
                    _ => return None,
                };
                fields.push(FlatField {
                    label: field.label.to_string(),
                    base,
                    size,
                    func: None,
                    mandatory: field.mandatory,
                    binding: None,
                });
            }
            // Field functions from the type table.
            for i in 0..fields.len() {
                let Some(def) = spec.types().get(&fields[i].label) else { continue };
                let Some(function) = &def.function else { continue };
                fields[i].func = Some(match function.name.as_str() {
                    "f-length" => {
                        let target_label = function.args.first()?;
                        let target = fields.iter().position(|f| f.label == *target_label)?;
                        FlatFunc::Length { target }
                    }
                    "f-total-length" if kind == MdlKind::Binary => FlatFunc::TotalLength,
                    _ => return None,
                });
            }
            // A FieldRef field must be paired with the `f-length` field
            // that measures it, so the compose-time cross-check of the
            // interpreted composer holds by construction.
            for i in 0..fields.len() {
                if let FlatSize::FieldRef(target) = fields[i].size {
                    if fields[target].base != FlatBase::Int
                        || fields[target].func != Some(FlatFunc::Length { target: i })
                    {
                        return None;
                    }
                }
            }
            // Rule bindings double as parse-time selection conditions,
            // so every bound field must be a header field.
            let mut conditions = Vec::new();
            for (label, literal) in message.rule.bindings() {
                let index = fields.iter().position(|f| f.label == label)?;
                if index >= header_len {
                    return None;
                }
                let value = match fields[index].base {
                    FlatBase::Int => FlatVal::Num(literal.parse::<u64>().ok()?),
                    FlatBase::Str | FlatBase::Fqdn => {
                        // A numeric literal on a text field would match
                        // numerically in the interpreted rule engine but
                        // byte-wise here; keep those interpreted.
                        if literal.parse::<i128>().is_ok() {
                            return None;
                        }
                        FlatVal::Text(literal.to_owned())
                    }
                };
                fields[index].binding = Some(value.clone());
                conditions.push((index, value));
            }
            let has_total = fields.iter().any(|f| f.func == Some(FlatFunc::TotalLength));
            messages.push(FlatMessage {
                name: message.name.to_string(),
                fields,
                conditions,
                has_total,
            });
        }
        if messages.is_empty() {
            return None;
        }
        Some(FlatPlan { protocol: spec.protocol().to_owned(), kind, header_len, messages })
    }

    /// The protocol this plan serves.
    pub fn protocol(&self) -> &str {
        &self.protocol
    }

    /// The number of header slots (shared across messages).
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// The number of messages.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// The message name at `index`.
    pub fn message_name(&self, index: usize) -> &str {
        &self.messages[index].name
    }

    /// The index of message `name`.
    pub fn message_index(&self, name: &str) -> Option<usize> {
        self.messages.iter().position(|m| m.name == name)
    }

    /// The slot count of message `index`.
    pub fn slot_count(&self, index: usize) -> usize {
        self.messages[index].fields.len()
    }

    /// The slot of field `label` in message `message`.
    pub fn slot_index(&self, message: usize, label: &str) -> Option<usize> {
        self.messages[message].fields.iter().position(|f| f.label == label)
    }

    /// Parses one message from `bytes` into `record`, returning the
    /// selected message index. Behaviourally identical to the
    /// interpreted parser over the supported MDL subset (trailing bytes
    /// are tolerated the same way).
    ///
    /// # Errors
    ///
    /// Fails on truncated/malformed input or when no rule matches.
    pub fn parse(&self, bytes: &[u8], record: &mut FlatRecord) -> Result<usize> {
        record.clear();
        let mut pos = 0usize;
        let header = &self.messages[0].fields[..self.header_len];
        for field in header {
            self.parse_field(field, bytes, &mut pos, record)?;
        }
        let selected = self
            .messages
            .iter()
            .position(|m| {
                m.conditions.iter().all(|(slot, lit)| match (record.view(*slot), lit) {
                    (FlatView::Num(v), FlatVal::Num(l)) => v == *l,
                    (FlatView::Text(t), FlatVal::Text(l)) => t == l.as_bytes(),
                    _ => false,
                })
            })
            .ok_or_else(|| MdlError::NoRuleMatched { protocol: self.protocol.clone() })?;
        let message = &self.messages[selected];
        for field in &message.fields[self.header_len..] {
            self.parse_field(field, bytes, &mut pos, record)?;
        }
        record.message = selected;
        Ok(selected)
    }

    fn parse_field(
        &self,
        field: &FlatField,
        bytes: &[u8],
        pos: &mut usize,
        record: &mut FlatRecord,
    ) -> Result<()> {
        let take = |pos: &mut usize, n: usize| -> Result<std::ops::Range<usize>> {
            if *pos + n > bytes.len() {
                return Err(parse_err(format!("field {:?} needs {n} bytes", field.label), *pos));
            }
            let range = *pos..*pos + n;
            *pos += n;
            Ok(range)
        };
        match &field.size {
            FlatSize::Bytes(n) => {
                let range = take(pos, *n as usize)?;
                match field.base {
                    FlatBase::Int => {
                        let mut v = 0u64;
                        for b in &bytes[range] {
                            v = (v << 8) | u64::from(*b);
                        }
                        record.push(Slot::Num(v));
                    }
                    _ => record.push_text(&bytes[range]),
                }
            }
            FlatSize::FieldRef(slot) => {
                let n = match record.view(*slot) {
                    FlatView::Num(v) => v as usize,
                    _ => {
                        return Err(parse_err(
                            format!("length field for {:?} has not been parsed", field.label),
                            *pos,
                        ))
                    }
                };
                let range = take(pos, n)?;
                match field.base {
                    FlatBase::Int => {
                        let v = parse_decimal(&bytes[range.clone()]).ok_or_else(|| {
                            parse_err(
                                format!(
                                    "expected an integer, found {:?}",
                                    String::from_utf8_lossy(&bytes[range])
                                ),
                                *pos,
                            )
                        })?;
                        record.push(Slot::Num(v));
                    }
                    _ => record.push_text(&bytes[range]),
                }
            }
            FlatSize::Remaining => {
                let range = *pos..bytes.len();
                *pos = bytes.len();
                record.push_text(&bytes[range]);
            }
            FlatSize::SelfDelim => {
                // FQDN labels → dotted text in the arena.
                let start = record.arena.len() as u32;
                let mut first = true;
                loop {
                    let len_range = take(pos, 1)?;
                    let len = bytes[len_range.start] as usize;
                    if len == 0 {
                        break;
                    }
                    if len & 0xC0 != 0 {
                        return Err(parse_err(
                            "FQDN compression pointers are not supported".into(),
                            *pos,
                        ));
                    }
                    let range = take(pos, len)?;
                    if !first {
                        record.arena.push(b'.');
                    }
                    first = false;
                    match std::str::from_utf8(&bytes[range.clone()]) {
                        Ok(_) => record.arena.extend_from_slice(&bytes[range]),
                        Err(_) => record
                            .arena
                            .extend_from_slice(String::from_utf8_lossy(&bytes[range]).as_bytes()),
                    }
                }
                let len = record.arena.len() as u32 - start;
                record.push(Slot::Text { start, len });
            }
            FlatSize::Delim(delim) => {
                let end = find(bytes, delim, *pos).ok_or_else(|| {
                    parse_err(
                        format!("field {:?}: delimiter {delim:?} not found", field.label),
                        *pos,
                    )
                })?;
                let range = *pos..end;
                *pos = end + delim.len();
                match field.base {
                    FlatBase::Int => {
                        let v = parse_decimal(&bytes[range.clone()]).ok_or_else(|| {
                            parse_err(
                                format!(
                                    "expected an integer, found {:?}",
                                    String::from_utf8_lossy(&bytes[range])
                                ),
                                *pos,
                            )
                        })?;
                        record.push(Slot::Num(v));
                    }
                    _ => record.push_text(&bytes[range]),
                }
            }
        }
        Ok(())
    }

    /// The effective compose-time value of slot `index`: the slot if
    /// written, the rule-binding literal when the slot is unset (or, in
    /// binary MDLs, empty — mirroring the interpreted composer's
    /// missing-or-empty fill), the typed default otherwise.
    fn effective<'a>(
        &'a self,
        message: &'a FlatMessage,
        index: usize,
        record: &'a FlatRecord,
    ) -> EffVal<'a> {
        let field = &message.fields[index];
        let binding = |field: &'a FlatField| match &field.binding {
            Some(FlatVal::Num(v)) => Some(EffVal::Num(*v)),
            Some(FlatVal::Text(t)) => Some(EffVal::Text(t.as_bytes())),
            None => None,
        };
        let default = |field: &FlatField| match field.base {
            FlatBase::Int => EffVal::Num(0),
            FlatBase::Str | FlatBase::Fqdn => EffVal::Text(b""),
        };
        match record.view(index) {
            FlatView::Num(v) => {
                if self.kind == MdlKind::Binary && v == 0 {
                    if let Some(b) = binding(field) {
                        return b;
                    }
                }
                EffVal::Num(v)
            }
            FlatView::Text(t) => {
                if self.kind == MdlKind::Binary && t.is_empty() {
                    if let Some(b) = binding(field) {
                        return b;
                    }
                }
                EffVal::Text(t)
            }
            FlatView::Unset => binding(field).unwrap_or_else(|| default(field)),
        }
    }

    /// The first mandatory field of the record's message whose value is
    /// empty, mirroring the engine's ⊨ completeness check over schema
    /// instances (unset slots read as their schema default).
    pub fn unfilled_mandatory<'a>(&'a self, record: &FlatRecord) -> Option<&'a str> {
        let message = self.messages.get(record.message())?;
        for (index, field) in message.fields.iter().enumerate() {
            if !field.mandatory {
                continue;
            }
            let raw = match record.view(index) {
                FlatView::Num(v) => EffVal::Num(v),
                FlatView::Text(t) => EffVal::Text(t),
                FlatView::Unset => match &field.binding {
                    Some(FlatVal::Num(v)) => EffVal::Num(*v),
                    Some(FlatVal::Text(t)) => EffVal::Text(t.as_bytes()),
                    None => match field.base {
                        FlatBase::Int => EffVal::Num(0),
                        _ => EffVal::Text(b""),
                    },
                },
            };
            let empty = match raw {
                EffVal::Num(v) => v == 0,
                EffVal::Text(t) => t.is_empty(),
            };
            if empty {
                return Some(&field.label);
            }
        }
        None
    }

    /// The wire byte length of field `index` given current values
    /// (binary MDLs).
    fn wire_len(&self, message: &FlatMessage, index: usize, record: &FlatRecord) -> Result<u64> {
        let field = &message.fields[index];
        match &field.size {
            FlatSize::Bytes(n) => Ok(u64::from(*n)),
            FlatSize::FieldRef(_) | FlatSize::Remaining => {
                match self.effective(message, index, record) {
                    EffVal::Text(t) => Ok(t.len() as u64),
                    EffVal::Num(_) => Err(MdlError::Compose(format!(
                        "field {:?} expects text, found an integer",
                        field.label
                    ))),
                }
            }
            FlatSize::SelfDelim => match self.effective(message, index, record) {
                EffVal::Text(t) => {
                    if t.is_empty() {
                        Ok(1)
                    } else {
                        Ok(t.split(|b| *b == b'.').map(|l| l.len() as u64 + 1).sum::<u64>() + 1)
                    }
                }
                EffVal::Num(_) => Err(MdlError::Compose(format!(
                    "field {:?} expects text, found an integer",
                    field.label
                ))),
            },
            FlatSize::Delim(_) => {
                Err(MdlError::Compose("delimiter sizes are only valid in text MDLs".into()))
            }
        }
    }

    /// The text-image byte length of field `index` (text MDLs).
    fn text_len(&self, message: &FlatMessage, index: usize, record: &FlatRecord) -> u64 {
        match self.effective(message, index, record) {
            EffVal::Num(v) => decimal_digits(v),
            EffVal::Text(t) => t.len() as u64,
        }
    }

    /// Composes `record` into `out` (cleared first). Byte-identical to
    /// the interpreted composer over schema-instance inputs.
    ///
    /// # Errors
    ///
    /// Fails on unknown message indices and unmarshal-able values.
    pub fn compose(&self, record: &FlatRecord, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        let message = self
            .messages
            .get(record.message())
            .ok_or_else(|| MdlError::UnknownMessage(format!("#{}", record.message())))?;
        match self.kind {
            MdlKind::Binary => self.compose_binary(message, record, out),
            MdlKind::Text => self.compose_text(message, record, out),
        }
    }

    fn compose_binary(
        &self,
        message: &FlatMessage,
        record: &FlatRecord,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let total = if message.has_total {
            let mut total = 0u64;
            for index in 0..message.fields.len() {
                total += self.wire_len(message, index, record)?;
            }
            total
        } else {
            0
        };
        for (index, field) in message.fields.iter().enumerate() {
            let value = match field.func {
                Some(FlatFunc::Length { target }) => {
                    EffVal::Num(self.wire_len(message, target, record)?)
                }
                Some(FlatFunc::TotalLength) => EffVal::Num(total),
                None => self.effective(message, index, record),
            };
            match &field.size {
                FlatSize::Bytes(n) => {
                    let v = match value {
                        EffVal::Num(v) => v,
                        EffVal::Text(t) => parse_decimal(t).ok_or_else(|| {
                            MdlError::Compose(format!("field {:?} expects an integer", field.label))
                        })?,
                    };
                    if field.base != FlatBase::Int {
                        // Fixed-width strings: exact length required.
                        let t = match value {
                            EffVal::Text(t) => t,
                            EffVal::Num(_) => {
                                return Err(MdlError::Compose(format!(
                                    "field {:?} expects text, found an integer",
                                    field.label
                                )))
                            }
                        };
                        if t.len() != *n as usize {
                            return Err(MdlError::Compose(format!(
                                "String value is {} bytes but the field is sized {n}",
                                t.len()
                            )));
                        }
                        out.extend_from_slice(t);
                        continue;
                    }
                    let bits = u64::from(*n) * 8;
                    if bits < 64 && v >= (1u64 << bits) {
                        return Err(MdlError::Compose(format!(
                            "value {v} does not fit in {bits} bits"
                        )));
                    }
                    for k in (0..*n).rev() {
                        out.push((v >> (8 * k)) as u8);
                    }
                }
                FlatSize::FieldRef(_) | FlatSize::Remaining => match value {
                    EffVal::Text(t) => out.extend_from_slice(t),
                    EffVal::Num(_) => {
                        return Err(MdlError::Compose(format!(
                            "field {:?} expects text, found an integer",
                            field.label
                        )))
                    }
                },
                FlatSize::SelfDelim => {
                    let t = match value {
                        EffVal::Text(t) => t,
                        EffVal::Num(_) => {
                            return Err(MdlError::Compose(format!(
                                "field {:?} expects text, found an integer",
                                field.label
                            )))
                        }
                    };
                    if !t.is_empty() {
                        for label in t.split(|b| *b == b'.') {
                            if label.is_empty() || label.len() > 63 {
                                return Err(MdlError::Compose(format!(
                                    "FQDN label {:?} must be 1..=63 bytes",
                                    String::from_utf8_lossy(label)
                                )));
                            }
                            out.push(label.len() as u8);
                            out.extend_from_slice(label);
                        }
                    }
                    out.push(0);
                }
                FlatSize::Delim(_) => {
                    return Err(MdlError::Compose(
                        "delimiter sizes are only valid in text MDLs".into(),
                    ))
                }
            }
        }
        Ok(())
    }

    fn compose_text(
        &self,
        message: &FlatMessage,
        record: &FlatRecord,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        for (index, field) in message.fields.iter().enumerate() {
            match field.func {
                Some(FlatFunc::Length { target }) => {
                    push_decimal(out, self.text_len(message, target, record));
                }
                _ => match self.effective(message, index, record) {
                    EffVal::Num(v) => push_decimal(out, v),
                    EffVal::Text(t) => out.extend_from_slice(t),
                },
            }
            if let FlatSize::Delim(delim) = &field.size {
                out.extend_from_slice(delim);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{BinaryComposer, BinaryParser};
    use crate::marshal::MarshallerRegistry;
    use crate::rule::Rule;
    use crate::spec::{FieldSpec, MessageSpec};
    use crate::text::{TextComposer, TextParser};
    use crate::types::{FieldFunction, TypeDef};
    use starlink_message::Value;
    use std::sync::Arc;

    /// A miniature SLP-like binary spec (fixed widths, rule literals,
    /// field references, both field functions).
    fn binary_spec() -> Arc<MdlSpec> {
        Arc::new(
            MdlSpec::new("MiniSLP", MdlKind::Binary)
                .type_entry("SRVType", TypeDef::plain("String"))
                .type_entry(
                    "SRVTypeLength",
                    TypeDef::with_function(
                        "Integer",
                        FieldFunction::new("f-length", vec!["SRVType".into()]),
                    ),
                )
                .type_entry(
                    "MessageLength",
                    TypeDef::with_function("Integer", FieldFunction::new("f-total-length", vec![])),
                )
                .type_entry("Name", TypeDef::plain("FQDN"))
                .header_field(FieldSpec::new("Version", SizeSpec::Bits(8)))
                .header_field(FieldSpec::new("FunctionID", SizeSpec::Bits(8)))
                .header_field(FieldSpec::new("MessageLength", SizeSpec::Bits(24)))
                .header_field(FieldSpec::new("XID", SizeSpec::Bits(16)))
                .message(
                    MessageSpec::new("SrvRequest", Rule::parse("FunctionID=1").unwrap())
                        .field(FieldSpec::new("SRVTypeLength", SizeSpec::Bits(16)))
                        .field(
                            FieldSpec::new("SRVType", SizeSpec::FieldRef("SRVTypeLength".into()))
                                .required(),
                        ),
                )
                .message(
                    MessageSpec::new("NameQuery", Rule::parse("FunctionID=3").unwrap())
                        .field(FieldSpec::new("Name", SizeSpec::SelfDelimiting).required()),
                ),
        )
    }

    /// A miniature WSD-like text spec: delimiter boundaries plus a
    /// length-framed trailing blob.
    fn text_spec() -> Arc<MdlSpec> {
        Arc::new(
            MdlSpec::new("MiniWSD", MdlKind::Text)
                .type_entry("Action", TypeDef::plain("String"))
                .type_entry("Body", TypeDef::plain("String"))
                .type_entry(
                    "BodyLength",
                    TypeDef::with_function(
                        "Integer",
                        FieldFunction::new("f-length", vec!["Body".into()]),
                    ),
                )
                .header_field(FieldSpec::new("Action", SizeSpec::Delimiter(b"|".to_vec())))
                .message(
                    MessageSpec::new("Ping", Rule::parse("Action=ping").unwrap())
                        .field(FieldSpec::new("BodyLength", SizeSpec::Delimiter(b">".to_vec())))
                        .field(
                            FieldSpec::new("Body", SizeSpec::FieldRef("BodyLength".into()))
                                .required(),
                        ),
                ),
        )
    }

    fn registry() -> Arc<MarshallerRegistry> {
        Arc::new(MarshallerRegistry::with_builtins())
    }

    #[test]
    fn binary_flat_matches_interpreted_roundtrip() {
        let spec = binary_spec();
        let plan = FlatPlan::compile(&spec).expect("binary spec is flattenable");
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec.clone(), registry()).unwrap();

        let mut msg = spec.schema("SrvRequest").unwrap().instantiate();
        msg.set(&"Version".into(), Value::Unsigned(2)).unwrap();
        msg.set(&"XID".into(), Value::Unsigned(0xBEEF)).unwrap();
        msg.set(&"SRVType".into(), Value::Str("service:printer".into())).unwrap();
        let wire = composer.compose(&msg).unwrap();

        let mut record = FlatRecord::new();
        let selected = plan.parse(&wire, &mut record).unwrap();
        assert_eq!(plan.message_name(selected), "SrvRequest");
        let xid = plan.slot_index(selected, "XID").unwrap();
        assert_eq!(record.view(xid), FlatView::Num(0xBEEF));
        let srv = plan.slot_index(selected, "SRVType").unwrap();
        assert_eq!(record.view(srv), FlatView::Text(b"service:printer"));

        // Compose from the parsed record: byte-identical, and the
        // interpreted parser accepts the output.
        let mut out = Vec::new();
        plan.compose(&record, &mut out).unwrap();
        assert_eq!(out, wire);
        assert_eq!(parser.parse(&out).unwrap().name(), "SrvRequest");
    }

    #[test]
    fn binary_flat_compose_from_sparse_slots_matches_blank_instance() {
        // Unset slots must behave exactly like an untouched schema
        // instance: rule bindings and typed defaults fill in, and the
        // length functions recompute.
        let spec = binary_spec();
        let plan = FlatPlan::compile(&spec).unwrap();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();

        let idx = plan.message_index("SrvRequest").unwrap();
        let mut record = FlatRecord::new();
        record.reset(idx, plan.slot_count(idx));
        record.set_num(plan.slot_index(idx, "XID").unwrap(), 7);
        record.set_text(plan.slot_index(idx, "SRVType").unwrap(), b"service:x");
        let mut out = Vec::new();
        plan.compose(&record, &mut out).unwrap();

        let mut msg = spec.schema("SrvRequest").unwrap().instantiate();
        msg.set(&"XID".into(), Value::Unsigned(7)).unwrap();
        msg.set(&"SRVType".into(), Value::Str("service:x".into())).unwrap();
        assert_eq!(out, composer.compose(&msg).unwrap());
    }

    #[test]
    fn binary_flat_fqdn_roundtrips() {
        let spec = binary_spec();
        let plan = FlatPlan::compile(&spec).unwrap();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();

        let mut msg = spec.schema("NameQuery").unwrap().instantiate();
        msg.set(&"FunctionID".into(), Value::Unsigned(3)).unwrap();
        msg.set(&"Name".into(), Value::Str("_printer._tcp.local".into())).unwrap();
        let wire = composer.compose(&msg).unwrap();

        let mut record = FlatRecord::new();
        let selected = plan.parse(&wire, &mut record).unwrap();
        assert_eq!(plan.message_name(selected), "NameQuery");
        let name = plan.slot_index(selected, "Name").unwrap();
        assert_eq!(record.view(name), FlatView::Text(b"_printer._tcp.local"));
        let mut out = Vec::new();
        plan.compose(&record, &mut out).unwrap();
        assert_eq!(out, wire);
    }

    #[test]
    fn text_flat_matches_interpreted() {
        let spec = text_spec();
        let plan = FlatPlan::compile(&spec).expect("text spec is flattenable");
        let composer = TextComposer::new(spec.clone()).unwrap();
        let parser = TextParser::new(spec.clone()).unwrap();

        let mut msg = spec.schema("Ping").unwrap().instantiate();
        msg.set(&"Body".into(), Value::Str("<data/>".into())).unwrap();
        let wire = composer.compose(&msg).unwrap();
        assert_eq!(parser.parse(&wire).unwrap().name(), "Ping");

        let mut record = FlatRecord::new();
        let selected = plan.parse(&wire, &mut record).unwrap();
        assert_eq!(plan.message_name(selected), "Ping");
        let body = plan.slot_index(selected, "Body").unwrap();
        assert_eq!(record.view(body), FlatView::Text(b"<data/>"));
        let len = plan.slot_index(selected, "BodyLength").unwrap();
        assert_eq!(record.view(len), FlatView::Num(7));

        let mut out = Vec::new();
        plan.compose(&record, &mut out).unwrap();
        assert_eq!(out, wire);

        // Sparse compose: only the framed body set; the binding fills
        // Action and the length recomputes.
        let mut sparse = FlatRecord::new();
        sparse.reset(selected, plan.slot_count(selected));
        sparse.set_text(body, b"<data/>");
        plan.compose(&sparse, &mut out).unwrap();
        assert_eq!(out, wire);
    }

    #[test]
    fn unsupported_constructs_stay_interpreted() {
        // DelimitedPairs (the SSDP header section) has no flat
        // equivalent.
        let spec = MdlSpec::new("MiniSSDP", MdlKind::Text)
            .header_field(FieldSpec::new("Method", SizeSpec::Delimiter(vec![32])))
            .header_field(FieldSpec::new(
                "Fields",
                SizeSpec::DelimitedPairs { line: vec![13, 10], split: vec![58] },
            ))
            .message(MessageSpec::new("M", Rule::parse("Method=M-SEARCH").unwrap()));
        assert!(FlatPlan::compile(&spec).is_none());

        // Bit-unaligned binary fields stay interpreted too.
        let spec = MdlSpec::new("Bits", MdlKind::Binary)
            .header_field(FieldSpec::new("Flag", SizeSpec::Bits(1)))
            .message(MessageSpec::new("M", Rule::Always));
        assert!(FlatPlan::compile(&spec).is_none());
    }

    #[test]
    fn unfilled_mandatory_mirrors_schema_check() {
        let spec = binary_spec();
        let plan = FlatPlan::compile(&spec).unwrap();
        let idx = plan.message_index("SrvRequest").unwrap();
        let mut record = FlatRecord::new();
        record.reset(idx, plan.slot_count(idx));
        assert_eq!(plan.unfilled_mandatory(&record), Some("SRVType"));
        record.set_text(plan.slot_index(idx, "SRVType").unwrap(), b"service:x");
        assert_eq!(plan.unfilled_mandatory(&record), None);
    }
}
