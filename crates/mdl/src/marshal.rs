//! Pluggable marshallers: the runtime-extensible type system of §IV-A
//! ("Starlink employs pluggable marshallers and unmarshallers for each of
//! the types ... to add the FQDN type to this language, we simply plug-in
//! marshallers that map FQDN byte arrays to a Java String").

use crate::bitio::{BitReader, BitWriter};
use crate::error::{MdlError, Result};
use crate::size::ResolvedSize;
use starlink_message::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Converts between wire bits and [`Value`]s for one MDL type.
///
/// Implementations must be stateless: the same marshaller instance is
/// shared by every parser/composer of every protocol using the type.
pub trait Marshaller: Send + Sync {
    /// The MDL type name this marshaller serves (e.g. `Integer`).
    fn type_name(&self) -> &str;

    /// Reads a value of `size` from the reader.
    ///
    /// # Errors
    ///
    /// Implementations fail on truncated input or sizes they do not
    /// support.
    fn unmarshal(&self, reader: &mut BitReader<'_>, size: ResolvedSize) -> Result<Value>;

    /// Writes `value` with `size` to the writer.
    ///
    /// # Errors
    ///
    /// Implementations fail on type mismatches or unrepresentable sizes.
    fn marshal(&self, writer: &mut BitWriter, value: &Value, size: ResolvedSize) -> Result<()>;

    /// The number of bits `value` occupies on the wire at `size` — used to
    /// evaluate `f-length`/`f-total-length` functions before composing.
    ///
    /// # Errors
    ///
    /// Fails when the value cannot be sized (e.g. wrong type).
    fn wire_bits(&self, value: &Value, size: ResolvedSize) -> Result<u64>;
}

impl fmt::Debug for dyn Marshaller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Marshaller({})", self.type_name())
    }
}

fn fixed_bits(size: ResolvedSize, type_name: &str) -> Result<u64> {
    size.bits().ok_or_else(|| {
        MdlError::Compose(format!("type {type_name} requires a fixed size, got {size:?}"))
    })
}

/// Unsigned big-endian integers of up to 64 bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntegerMarshaller;

impl Marshaller for IntegerMarshaller {
    fn type_name(&self) -> &str {
        "Integer"
    }

    fn unmarshal(&self, reader: &mut BitReader<'_>, size: ResolvedSize) -> Result<Value> {
        let bits = fixed_bits(size, "Integer")?;
        if bits > 64 {
            return Err(MdlError::Parse {
                reason: format!("Integer of {bits} bits exceeds 64"),
                offset_bits: reader.position_bits(),
            });
        }
        Ok(Value::Unsigned(reader.read_bits(bits as u32)?))
    }

    fn marshal(&self, writer: &mut BitWriter, value: &Value, size: ResolvedSize) -> Result<()> {
        let bits = fixed_bits(size, "Integer")?;
        writer.write_bits(value.as_u64()?, bits as u32)
    }

    fn wire_bits(&self, _value: &Value, size: ResolvedSize) -> Result<u64> {
        fixed_bits(size, "Integer")
    }
}

/// Signed big-endian two's-complement integers of up to 64 bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct SignedMarshaller;

impl Marshaller for SignedMarshaller {
    fn type_name(&self) -> &str {
        "Signed"
    }

    fn unmarshal(&self, reader: &mut BitReader<'_>, size: ResolvedSize) -> Result<Value> {
        let bits = fixed_bits(size, "Signed")?;
        let raw = reader.read_bits(bits as u32)?;
        let value = if bits == 64 {
            raw as i64
        } else {
            // Sign-extend from `bits` to 64.
            let sign = 1u64 << (bits - 1);
            if raw & sign != 0 {
                (raw | !((1u64 << bits) - 1)) as i64
            } else {
                raw as i64
            }
        };
        Ok(Value::Signed(value))
    }

    fn marshal(&self, writer: &mut BitWriter, value: &Value, size: ResolvedSize) -> Result<()> {
        let bits = fixed_bits(size, "Signed")?;
        let v = value.as_i64()?;
        let truncated = if bits == 64 { v as u64 } else { (v as u64) & ((1u64 << bits) - 1) };
        writer.write_bits(truncated, bits as u32)
    }

    fn wire_bits(&self, _value: &Value, size: ResolvedSize) -> Result<u64> {
        fixed_bits(size, "Signed")
    }
}

/// UTF-8 strings, sized in bits/bytes or consuming the remainder.
#[derive(Debug, Clone, Copy, Default)]
pub struct StringMarshaller;

impl StringMarshaller {
    fn byte_count(size: ResolvedSize, at: u64) -> Result<Option<usize>> {
        match size {
            ResolvedSize::Bits(bits) => {
                if bits % 8 != 0 {
                    return Err(MdlError::Parse {
                        reason: format!("String size {bits} bits is not byte-aligned"),
                        offset_bits: at,
                    });
                }
                Ok(Some((bits / 8) as usize))
            }
            ResolvedSize::Bytes(bytes) => Ok(Some(bytes as usize)),
            ResolvedSize::Remaining => Ok(None),
            ResolvedSize::SelfDelimiting => Err(MdlError::Parse {
                reason: "String cannot self-delimit".into(),
                offset_bits: at,
            }),
        }
    }
}

impl Marshaller for StringMarshaller {
    fn type_name(&self) -> &str {
        "String"
    }

    fn unmarshal(&self, reader: &mut BitReader<'_>, size: ResolvedSize) -> Result<Value> {
        let bytes = match Self::byte_count(size, reader.position_bits())? {
            Some(n) => reader.read_bytes(n)?,
            None => reader.read_remaining()?,
        };
        Ok(Value::Str(String::from_utf8_lossy(&bytes).into_owned()))
    }

    fn marshal(&self, writer: &mut BitWriter, value: &Value, size: ResolvedSize) -> Result<()> {
        let bytes = value.as_bytes()?;
        if let Some(n) = Self::byte_count(size, writer.position_bits())? {
            if n != bytes.len() {
                return Err(MdlError::Compose(format!(
                    "String value is {} bytes but the field is sized {n}",
                    bytes.len()
                )));
            }
        }
        writer.write_bytes(bytes);
        Ok(())
    }

    fn wire_bits(&self, value: &Value, size: ResolvedSize) -> Result<u64> {
        match size.bits() {
            Some(bits) => Ok(bits),
            None => Ok(value.as_bytes()?.len() as u64 * 8),
        }
    }
}

/// Opaque byte fields.
#[derive(Debug, Clone, Copy, Default)]
pub struct BytesMarshaller;

impl Marshaller for BytesMarshaller {
    fn type_name(&self) -> &str {
        "Bytes"
    }

    fn unmarshal(&self, reader: &mut BitReader<'_>, size: ResolvedSize) -> Result<Value> {
        let bytes = match size {
            ResolvedSize::Bits(bits) if bits % 8 == 0 => reader.read_bytes((bits / 8) as usize)?,
            ResolvedSize::Bits(bits) => {
                return Err(MdlError::Parse {
                    reason: format!("Bytes size {bits} bits is not byte-aligned"),
                    offset_bits: reader.position_bits(),
                })
            }
            ResolvedSize::Bytes(n) => reader.read_bytes(n as usize)?,
            ResolvedSize::Remaining => reader.read_remaining()?,
            ResolvedSize::SelfDelimiting => {
                return Err(MdlError::Parse {
                    reason: "Bytes cannot self-delimit".into(),
                    offset_bits: reader.position_bits(),
                })
            }
        };
        Ok(Value::Bytes(bytes))
    }

    fn marshal(&self, writer: &mut BitWriter, value: &Value, size: ResolvedSize) -> Result<()> {
        let bytes = value.as_bytes()?;
        if let Some(bits) = size.bits() {
            if bits != bytes.len() as u64 * 8 {
                return Err(MdlError::Compose(format!(
                    "Bytes value is {} bytes but the field is sized {} bits",
                    bytes.len(),
                    bits
                )));
            }
        }
        writer.write_bytes(bytes);
        Ok(())
    }

    fn wire_bits(&self, value: &Value, size: ResolvedSize) -> Result<u64> {
        match size.bits() {
            Some(bits) => Ok(bits),
            None => Ok(value.as_bytes()?.len() as u64 * 8),
        }
    }
}

/// Single-bit (or wider) boolean flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoolMarshaller;

impl Marshaller for BoolMarshaller {
    fn type_name(&self) -> &str {
        "Bool"
    }

    fn unmarshal(&self, reader: &mut BitReader<'_>, size: ResolvedSize) -> Result<Value> {
        let bits = fixed_bits(size, "Bool")?;
        Ok(Value::Bool(reader.read_bits(bits as u32)? != 0))
    }

    fn marshal(&self, writer: &mut BitWriter, value: &Value, size: ResolvedSize) -> Result<()> {
        let bits = fixed_bits(size, "Bool")?;
        writer.write_bits(u64::from(value.as_bool()?), bits as u32)
    }

    fn wire_bits(&self, _value: &Value, size: ResolvedSize) -> Result<u64> {
        fixed_bits(size, "Bool")
    }
}

/// DNS domain-name encoding (RFC 1035 §3.1): length-prefixed labels with a
/// zero terminator. This is the plug-in type the paper uses to motivate
/// marshaller extensibility; it self-delimits, so the declared size is
/// ignored. Compression pointers are rejected (the mDNS substrate never
/// emits them).
#[derive(Debug, Clone, Copy, Default)]
pub struct FqdnMarshaller;

impl Marshaller for FqdnMarshaller {
    fn type_name(&self) -> &str {
        "FQDN"
    }

    fn unmarshal(&self, reader: &mut BitReader<'_>, _size: ResolvedSize) -> Result<Value> {
        let mut labels: Vec<String> = Vec::new();
        loop {
            let len = reader.read_u8()?;
            if len == 0 {
                break;
            }
            if len & 0xC0 != 0 {
                return Err(MdlError::Parse {
                    reason: "FQDN compression pointers are not supported".into(),
                    offset_bits: reader.position_bits(),
                });
            }
            let bytes = reader.read_bytes(len as usize)?;
            labels.push(String::from_utf8_lossy(&bytes).into_owned());
        }
        Ok(Value::Str(labels.join(".")))
    }

    fn marshal(&self, writer: &mut BitWriter, value: &Value, _size: ResolvedSize) -> Result<()> {
        let name = value.as_str()?;
        if !name.is_empty() {
            for label in name.split('.') {
                if label.is_empty() || label.len() > 63 {
                    return Err(MdlError::Compose(format!(
                        "FQDN label {label:?} must be 1..=63 bytes"
                    )));
                }
                writer.write_u8(label.len() as u8);
                writer.write_bytes(label.as_bytes());
            }
        }
        writer.write_u8(0);
        Ok(())
    }

    fn wire_bits(&self, value: &Value, _size: ResolvedSize) -> Result<u64> {
        let name = value.as_str()?;
        let label_bytes: u64 =
            if name.is_empty() { 0 } else { name.split('.').map(|l| l.len() as u64 + 1).sum() };
        Ok((label_bytes + 1) * 8)
    }
}

/// IPv4 addresses: 32 wire bits, dotted-quad string value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ipv4Marshaller;

impl Marshaller for Ipv4Marshaller {
    fn type_name(&self) -> &str {
        "IPv4"
    }

    fn unmarshal(&self, reader: &mut BitReader<'_>, _size: ResolvedSize) -> Result<Value> {
        let octets = reader.read_bytes(4)?;
        Ok(Value::Str(format!("{}.{}.{}.{}", octets[0], octets[1], octets[2], octets[3])))
    }

    fn marshal(&self, writer: &mut BitWriter, value: &Value, _size: ResolvedSize) -> Result<()> {
        let text = value.as_str()?;
        let mut octets = [0u8; 4];
        let mut parts = text.split('.');
        for slot in &mut octets {
            *slot = parts
                .next()
                .and_then(|p| p.parse::<u8>().ok())
                .ok_or_else(|| MdlError::Compose(format!("invalid IPv4 literal {text:?}")))?;
        }
        if parts.next().is_some() {
            return Err(MdlError::Compose(format!("invalid IPv4 literal {text:?}")));
        }
        writer.write_bytes(&octets);
        Ok(())
    }

    fn wire_bits(&self, _value: &Value, _size: ResolvedSize) -> Result<u64> {
        Ok(32)
    }
}

/// The registry of marshallers keyed by MDL type name.
///
/// ```
/// use starlink_mdl::MarshallerRegistry;
///
/// let registry = MarshallerRegistry::with_builtins();
/// assert!(registry.get("Integer").is_ok());
/// assert!(registry.get("FQDN").is_ok()); // the paper's plug-in example
/// assert!(registry.get("Quantum").is_err());
/// ```
#[derive(Debug, Clone)]
pub struct MarshallerRegistry {
    entries: BTreeMap<String, Arc<dyn Marshaller>>,
}

impl MarshallerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MarshallerRegistry { entries: BTreeMap::new() }
    }

    /// Creates a registry pre-loaded with the built-in types: `Integer`,
    /// `Signed`, `String`, `Bytes`, `Bool`, `FQDN`, `IPv4`.
    pub fn with_builtins() -> Self {
        let mut registry = MarshallerRegistry::new();
        registry.register(Arc::new(IntegerMarshaller));
        registry.register(Arc::new(SignedMarshaller));
        registry.register(Arc::new(StringMarshaller));
        registry.register(Arc::new(BytesMarshaller));
        registry.register(Arc::new(BoolMarshaller));
        registry.register(Arc::new(FqdnMarshaller));
        registry.register(Arc::new(Ipv4Marshaller));
        registry
    }

    /// Registers (or replaces) a marshaller under its own type name.
    pub fn register(&mut self, marshaller: Arc<dyn Marshaller>) -> &mut Self {
        self.entries.insert(marshaller.type_name().to_owned(), marshaller);
        self
    }

    /// Looks up a marshaller.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::UnknownType`] when no marshaller is registered.
    pub fn get(&self, type_name: &str) -> Result<&Arc<dyn Marshaller>> {
        self.entries.get(type_name).ok_or_else(|| MdlError::UnknownType(type_name.to_owned()))
    }

    /// Registered type names, sorted.
    pub fn type_names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }
}

impl Default for MarshallerRegistry {
    fn default() -> Self {
        MarshallerRegistry::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &dyn Marshaller, value: Value, size: ResolvedSize) -> Value {
        let mut w = BitWriter::new();
        m.marshal(&mut w, &value, size).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        m.unmarshal(&mut r, size).unwrap()
    }

    #[test]
    fn integer_roundtrip_various_widths() {
        for (value, bits) in [(0u64, 1), (1, 1), (0xFFFF, 16), (0xABCDEF, 24), (u64::MAX, 64)] {
            let got =
                roundtrip(&IntegerMarshaller, Value::Unsigned(value), ResolvedSize::Bits(bits));
            assert_eq!(got, Value::Unsigned(value), "width {bits}");
        }
    }

    #[test]
    fn signed_roundtrip_with_sign_extension() {
        for value in [-1i64, -32768, 0, 42, 32767] {
            let got = roundtrip(&SignedMarshaller, Value::Signed(value), ResolvedSize::Bits(16));
            assert_eq!(got, Value::Signed(value));
        }
    }

    #[test]
    fn string_roundtrip_by_bytes() {
        let got = roundtrip(
            &StringMarshaller,
            Value::Str("service:printer".into()),
            ResolvedSize::Bytes(15),
        );
        assert_eq!(got, Value::Str("service:printer".into()));
    }

    #[test]
    fn string_size_mismatch_rejected() {
        let mut w = BitWriter::new();
        let err = StringMarshaller
            .marshal(&mut w, &Value::Str("abc".into()), ResolvedSize::Bytes(5))
            .unwrap_err();
        assert!(err.to_string().contains("sized 5"));
    }

    #[test]
    fn string_rejects_unaligned_bits() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(StringMarshaller.unmarshal(&mut r, ResolvedSize::Bits(7)).is_err());
    }

    #[test]
    fn bytes_remaining_consumes_all() {
        let data = [1u8, 2, 3];
        let mut r = BitReader::new(&data);
        let got = BytesMarshaller.unmarshal(&mut r, ResolvedSize::Remaining).unwrap();
        assert_eq!(got, Value::Bytes(vec![1, 2, 3]));
    }

    #[test]
    fn bool_single_bit() {
        let got = roundtrip(&BoolMarshaller, Value::Bool(true), ResolvedSize::Bits(1));
        assert_eq!(got, Value::Bool(true));
    }

    #[test]
    fn fqdn_roundtrip() {
        let name = Value::Str("_printer._tcp.local".into());
        let got = roundtrip(&FqdnMarshaller, name.clone(), ResolvedSize::SelfDelimiting);
        assert_eq!(got, name);
    }

    #[test]
    fn fqdn_wire_encoding_matches_rfc1035() {
        let mut w = BitWriter::new();
        FqdnMarshaller
            .marshal(&mut w, &Value::Str("ab.c".into()), ResolvedSize::SelfDelimiting)
            .unwrap();
        assert_eq!(w.into_bytes(), vec![2, b'a', b'b', 1, b'c', 0]);
    }

    #[test]
    fn fqdn_root_is_single_zero() {
        let mut w = BitWriter::new();
        FqdnMarshaller
            .marshal(&mut w, &Value::Str(String::new()), ResolvedSize::SelfDelimiting)
            .unwrap();
        assert_eq!(w.into_bytes(), vec![0]);
    }

    #[test]
    fn fqdn_rejects_compression_pointer() {
        let mut r = BitReader::new(&[0xC0, 0x0C]);
        assert!(FqdnMarshaller.unmarshal(&mut r, ResolvedSize::SelfDelimiting).is_err());
    }

    #[test]
    fn fqdn_wire_bits_accounts_for_terminator() {
        let bits = FqdnMarshaller
            .wire_bits(&Value::Str("ab.c".into()), ResolvedSize::SelfDelimiting)
            .unwrap();
        assert_eq!(bits, 6 * 8);
    }

    #[test]
    fn ipv4_roundtrip() {
        let got = roundtrip(
            &Ipv4Marshaller,
            Value::Str("239.255.255.253".into()),
            ResolvedSize::Bits(32),
        );
        assert_eq!(got, Value::Str("239.255.255.253".into()));
    }

    #[test]
    fn ipv4_rejects_bad_literals() {
        let mut w = BitWriter::new();
        for bad in ["1.2.3", "1.2.3.4.5", "a.b.c.d", "300.1.1.1"] {
            assert!(
                Ipv4Marshaller
                    .marshal(&mut w, &Value::Str(bad.into()), ResolvedSize::Bits(32))
                    .is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn registry_lookup_and_extension() {
        let mut registry = MarshallerRegistry::with_builtins();
        assert!(registry.get("String").is_ok());
        assert!(matches!(registry.get("Nope"), Err(MdlError::UnknownType(_))));

        // Runtime extension exactly like the paper's FQDN example.
        #[derive(Debug)]
        struct UpperMarshaller;
        impl Marshaller for UpperMarshaller {
            fn type_name(&self) -> &str {
                "Upper"
            }
            fn unmarshal(&self, reader: &mut BitReader<'_>, size: ResolvedSize) -> Result<Value> {
                let v = StringMarshaller.unmarshal(reader, size)?;
                Ok(Value::Str(v.as_str()?.to_ascii_uppercase()))
            }
            fn marshal(
                &self,
                writer: &mut BitWriter,
                value: &Value,
                size: ResolvedSize,
            ) -> Result<()> {
                StringMarshaller.marshal(writer, value, size)
            }
            fn wire_bits(&self, value: &Value, size: ResolvedSize) -> Result<u64> {
                StringMarshaller.wire_bits(value, size)
            }
        }
        registry.register(Arc::new(UpperMarshaller));
        assert!(registry.get("Upper").is_ok());
    }
}
