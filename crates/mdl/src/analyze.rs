//! Static analyses over MDL specifications — the `starlink-check` MDL
//! layer.
//!
//! A broken MDL is otherwise discovered at runtime: a mid-session
//! compose error tears down the session, or the parser silently selects
//! the wrong message body. [`analyze_mdl`] proves the spec sound before
//! it serves traffic. Each finding carries a stable lint code:
//!
//! | code   | severity | meaning |
//! |--------|----------|---------|
//! | MDL001 | error    | size field-reference names no earlier field |
//! | MDL002 | error    | field-function dependency cycle |
//! | MDL003 | error/warning | bit-width/alignment unsoundness |
//! | MDL004 | error    | text-delimiter ambiguity / unreachable field |
//! | MDL005 | error/warning | `f-length` frame inconsistency |
//! | MDL006 | info     | flattenability explainer ([`FlatPlan`] subset) |
//! | MDL007 | error    | duplicate message type name |
//! | MDL008 | error/warning | rule references a non-header field / literal type mismatch |
//! | MDL009 | warning  | message shadowed by an earlier rule |

use crate::flat::FlatPlan;
use crate::rule::Rule;
use crate::size::SizeSpec;
use crate::spec::{FieldSpec, MdlKind, MdlSpec, MessageSpec};
use starlink_xml::diag::Diagnostic;
use starlink_xml::{Element, Position};

/// Looks up XML source positions for spec constituents, when the spec
/// came from a document. All lookups degrade to "no position" for
/// programmatically built specs.
struct Spans<'a> {
    root: Option<&'a Element>,
}

impl<'a> Spans<'a> {
    fn message(&self, name: &str) -> Position {
        self.message_el(name).map(Element::position).unwrap_or_default()
    }

    fn message_el(&self, name: &str) -> Option<&'a Element> {
        self.root?.children_named("Message").find(|el| el.attr("type") == Some(name))
    }

    /// The field element: searched in the message body first (when a
    /// message context is given), then in the header.
    fn field(&self, message: Option<&str>, label: &str) -> Position {
        if let Some(el) =
            message.and_then(|name| self.message_el(name)).and_then(|el| el.child(label))
        {
            return el.position();
        }
        self.root
            .and_then(|root| root.child("Header"))
            .and_then(|header| header.child(label))
            .map(Element::position)
            .unwrap_or_default()
    }

    fn type_entry(&self, label: &str) -> Position {
        self.root
            .and_then(|root| root.child("Types"))
            .and_then(|types| types.child(label))
            .map(Element::position)
            .unwrap_or_default()
    }

    fn rule(&self, message: &str) -> Position {
        self.message_el(message)
            .map(|el| el.child("Rule").map(Element::position).unwrap_or_else(|| el.position()))
            .unwrap_or_default()
    }
}

/// Runs every MDL analysis over `spec`. When the originating XML
/// document is supplied, findings carry the position of the offending
/// element.
pub fn analyze_mdl(spec: &MdlSpec, doc: Option<&Element>) -> Vec<Diagnostic> {
    let spans = Spans { root: doc };
    let subject = format!("mdl:{}", spec.protocol());
    let mut out = Vec::new();

    check_duplicate_messages(spec, &spans, &mut out);
    check_field_refs(spec, &spans, &mut out);
    check_function_cycles(spec, &spans, &mut out);
    check_bit_widths(spec, &spans, &mut out);
    check_delimiters(spec, &spans, &mut out);
    check_functions(spec, &spans, &mut out);
    check_rules(spec, &spans, &mut out);
    check_shadowed_messages(spec, &spans, &mut out);
    explain_flattenability(spec, &mut out);

    out.into_iter().map(|d| d.on(subject.clone())).collect()
}

/// MDL007: message type names must be unique (codecs and bridges look
/// messages up by name; a duplicate silently hides the later body).
fn check_duplicate_messages(spec: &MdlSpec, spans: &Spans<'_>, out: &mut Vec<Diagnostic>) {
    let mut seen = std::collections::BTreeSet::new();
    for message in spec.messages() {
        if !seen.insert(message.name.as_str()) {
            out.push(
                Diagnostic::error(
                    "MDL007",
                    format!("duplicate message type {:?}", message.name.as_str()),
                )
                .at(spans.message(&message.name)),
            );
        }
    }
}

/// MDL001: a `FieldRef` size must name a field parsed *earlier* in the
/// same message (header first, then body, in wire order) — the parser
/// needs the referenced value before it can size this field.
fn check_field_refs(spec: &MdlSpec, spans: &Spans<'_>, out: &mut Vec<Diagnostic>) {
    // Header fields are scanned in every pass (they precede every body)
    // but reported only in the header pass, or each header finding would
    // repeat once per message.
    let mut check_section = |message: Option<&MessageSpec>, fields: &[&FieldSpec], skip: usize| {
        let name = message.map(|m| m.name.as_str());
        let mut known: Vec<&str> = Vec::new();
        for (i, field) in fields.iter().enumerate() {
            if let SizeSpec::FieldRef(target) = &field.size {
                if !known.contains(&target.as_str()) && i >= skip {
                    let place = match name {
                        Some(n) => format!("message {n:?}"),
                        None => "the header".to_owned(),
                    };
                    out.push(
                        Diagnostic::error(
                            "MDL001",
                            format!(
                                "field {:?} of {place} references {:?} before it is parsed",
                                field.label.as_str(),
                                target
                            ),
                        )
                        .at(spans.field(name, &field.label)),
                    );
                }
            }
            known.push(field.label.as_str());
        }
    };
    let header: Vec<&FieldSpec> = spec.header().iter().collect();
    check_section(None, &header, 0);
    for message in spec.messages() {
        let fields: Vec<&FieldSpec> = spec.header().iter().chain(message.fields.iter()).collect();
        check_section(Some(message), &fields, spec.header().len());
    }
}

/// MDL002: `f-length`/`f-count` argument edges must be acyclic — with a
/// cycle, each length is computed from the other's stale default and the
/// composed frame lies about itself.
fn check_function_cycles(spec: &MdlSpec, spans: &Spans<'_>, out: &mut Vec<Diagnostic>) {
    let edges: Vec<(&str, &str)> = spec
        .types()
        .iter()
        .filter_map(|(label, def)| {
            let function = def.function.as_ref()?;
            match function.name.as_str() {
                "f-length" | "f-count" => function.args.first().map(|arg| (label, arg.as_str())),
                _ => None,
            }
        })
        .collect();
    for (start, _) in &edges {
        // Walk the (at most unary) measurement chain from `start`.
        let mut path = vec![*start];
        let mut current = *start;
        while let Some((_, next)) = edges.iter().find(|(from, _)| *from == current) {
            if *next == *start {
                out.push(
                    Diagnostic::error(
                        "MDL002",
                        format!(
                            "field-function cycle: {} measures itself through {}",
                            start,
                            path.join(" -> "),
                        ),
                    )
                    .at(spans.type_entry(start)),
                );
                return; // one report per cycle is enough
            }
            if path.contains(next) {
                break; // a cycle not through `start`; reported from its own start
            }
            path.push(next);
            current = next;
        }
    }
}

/// MDL003: bit-width and alignment soundness. The binary engine is
/// bit-granular, but integers wider than 64 bits overflow the value
/// model, zero-width fields cannot carry data, string widths must be
/// whole bytes, and a message whose fixed widths do not sum to whole
/// bytes composes a frame no byte-oriented transport can carry.
fn check_bit_widths(spec: &MdlSpec, spans: &Spans<'_>, out: &mut Vec<Diagnostic>) {
    for (message, field) in all_fields(spec) {
        let name = message.map(|m| m.name.as_str());
        let base = spec.base_type(&field.label);
        match (&field.size, spec.kind()) {
            (SizeSpec::Bits(0), _) => out.push(
                Diagnostic::error(
                    "MDL003",
                    format!("field {:?} declares a zero-bit width", field.label.as_str()),
                )
                .at(spans.field(name, &field.label)),
            ),
            (SizeSpec::Bits(bits), MdlKind::Binary)
                if *bits > 64 && matches!(base, "Integer" | "Unsigned" | "Signed") =>
            {
                out.push(
                    Diagnostic::error(
                        "MDL003",
                        format!(
                            "field {:?}: {bits}-bit {base} exceeds the 64-bit value model",
                            field.label.as_str()
                        ),
                    )
                    .at(spans.field(name, &field.label)),
                );
            }
            (SizeSpec::Bits(bits), _) if bits % 8 != 0 && base == "String" => out.push(
                Diagnostic::error(
                    "MDL003",
                    format!(
                        "field {:?}: {bits}-bit String is not a whole number of bytes",
                        field.label.as_str()
                    ),
                )
                .at(spans.field(name, &field.label)),
            ),
            (SizeSpec::Bits(_), MdlKind::Text) => out.push(
                Diagnostic::error(
                    "MDL003",
                    format!(
                        "field {:?} declares a fixed bit width in a text spec",
                        field.label.as_str()
                    ),
                )
                .at(spans.field(name, &field.label)),
            ),
            (SizeSpec::Delimiter(_) | SizeSpec::DelimitedPairs { .. }, MdlKind::Binary) => out
                .push(
                    Diagnostic::error(
                        "MDL003",
                        format!(
                            "field {:?} declares a text delimiter in a binary spec",
                            field.label.as_str()
                        ),
                    )
                    .at(spans.field(name, &field.label)),
                ),
            _ => {}
        }
    }
    if spec.kind() == MdlKind::Binary {
        for message in spec.messages() {
            let fixed_bits: u64 = spec
                .header()
                .iter()
                .chain(message.fields.iter())
                .filter_map(|f| match f.size {
                    SizeSpec::Bits(bits) => Some(u64::from(bits)),
                    _ => None,
                })
                .sum();
            if !fixed_bits.is_multiple_of(8) {
                out.push(
                    Diagnostic::warning(
                        "MDL003",
                        format!(
                            "message {:?} declares {fixed_bits} fixed bits, \
                             not a whole number of bytes",
                            message.name.as_str()
                        ),
                    )
                    .at(spans.message(&message.name)),
                );
            }
        }
    }
}

/// MDL004: text-delimiter ambiguity. A delimiter that can occur inside
/// the delimited field's own value domain makes the boundary scan stop
/// early on legitimate values; a field declared after a `Remaining`
/// field can never be reached by the parser at all.
fn check_delimiters(spec: &MdlSpec, spans: &Spans<'_>, out: &mut Vec<Diagnostic>) {
    // As in MDL001: header fields participate in every scan but are
    // reported only once, in the header pass.
    let mut check_section = |message: Option<&MessageSpec>, fields: &[&FieldSpec], skip: usize| {
        let name = message.map(|m| m.name.as_str());
        let mut after_remaining: Option<&str> = None;
        for (i, field) in fields.iter().enumerate() {
            if i < skip {
                if matches!(field.size, SizeSpec::Remaining) {
                    after_remaining = Some(field.label.as_str());
                }
                continue;
            }
            if let Some(swallower) = after_remaining {
                out.push(
                    Diagnostic::error(
                        "MDL004",
                        format!(
                            "field {:?} is unreachable: {swallower:?} already consumed \
                             the rest of the message",
                            field.label.as_str()
                        ),
                    )
                    .at(spans.field(name, &field.label)),
                );
            }
            match &field.size {
                SizeSpec::Remaining => after_remaining = Some(field.label.as_str()),
                SizeSpec::Delimiter(delim) if delim.is_empty() => out.push(
                    Diagnostic::error(
                        "MDL004",
                        format!("field {:?} declares an empty delimiter", field.label.as_str()),
                    )
                    .at(spans.field(name, &field.label)),
                ),
                SizeSpec::Delimiter(delim)
                    if matches!(
                        spec.base_type(&field.label),
                        "Integer" | "Unsigned" | "Signed"
                    ) && delim.iter().all(u8::is_ascii_digit) =>
                {
                    out.push(
                        Diagnostic::error(
                            "MDL004",
                            format!(
                                "field {:?}: delimiter {:?} is all decimal digits and can \
                                 occur inside the field's own integer value",
                                field.label.as_str(),
                                String::from_utf8_lossy(delim),
                            ),
                        )
                        .at(spans.field(name, &field.label)),
                    );
                }
                _ => {}
            }
        }
    };
    let header: Vec<&FieldSpec> = spec.header().iter().collect();
    check_section(None, &header, 0);
    for message in spec.messages() {
        let fields: Vec<&FieldSpec> = spec.header().iter().chain(message.fields.iter()).collect();
        check_section(Some(message), &fields, spec.header().len());
    }
}

/// MDL005: `f-length` frame consistency. The composer recomputes length
/// fields from the measured field's wire image; every piece of that
/// contract is checkable statically.
fn check_functions(spec: &MdlSpec, spans: &Spans<'_>, out: &mut Vec<Diagnostic>) {
    // Arity and known-name checks over the type table.
    for (label, def) in spec.types().iter() {
        let Some(function) = &def.function else { continue };
        let arity_ok = match function.name.as_str() {
            "f-length" | "f-count" => function.args.len() == 1,
            "f-total-length" => function.args.is_empty(),
            other => {
                out.push(
                    Diagnostic::error(
                        "MDL005",
                        format!("type entry {label:?} names unknown field function {other:?}"),
                    )
                    .at(spans.type_entry(label)),
                );
                continue;
            }
        };
        if !arity_ok {
            out.push(
                Diagnostic::error(
                    "MDL005",
                    format!(
                        "field function {}({}) of {label:?} has the wrong number of arguments",
                        function.name,
                        function.args.join(","),
                    ),
                )
                .at(spans.type_entry(label)),
            );
        }
    }
    // Per-message checks: targets present, references paired.
    for message in spec.messages() {
        let fields: Vec<&FieldSpec> = spec.header().iter().chain(message.fields.iter()).collect();
        let labels: Vec<&str> = fields.iter().map(|f| f.label.as_str()).collect();
        let mut measured: Vec<(&str, &str)> = Vec::new(); // (target, by)
        for field in &fields {
            let Some(def) = spec.types().get(&field.label) else { continue };
            let Some(function) = &def.function else { continue };
            if function.name == "f-length" {
                if let Some(target) = function.args.first() {
                    if !labels.contains(&target.as_str()) {
                        out.push(
                            Diagnostic::error(
                                "MDL005",
                                format!(
                                    "message {:?} uses length field {:?}, but its f-length \
                                     target {target:?} is not a field of this message",
                                    message.name.as_str(),
                                    field.label.as_str(),
                                ),
                            )
                            .at(spans.field(Some(&message.name), &field.label)),
                        );
                    } else if let Some((_, earlier)) = measured.iter().find(|(t, _)| t == target) {
                        out.push(
                            Diagnostic::warning(
                                "MDL005",
                                format!(
                                    "message {:?}: both {:?} and {:?} measure {target:?}; \
                                     the two lengths can disagree",
                                    message.name.as_str(),
                                    earlier,
                                    field.label.as_str(),
                                ),
                            )
                            .at(spans.field(Some(&message.name), &field.label)),
                        );
                    } else {
                        measured.push((target.as_str(), field.label.as_str()));
                    }
                }
            }
        }
        // A FieldRef'd field should be measured by its length field, or
        // the composed frame carries whatever stale value the length
        // field happens to hold.
        for field in &fields {
            let SizeSpec::FieldRef(length_label) = &field.size else { continue };
            let recomputed = spec
                .types()
                .get(length_label)
                .and_then(|def| def.function.as_ref())
                .map(|function| {
                    function.name == "f-length"
                        && function.args.first().map(String::as_str) == Some(field.label.as_str())
                })
                .unwrap_or(false);
            if !recomputed && labels.contains(&length_label.as_str()) {
                out.push(
                    Diagnostic::warning(
                        "MDL005",
                        format!(
                            "message {:?}: field {:?} is sized by {length_label:?}, but \
                             {length_label:?} carries no f-length({}) function — the \
                             composer cannot keep the frame consistent",
                            message.name.as_str(),
                            field.label.as_str(),
                            field.label.as_str(),
                        ),
                    )
                    .at(spans.field(Some(&message.name), &field.label)),
                );
            }
        }
    }
}

/// MDL008: rule soundness. Rules select the message body from the parsed
/// *header*, so a clause over a non-header field can never match; a
/// non-numeric literal on an integer field compares against the field's
/// decimal rendering and almost certainly never matches either.
fn check_rules(spec: &MdlSpec, spans: &Spans<'_>, out: &mut Vec<Diagnostic>) {
    let header_labels: Vec<&str> = spec.header().iter().map(|f| f.label.as_str()).collect();
    for message in spec.messages() {
        for (label, literal) in message.rule.bindings() {
            if !header_labels.contains(&label) {
                out.push(
                    Diagnostic::error(
                        "MDL008",
                        format!(
                            "rule of message {:?} tests {label:?}, which is not a header \
                             field — the rule can never select this body",
                            message.name.as_str()
                        ),
                    )
                    .at(spans.rule(&message.name)),
                );
                continue;
            }
            let base = spec.base_type(label);
            if matches!(base, "Integer" | "Unsigned" | "Signed") && literal.parse::<i128>().is_err()
            {
                out.push(
                    Diagnostic::warning(
                        "MDL008",
                        format!(
                            "rule of message {:?} compares {base} field {label:?} \
                             against non-numeric literal {literal:?}",
                            message.name.as_str()
                        ),
                    )
                    .at(spans.rule(&message.name)),
                );
            }
        }
    }
}

/// MDL009: rules are evaluated in declaration order, first match wins —
/// a message behind an always-true or identical earlier rule is dead.
fn check_shadowed_messages(spec: &MdlSpec, spans: &Spans<'_>, out: &mut Vec<Diagnostic>) {
    for (i, message) in spec.messages().iter().enumerate() {
        for earlier in &spec.messages()[..i] {
            let shadowed = earlier.rule == Rule::Always || earlier.rule == message.rule;
            if shadowed {
                out.push(
                    Diagnostic::warning(
                        "MDL009",
                        format!(
                            "message {:?} is unreachable: the rule of earlier message {:?} \
                             always matches first",
                            message.name.as_str(),
                            earlier.name.as_str()
                        ),
                    )
                    .at(spans.message(&message.name)),
                );
                break;
            }
        }
    }
}

/// MDL006: the flattenability explainer — exactly why this spec does or
/// does not enter the [`FlatPlan`] subset (the fused fast path's
/// substrate). Always informational: an interpreted spec is slower, not
/// wrong.
fn explain_flattenability(spec: &MdlSpec, out: &mut Vec<Diagnostic>) {
    let reasons = flat_reject_reasons(spec);
    let message = if reasons.is_empty() {
        "enters the FlatPlan subset (fused fast path eligible)".to_owned()
    } else {
        format!("stays on the interpreted path: {}", reasons.join("; "))
    };
    out.push(Diagnostic::info("MDL006", message));
}

/// The reasons [`FlatPlan::compile`] would reject `spec`, in its own
/// checking order. Empty exactly when the spec compiles to a flat plan
/// (the analysis tests hold the two in lock-step).
pub fn flat_reject_reasons(spec: &MdlSpec) -> Vec<String> {
    let kind = spec.kind();
    let header_len = spec.header().len();
    let mut reasons = Vec::new();
    for message in spec.messages() {
        let fields: Vec<&FieldSpec> = spec.header().iter().chain(message.fields.iter()).collect();
        let labels: Vec<&str> = fields.iter().map(|f| f.label.as_str()).collect();
        for (i, field) in fields.iter().enumerate() {
            let label = field.label.as_str();
            let base = spec.base_type(label);
            if !matches!(base, "Integer" | "Unsigned" | "String" | "FQDN") {
                reasons.push(format!("field {label:?}: base type {base:?} has no flat slot"));
                continue;
            }
            let is_int = matches!(base, "Integer" | "Unsigned");
            let supported = match (&field.size, kind) {
                (SizeSpec::Bits(bits), MdlKind::Binary) if is_int => {
                    *bits > 0 && *bits <= 64 && bits % 8 == 0
                }
                (SizeSpec::Bits(bits), MdlKind::Binary) if base == "String" => bits % 8 == 0,
                (SizeSpec::FieldRef(target), _) if base != "FQDN" => {
                    if labels[..i].contains(&target.as_str()) {
                        true
                    } else {
                        reasons.push(format!(
                            "field {label:?}: length reference {target:?} names no \
                             earlier field"
                        ));
                        continue;
                    }
                }
                (SizeSpec::SelfDelimiting, MdlKind::Binary) => base == "FQDN",
                (SizeSpec::Remaining, _) => base == "String",
                (SizeSpec::Delimiter(delim), MdlKind::Text) if base != "FQDN" => !delim.is_empty(),
                _ => false,
            };
            if !supported {
                reasons.push(format!(
                    "field {label:?}: size {} has no flat form for a {base} field of a \
                     {} spec",
                    field.size.to_text(),
                    kind.as_str(),
                ));
            }
        }
        for field in &fields {
            let Some(def) = spec.types().get(&field.label) else { continue };
            let Some(function) = &def.function else { continue };
            match function.name.as_str() {
                "f-length" => {
                    let target = function.args.first();
                    if !target.map(|t| labels.contains(&t.as_str())).unwrap_or(false) {
                        reasons.push(format!(
                            "field {:?}: f-length target is not a field of message {:?}",
                            field.label.as_str(),
                            message.name.as_str(),
                        ));
                    }
                }
                "f-total-length" if kind == MdlKind::Binary => {}
                other => reasons.push(format!(
                    "field {:?}: function {other:?} has no flat implementation in a {} spec",
                    field.label.as_str(),
                    kind.as_str(),
                )),
            }
        }
        // FieldRef / f-length pairing, mirroring the compose cross-check.
        for field in &fields {
            let SizeSpec::FieldRef(length_label) = &field.size else { continue };
            if !labels.contains(&length_label.as_str()) {
                continue; // already reported above
            }
            let paired = spec
                .types()
                .get(length_label)
                .and_then(|def| def.function.as_ref())
                .map(|function| {
                    function.name == "f-length"
                        && function.args.first().map(String::as_str) == Some(field.label.as_str())
                })
                .unwrap_or(false);
            let length_is_int = matches!(spec.base_type(length_label), "Integer" | "Unsigned");
            if !paired || !length_is_int {
                reasons.push(format!(
                    "field {:?}: not measured by a paired integer f-length field \
                     {length_label:?}",
                    field.label.as_str(),
                ));
            }
        }
        for (label, literal) in message.rule.bindings() {
            let Some(index) = labels.iter().position(|l| *l == label) else {
                reasons.push(format!(
                    "rule of message {:?} binds {label:?}, which is not a field",
                    message.name.as_str()
                ));
                continue;
            };
            if index >= header_len {
                reasons.push(format!(
                    "rule of message {:?} binds body field {label:?}",
                    message.name.as_str()
                ));
                continue;
            }
            let is_int = matches!(spec.base_type(label), "Integer" | "Unsigned");
            if is_int && literal.parse::<u64>().is_err() {
                reasons.push(format!(
                    "rule of message {:?} binds non-numeric {literal:?} to integer \
                     field {label:?}",
                    message.name.as_str()
                ));
            } else if !is_int && literal.parse::<i128>().is_ok() {
                reasons.push(format!(
                    "rule of message {:?} binds numeric literal {literal:?} to text \
                     field {label:?} (matches numerically only when interpreted)",
                    message.name.as_str()
                ));
            }
        }
    }
    if spec.messages().is_empty() {
        reasons.push("spec declares no messages".to_owned());
    }
    debug_assert_eq!(
        reasons.is_empty(),
        FlatPlan::compile(spec).is_some(),
        "flattenability explainer out of sync with FlatPlan::compile for {:?}",
        spec.protocol(),
    );
    reasons
}

fn all_fields(spec: &MdlSpec) -> impl Iterator<Item = (Option<&MessageSpec>, &FieldSpec)> {
    spec.header()
        .iter()
        .map(|f| (None, f))
        .chain(spec.messages().iter().flat_map(|m| m.fields.iter().map(move |f| (Some(m), f))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml_load::load_mdl;
    use starlink_xml::diag::Severity;

    const CLEAN: &str = r#"
    <MDL protocol="SLP" kind="binary">
      <Types>
        <SRVType>String</SRVType>
        <SRVTypeLength>Integer[f-length(SRVType)]</SRVTypeLength>
      </Types>
      <Header type="SLP">
        <Version>8</Version>
        <FunctionID>8</FunctionID>
      </Header>
      <Message type="Req">
        <Rule>FunctionID=1</Rule>
        <SRVTypeLength>16</SRVTypeLength>
        <SRVType mandatory="true">SRVTypeLength</SRVType>
      </Message>
    </MDL>"#;

    fn diags_for(source: &str) -> Vec<Diagnostic> {
        let spec = load_mdl(source).unwrap();
        let doc = Element::parse(source).unwrap();
        analyze_mdl(&spec, Some(&doc))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().filter(|d| d.severity() > Severity::Info).map(|d| d.code()).collect()
    }

    #[test]
    fn clean_spec_yields_only_the_flattenability_note() {
        let diags = diags_for(CLEAN);
        assert_eq!(codes(&diags), Vec::<&str>::new(), "{diags:?}");
        let note = diags.iter().find(|d| d.code() == "MDL006").unwrap();
        assert_eq!(note.severity(), Severity::Info);
        assert!(note.message().contains("FlatPlan"), "{}", note.message());
    }

    #[test]
    fn shadowed_message_is_mdl009() {
        let src = r#"
        <MDL protocol="X" kind="binary">
          <Header type="X"><F>8</F></Header>
          <Message type="A"><Rule>F=1</Rule></Message>
          <Message type="B"><Rule>F=1</Rule></Message>
        </MDL>"#;
        let diags = diags_for(src);
        let d = diags.iter().find(|d| d.code() == "MDL009").unwrap();
        assert_eq!(d.severity(), Severity::Warning);
        assert!(d.message().contains("\"B\""), "{}", d.message());
        assert_ne!(d.position(), Position::default());
    }

    #[test]
    fn digit_delimiter_on_integer_field_is_mdl004() {
        let src = r#"
        <MDL protocol="X" kind="text">
          <Types><N>Integer</N></Types>
          <Header type="X"><N>48,49</N></Header>
          <Message type="M"/>
        </MDL>"#;
        let diags = diags_for(src);
        assert!(codes(&diags).contains(&"MDL004"), "{diags:?}");
    }

    #[test]
    fn rule_on_body_field_is_mdl008() {
        let src = r#"
        <MDL protocol="X" kind="binary">
          <Header type="X"><F>8</F></Header>
          <Message type="M"><Rule>Body=1</Rule><Body>8</Body></Message>
        </MDL>"#;
        let diags = diags_for(src);
        let d = diags.iter().find(|d| d.code() == "MDL008").unwrap();
        assert_eq!(d.severity(), Severity::Error);
    }

    #[test]
    fn explainer_matches_flat_compile_on_non_flat_specs() {
        // Numeric literal bound to a text field keeps the spec interpreted.
        let src = r#"
        <MDL protocol="X" kind="text">
          <Header type="X"><Status>32</Status></Header>
          <Message type="M"><Rule>Status=200</Rule></Message>
        </MDL>"#;
        let spec = load_mdl(src).unwrap();
        assert!(FlatPlan::compile(&spec).is_none());
        let reasons = flat_reject_reasons(&spec);
        assert!(!reasons.is_empty());
        assert!(reasons[0].contains("numeric literal"), "{reasons:?}");
    }

    #[test]
    fn unpaired_field_ref_is_a_warning() {
        // Len has no f-length function: composer cannot recompute it.
        let src = r#"
        <MDL protocol="X" kind="binary">
          <Header type="X"><F>8</F></Header>
          <Message type="M">
            <Len>16</Len>
            <Data>Len</Data>
          </Message>
        </MDL>"#;
        let diags = diags_for(src);
        let d = diags.iter().find(|d| d.code() == "MDL005").unwrap();
        assert_eq!(d.severity(), Severity::Warning);
    }

    #[test]
    fn function_cycle_is_mdl002() {
        let spec = MdlSpec::new("X", MdlKind::Binary)
            .type_entry("A", crate::types::TypeDef::parse("Integer[f-length(B)]").unwrap())
            .type_entry("B", crate::types::TypeDef::parse("Integer[f-length(A)]").unwrap())
            .message(
                MessageSpec::new("M", Rule::Always)
                    .field(FieldSpec::new("A", SizeSpec::Bits(16)))
                    .field(FieldSpec::new("B", SizeSpec::Bits(16))),
            );
        let diags = analyze_mdl(&spec, None);
        assert!(diags.iter().any(|d| d.code() == "MDL002"), "{diags:?}");
    }
}
