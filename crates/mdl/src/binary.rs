//! Generic parser and composer for **binary** MDL specifications.
//!
//! These are the "general interpreters that execute the message
//! description language specifications that are loaded" (§IV-A): a single
//! implementation specialised at runtime by an [`MdlSpec`], never by
//! protocol-specific code.

use crate::bitio::{BitReader, BitWriter};
use crate::error::{MdlError, Result};
use crate::functions::evaluate_functions;
use crate::marshal::MarshallerRegistry;
use crate::size::{ResolvedSize, SizeSpec};
use crate::spec::{FieldSpec, MdlKind, MdlSpec};
use starlink_message::{AbstractMessage, Field, FieldPath, PrimitiveField};
use std::sync::Arc;

fn resolve_size(
    size: &SizeSpec,
    message: &AbstractMessage,
    reader_pos: u64,
) -> Result<ResolvedSize> {
    match size {
        SizeSpec::Bits(bits) => Ok(ResolvedSize::Bits(u64::from(*bits))),
        SizeSpec::FieldRef(label) => {
            let value = message
                .field(label)
                .ok_or_else(|| MdlError::Parse {
                    reason: format!("length field {label:?} has not been parsed yet"),
                    offset_bits: reader_pos,
                })?
                .value()?;
            Ok(ResolvedSize::Bytes(value.as_u64()?))
        }
        SizeSpec::SelfDelimiting => Ok(ResolvedSize::SelfDelimiting),
        SizeSpec::Remaining => Ok(ResolvedSize::Remaining),
        SizeSpec::Delimiter(_) | SizeSpec::DelimitedPairs { .. } => Err(MdlError::Spec(
            "delimiter sizes are only valid in text MDLs".into(),
        )),
    }
}

/// Parses wire bytes into abstract messages by interpreting a binary
/// [`MdlSpec`].
#[derive(Debug, Clone)]
pub struct BinaryParser {
    spec: Arc<MdlSpec>,
    marshallers: Arc<MarshallerRegistry>,
}

impl BinaryParser {
    /// Creates a parser for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] when the spec is not a binary MDL.
    pub fn new(spec: Arc<MdlSpec>, marshallers: Arc<MarshallerRegistry>) -> Result<Self> {
        if spec.kind() != MdlKind::Binary {
            return Err(MdlError::Spec(format!(
                "protocol {:?} is not a binary MDL",
                spec.protocol()
            )));
        }
        Ok(BinaryParser { spec, marshallers })
    }

    fn parse_field(
        &self,
        reader: &mut BitReader<'_>,
        message: &mut AbstractMessage,
        field: &FieldSpec,
    ) -> Result<()> {
        let size = resolve_size(&field.size, message, reader.position_bits())?;
        let base = self.spec.base_type(&field.label);
        let marshaller = self.marshallers.get(base)?;
        let start = reader.position_bits();
        let value = marshaller.unmarshal(reader, size)?;
        let consumed = (reader.position_bits() - start) as u32;
        message.push_field(Field::Primitive(PrimitiveField::with_length(
            field.label.clone(),
            base.to_owned(),
            consumed,
            value,
        )));
        if field.mandatory {
            message.mark_mandatory(field.label.clone());
        }
        Ok(())
    }

    /// Parses one message from the start of `bytes`, returning it together
    /// with the number of bytes consumed (callers feeding TCP streams use
    /// the count to advance their buffer).
    ///
    /// # Errors
    ///
    /// Fails on truncated input or when no message rule matches the header.
    pub fn parse_prefix(&self, bytes: &[u8]) -> Result<(AbstractMessage, usize)> {
        let mut reader = BitReader::new(bytes);
        let mut message = AbstractMessage::new(self.spec.protocol().to_owned(), "");
        for field in self.spec.header() {
            self.parse_field(&mut reader, &mut message, field)?;
        }
        let selected = self
            .spec
            .select_by_rule(&message)
            .ok_or_else(|| MdlError::NoRuleMatched { protocol: self.spec.protocol().to_owned() })?;
        message.set_name(selected.name.clone());
        for field in &selected.fields {
            self.parse_field(&mut reader, &mut message, field)?;
        }
        let consumed = reader.position_bits().div_ceil(8) as usize;
        Ok((message, consumed))
    }

    /// Parses one message, requiring that it spans the whole input (the
    /// datagram case).
    ///
    /// # Errors
    ///
    /// Fails as [`BinaryParser::parse_prefix`]; trailing bytes are
    /// tolerated only if they are zero padding.
    pub fn parse(&self, bytes: &[u8]) -> Result<AbstractMessage> {
        let (message, _) = self.parse_prefix(bytes)?;
        Ok(message)
    }
}

/// Composes abstract messages to wire bytes by interpreting a binary
/// [`MdlSpec`].
#[derive(Debug, Clone)]
pub struct BinaryComposer {
    spec: Arc<MdlSpec>,
    marshallers: Arc<MarshallerRegistry>,
}

impl BinaryComposer {
    /// Creates a composer for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] when the spec is not a binary MDL.
    pub fn new(spec: Arc<MdlSpec>, marshallers: Arc<MarshallerRegistry>) -> Result<Self> {
        if spec.kind() != MdlKind::Binary {
            return Err(MdlError::Spec(format!(
                "protocol {:?} is not a binary MDL",
                spec.protocol()
            )));
        }
        Ok(BinaryComposer { spec, marshallers })
    }

    /// Composes `message` to its wire image.
    ///
    /// Field functions (`f-length`, `f-total-length`, ...) are evaluated
    /// first, so length fields need not be pre-computed by the caller; the
    /// message's own copy is not modified.
    ///
    /// # Errors
    ///
    /// Fails when the message type is unknown to the spec, a field is
    /// missing, or a value cannot be marshalled.
    pub fn compose(&self, message: &AbstractMessage) -> Result<Vec<u8>> {
        let selected = self
            .spec
            .message_spec(message.name())
            .ok_or_else(|| MdlError::UnknownMessage(message.name().to_owned()))?;
        let fields: Vec<&FieldSpec> =
            self.spec.header().iter().chain(selected.fields.iter()).collect();

        // Work on a copy: rule discriminators and function fields are
        // filled in automatically.
        let mut working = message.clone();
        for (label, literal) in selected.rule.bindings() {
            let path = FieldPath::field(label);
            let needs_fill = match working.field(label) {
                None => true,
                Some(f) => f.value().map(|v| v.is_empty()).unwrap_or(false),
            };
            if needs_fill {
                let value = match literal.parse::<u64>() {
                    Ok(v) => starlink_message::Value::Unsigned(v),
                    Err(_) => starlink_message::Value::Str(literal.to_owned()),
                };
                working.set_or_insert(&path, value)?;
            }
        }
        evaluate_functions(&self.spec, &self.marshallers, &fields, &mut working)?;

        let mut writer = BitWriter::new();
        for field in &fields {
            let value = working
                .field(&field.label)
                .ok_or_else(|| {
                    MdlError::Compose(format!(
                        "message {:?} is missing field {:?}",
                        message.name(),
                        field.label
                    ))
                })?
                .value()?;
            let size = match &field.size {
                SizeSpec::Bits(bits) => ResolvedSize::Bits(u64::from(*bits)),
                SizeSpec::FieldRef(ref_label) => {
                    // The wire width follows the value; cross-check that the
                    // (possibly auto-computed) length field agrees.
                    let declared = working
                        .field(ref_label)
                        .ok_or_else(|| {
                            MdlError::Compose(format!("missing length field {ref_label:?}"))
                        })?
                        .value()?
                        .as_u64()?;
                    let actual = value.as_bytes().map(|b| b.len() as u64).unwrap_or(declared);
                    if declared != actual {
                        return Err(MdlError::Compose(format!(
                            "length field {ref_label:?} is {declared} but {:?} is {actual} bytes",
                            field.label
                        )));
                    }
                    ResolvedSize::Bytes(actual)
                }
                SizeSpec::SelfDelimiting => ResolvedSize::SelfDelimiting,
                SizeSpec::Remaining => ResolvedSize::Remaining,
                SizeSpec::Delimiter(_) | SizeSpec::DelimitedPairs { .. } => {
                    return Err(MdlError::Spec(
                        "delimiter sizes are only valid in text MDLs".into(),
                    ))
                }
            };
            let base = self.spec.base_type(&field.label);
            self.marshallers.get(base)?.marshal(&mut writer, value, size)?;
        }
        Ok(writer.into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use crate::spec::MessageSpec;
    use crate::types::{FieldFunction, TypeDef};
    use starlink_message::Value;

    /// A miniature SLP-like binary spec exercising fixed widths, rules,
    /// field references and functions together.
    fn spec() -> Arc<MdlSpec> {
        Arc::new(
            MdlSpec::new("MiniSLP", MdlKind::Binary)
                .type_entry("SRVType", TypeDef::plain("String"))
                .type_entry(
                    "SRVTypeLength",
                    TypeDef::with_function(
                        "Integer",
                        FieldFunction::new("f-length", vec!["SRVType".into()]),
                    ),
                )
                .type_entry(
                    "MessageLength",
                    TypeDef::with_function("Integer", FieldFunction::new("f-total-length", vec![])),
                )
                .type_entry("URL", TypeDef::plain("String"))
                .type_entry(
                    "URLLength",
                    TypeDef::with_function(
                        "Integer",
                        FieldFunction::new("f-length", vec!["URL".into()]),
                    ),
                )
                .header_field(FieldSpec::new("Version", SizeSpec::Bits(8)))
                .header_field(FieldSpec::new("FunctionID", SizeSpec::Bits(8)))
                .header_field(FieldSpec::new("MessageLength", SizeSpec::Bits(24)))
                .header_field(FieldSpec::new("XID", SizeSpec::Bits(16)))
                .message(
                    MessageSpec::new("SrvRequest", Rule::parse("FunctionID=1").unwrap())
                        .field(FieldSpec::new("SRVTypeLength", SizeSpec::Bits(16)))
                        .field(
                            FieldSpec::new("SRVType", SizeSpec::FieldRef("SRVTypeLength".into()))
                                .required(),
                        ),
                )
                .message(
                    MessageSpec::new("SrvReply", Rule::parse("FunctionID=2").unwrap())
                        .field(FieldSpec::new("URLLength", SizeSpec::Bits(16)))
                        .field(FieldSpec::new("URL", SizeSpec::FieldRef("URLLength".into())).required()),
                ),
        )
    }

    fn registry() -> Arc<MarshallerRegistry> {
        Arc::new(MarshallerRegistry::with_builtins())
    }

    fn request(service: &str) -> AbstractMessage {
        let mut msg = spec().schema("SrvRequest").unwrap().instantiate();
        msg.set(&"Version".into(), Value::Unsigned(2)).unwrap();
        msg.set(&"XID".into(), Value::Unsigned(0xBEEF)).unwrap();
        msg.set(&"SRVType".into(), Value::Str(service.into())).unwrap();
        msg
    }

    #[test]
    fn compose_then_parse_roundtrips() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        let wire = composer.compose(&request("service:printer")).unwrap();
        let parsed = parser.parse(&wire).unwrap();
        assert_eq!(parsed.name(), "SrvRequest");
        assert_eq!(parsed.get(&"XID".into()).unwrap().as_u64().unwrap(), 0xBEEF);
        assert_eq!(
            parsed.get(&"SRVType".into()).unwrap().as_str().unwrap(),
            "service:printer"
        );
    }

    #[test]
    fn compose_fills_length_fields() {
        let spec = spec();
        let composer = BinaryComposer::new(spec, registry()).unwrap();
        let wire = composer.compose(&request("ab")).unwrap();
        // Header: version(1) + functionID(1) + messageLength(3) + xid(2) = 7
        // Body: srvTypeLength(2) + "ab"(2) = 4; total = 11.
        assert_eq!(wire.len(), 11);
        assert_eq!(&wire[2..5], &[0, 0, 11]); // MessageLength auto-filled
        assert_eq!(&wire[7..9], &[0, 2]); // SRVTypeLength auto-filled
    }

    #[test]
    fn compose_fills_rule_discriminator() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let wire = composer.compose(&request("x")).unwrap();
        assert_eq!(wire[1], 1); // FunctionID = 1 from the rule
    }

    #[test]
    fn rule_selects_correct_body() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec.clone(), registry()).unwrap();
        let mut reply = spec.schema("SrvReply").unwrap().instantiate();
        reply.set(&"URL".into(), Value::Str("service:printer://10.0.0.9".into())).unwrap();
        let wire = composer.compose(&reply).unwrap();
        let parsed = parser.parse(&wire).unwrap();
        assert_eq!(parsed.name(), "SrvReply");
    }

    #[test]
    fn unmatched_rule_is_an_error() {
        let spec = spec();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        // FunctionID = 9 matches neither message.
        let bytes = [2u8, 9, 0, 0, 7, 0, 0];
        assert!(matches!(parser.parse(&bytes), Err(MdlError::NoRuleMatched { .. })));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        let wire = composer.compose(&request("service:printer")).unwrap();
        assert!(matches!(parser.parse(&wire[..wire.len() - 3]), Err(MdlError::Parse { .. })));
    }

    #[test]
    fn stale_length_field_is_rejected() {
        // A hand-built message with a length field that cannot be
        // reconciled: f-length overwrites it, so corrupt the spec path by
        // removing the function. This guards the cross-check.
        let spec = Arc::new(
            MdlSpec::new("X", MdlKind::Binary)
                .type_entry("Data", TypeDef::plain("String"))
                .message(
                    MessageSpec::new("M", Rule::Always)
                        .field(FieldSpec::new("Len", SizeSpec::Bits(8)))
                        .field(FieldSpec::new("Data", SizeSpec::FieldRef("Len".into()))),
                ),
        );
        let composer = BinaryComposer::new(spec, registry()).unwrap();
        let mut msg = AbstractMessage::new("X", "M");
        msg.push_field(Field::primitive("Len", 99u8)); // wrong on purpose
        msg.push_field(Field::primitive("Data", "abc"));
        let err = composer.compose(&msg).unwrap_err();
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn parse_prefix_reports_consumed_bytes() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        let mut wire = composer.compose(&request("svc")).unwrap();
        let message_len = wire.len();
        wire.extend_from_slice(&[0xAA; 4]); // trailing bytes from a stream
        let (msg, consumed) = parser.parse_prefix(&wire).unwrap();
        assert_eq!(consumed, message_len);
        assert_eq!(msg.name(), "SrvRequest");
    }

    #[test]
    fn mandatory_fields_are_marked() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        let wire = composer.compose(&request("svc")).unwrap();
        let parsed = parser.parse(&wire).unwrap();
        assert!(parsed.is_mandatory("SRVType"));
    }

    #[test]
    fn text_spec_is_rejected() {
        let text_spec = Arc::new(MdlSpec::new("T", MdlKind::Text));
        assert!(BinaryParser::new(text_spec.clone(), registry()).is_err());
        assert!(BinaryComposer::new(text_spec, registry()).is_err());
    }
}
