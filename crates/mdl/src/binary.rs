//! Generic parser and composer for **binary** MDL specifications.
//!
//! These are the "general interpreters that execute the message
//! description language specifications that are loaded" (§IV-A): a single
//! implementation specialised at runtime by an [`MdlSpec`], never by
//! protocol-specific code.
//!
//! Generation *compiles* the spec once into flat field plans — label and
//! type-name [`Label`]s, the marshaller, the resolved length-field index
//! and the compose-time function — so the per-message hot path touches no
//! type-table or registry lookups and allocates nothing per field beyond
//! the field's own value.

use crate::bitio::{BitReader, BitWriter};
use crate::error::{MdlError, Result};
use crate::intern::LabelInterner;
use crate::marshal::{Marshaller, MarshallerRegistry};
use crate::size::{ResolvedSize, SizeSpec};
use crate::spec::{FieldSpec, MdlKind, MdlSpec};
use starlink_message::{AbstractMessage, Field, Label, PrimitiveField, Value};
use std::sync::Arc;

/// Compose-time field function, compiled from the type table.
#[derive(Debug, Clone)]
enum PlanFunction {
    /// `f-length(target)`: byte length of the target field's wire image.
    Length {
        /// Index of the target field in the same plan.
        target: usize,
    },
    /// `f-count(target)`: number of items in the target field.
    Count {
        /// Label of the counted field.
        target: Label,
    },
    /// `f-total-length()`: byte length of the whole message.
    TotalLength,
}

/// One field of a compiled wire plan.
#[derive(Clone)]
struct PlanField {
    label: Label,
    base: Label,
    size: SizeSpec,
    mandatory: bool,
    marshaller: Arc<dyn Marshaller>,
    /// For [`SizeSpec::FieldRef`] sizes: index of the referenced length
    /// field in the same plan (compose-time cross-check).
    size_ref: Option<usize>,
    function: Option<PlanFunction>,
}

impl std::fmt::Debug for PlanField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanField")
            .field("label", &self.label)
            .field("base", &self.base)
            .field("size", &self.size)
            .finish()
    }
}

/// Compiles `fields` into a flat plan. `complete` marks plans spanning a
/// whole message (header + body, the composer case): there a function
/// whose target is absent can only be a spec-authoring bug and is
/// rejected; partial (parser header/body) plans tolerate it because the
/// parser never evaluates functions.
fn compile_plan(
    spec: &MdlSpec,
    marshallers: &MarshallerRegistry,
    fields: &[&FieldSpec],
    interner: &mut LabelInterner,
    complete: bool,
) -> Result<Vec<PlanField>> {
    let mut plan: Vec<PlanField> = Vec::with_capacity(fields.len());
    for field in fields {
        let base = spec.base_type(&field.label);
        plan.push(PlanField {
            label: field.label.clone(),
            base: interner.intern(base),
            size: field.size.clone(),
            mandatory: field.mandatory,
            marshaller: marshallers.get(base)?.clone(),
            size_ref: None,
            function: None,
        });
    }
    for i in 0..plan.len() {
        if let SizeSpec::FieldRef(ref_label) = &plan[i].size {
            // `MdlSpec::validate` guarantees the reference resolves to an
            // earlier field for full message plans; header-only plans may
            // legitimately not contain body-referenced fields.
            plan[i].size_ref = plan[..i].iter().position(|p| p.label == *ref_label);
        }
        let Some(def) = spec.types().get(plan[i].label.as_str()) else { continue };
        let Some(function) = &def.function else { continue };
        plan[i].function = Some(match function.name.as_str() {
            "f-length" => {
                let target_label = function.args.first().ok_or_else(|| {
                    MdlError::Function("f-length requires one field argument".into())
                })?;
                match plan.iter().position(|p| p.label == *target_label) {
                    Some(target) => PlanFunction::Length { target },
                    None if complete => {
                        return Err(MdlError::Function(format!(
                            "f-length target {target_label:?} is not a field of this message"
                        )));
                    }
                    // Partial (parser) plan: the function never runs.
                    None => continue,
                }
            }
            "f-count" => {
                let target_label = function.args.first().ok_or_else(|| {
                    MdlError::Function("f-count requires one field argument".into())
                })?;
                PlanFunction::Count { target: interner.intern(target_label) }
            }
            "f-total-length" => PlanFunction::TotalLength,
            other => {
                return Err(MdlError::Function(format!("unknown field function {other:?}")));
            }
        });
    }
    Ok(plan)
}

fn resolve_size(
    size: &SizeSpec,
    message: &AbstractMessage,
    reader_pos: u64,
) -> Result<ResolvedSize> {
    match size {
        SizeSpec::Bits(bits) => Ok(ResolvedSize::Bits(u64::from(*bits))),
        SizeSpec::FieldRef(label) => {
            let value = message
                .field(label)
                .ok_or_else(|| MdlError::Parse {
                    reason: format!("length field {label:?} has not been parsed yet"),
                    offset_bits: reader_pos,
                })?
                .value()?;
            Ok(ResolvedSize::Bytes(value.as_u64()?))
        }
        SizeSpec::SelfDelimiting => Ok(ResolvedSize::SelfDelimiting),
        SizeSpec::Remaining => Ok(ResolvedSize::Remaining),
        SizeSpec::Delimiter(_) | SizeSpec::DelimitedPairs { .. } => {
            Err(MdlError::Spec("delimiter sizes are only valid in text MDLs".into()))
        }
    }
}

/// Parses wire bytes into abstract messages by interpreting a binary
/// [`MdlSpec`].
#[derive(Debug, Clone)]
pub struct BinaryParser {
    spec: Arc<MdlSpec>,
    protocol: Label,
    header: Vec<PlanField>,
    /// Body plans, parallel to `spec.messages()`.
    bodies: Vec<(Label, Vec<PlanField>)>,
}

impl BinaryParser {
    /// Creates a parser for `spec`, compiling its field plans.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] when the spec is not a binary MDL and
    /// [`MdlError::UnknownType`] for unregistered marshaller types.
    pub fn new(spec: Arc<MdlSpec>, marshallers: Arc<MarshallerRegistry>) -> Result<Self> {
        if spec.kind() != MdlKind::Binary {
            return Err(MdlError::Spec(format!(
                "protocol {:?} is not a binary MDL",
                spec.protocol()
            )));
        }
        let mut interner = LabelInterner::default();
        let header_refs: Vec<&FieldSpec> = spec.header().iter().collect();
        let header = compile_plan(&spec, &marshallers, &header_refs, &mut interner, false)?;
        let mut bodies = Vec::with_capacity(spec.messages().len());
        for message in spec.messages() {
            let field_refs: Vec<&FieldSpec> = message.fields.iter().collect();
            bodies.push((
                message.name.clone(),
                compile_plan(&spec, &marshallers, &field_refs, &mut interner, false)?,
            ));
        }
        let protocol = spec.protocol_label().clone();
        Ok(BinaryParser { spec, protocol, header, bodies })
    }

    fn parse_field(
        &self,
        reader: &mut BitReader<'_>,
        message: &mut AbstractMessage,
        field: &PlanField,
    ) -> Result<()> {
        let size = resolve_size(&field.size, message, reader.position_bits())?;
        let start = reader.position_bits();
        let value = field.marshaller.unmarshal(reader, size)?;
        let consumed = (reader.position_bits() - start) as u32;
        message.push_field(Field::Primitive(PrimitiveField::with_length(
            field.label.clone(),
            field.base.clone(),
            consumed,
            value,
        )));
        if field.mandatory {
            message.mark_mandatory(field.label.clone());
        }
        Ok(())
    }

    /// Parses one message from the start of `bytes`, returning it together
    /// with the number of bytes consumed (callers feeding TCP streams use
    /// the count to advance their buffer).
    ///
    /// # Errors
    ///
    /// Fails on truncated input or when no message rule matches the header.
    pub fn parse_prefix(&self, bytes: &[u8]) -> Result<(AbstractMessage, usize)> {
        let mut reader = BitReader::new(bytes);
        let mut message = AbstractMessage::new(self.protocol.clone(), Label::empty());
        for field in &self.header {
            self.parse_field(&mut reader, &mut message, field)?;
        }
        let selected =
            self.spec.messages().iter().position(|m| m.rule.matches(&message)).ok_or_else(
                || MdlError::NoRuleMatched { protocol: self.spec.protocol().to_owned() },
            )?;
        let (name, body) = &self.bodies[selected];
        message.set_name(name.clone());
        for field in body {
            self.parse_field(&mut reader, &mut message, field)?;
        }
        let consumed = reader.position_bits().div_ceil(8) as usize;
        Ok((message, consumed))
    }

    /// Parses one message, requiring that it spans the whole input (the
    /// datagram case).
    ///
    /// # Errors
    ///
    /// Fails as [`BinaryParser::parse_prefix`]; trailing bytes are
    /// tolerated only if they are zero padding.
    pub fn parse(&self, bytes: &[u8]) -> Result<AbstractMessage> {
        let (message, _) = self.parse_prefix(bytes)?;
        Ok(message)
    }
}

/// Composes abstract messages to wire bytes by interpreting a binary
/// [`MdlSpec`].
#[derive(Debug, Clone)]
pub struct BinaryComposer {
    /// Full (header + body) plans and pre-parsed rule bindings, parallel
    /// to the spec's message sections.
    messages: Vec<CompiledMessage>,
}

#[derive(Debug, Clone)]
struct CompiledMessage {
    name: Label,
    plan: Vec<PlanField>,
    /// Rule discriminators: plan index → literal value to fill when the
    /// message leaves the field empty.
    bindings: Vec<(usize, Value)>,
}

impl BinaryComposer {
    /// Creates a composer for `spec`, compiling its field plans.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] when the spec is not a binary MDL and
    /// [`MdlError::UnknownType`] for unregistered marshaller types.
    pub fn new(spec: Arc<MdlSpec>, marshallers: Arc<MarshallerRegistry>) -> Result<Self> {
        if spec.kind() != MdlKind::Binary {
            return Err(MdlError::Spec(format!(
                "protocol {:?} is not a binary MDL",
                spec.protocol()
            )));
        }
        let mut interner = LabelInterner::default();
        let mut messages = Vec::with_capacity(spec.messages().len());
        for message in spec.messages() {
            let fields: Vec<&FieldSpec> =
                spec.header().iter().chain(message.fields.iter()).collect();
            let plan = compile_plan(&spec, &marshallers, &fields, &mut interner, true)?;
            let mut bindings = Vec::new();
            for (label, literal) in message.rule.bindings() {
                let Some(index) = plan.iter().position(|p| p.label == label) else {
                    continue;
                };
                let value = match literal.parse::<u64>() {
                    Ok(v) => Value::Unsigned(v),
                    Err(_) => Value::Str(literal.to_owned()),
                };
                bindings.push((index, value));
            }
            messages.push(CompiledMessage { name: message.name.clone(), plan, bindings });
        }
        Ok(BinaryComposer { messages })
    }

    /// The value of plan field `index`: the compose-time override when one
    /// was computed, the message's own field otherwise.
    fn value_of<'a>(
        &self,
        compiled: &'a CompiledMessage,
        overrides: &'a [Option<Value>],
        message: &'a AbstractMessage,
        index: usize,
    ) -> Result<&'a Value> {
        if let Some(value) = &overrides[index] {
            return Ok(value);
        }
        let field = &compiled.plan[index];
        message
            .field(&field.label)
            .ok_or_else(|| {
                MdlError::Compose(format!(
                    "message {:?} is missing field {:?}",
                    message.name(),
                    field.label
                ))
            })?
            .value()
            .map_err(MdlError::from)
    }

    /// Wire width in bits of plan field `index` given current values.
    fn wire_bits_of(
        &self,
        compiled: &CompiledMessage,
        overrides: &[Option<Value>],
        message: &AbstractMessage,
        index: usize,
    ) -> Result<u64> {
        let field = &compiled.plan[index];
        let sizing = match &field.size {
            SizeSpec::Bits(bits) => ResolvedSize::Bits(u64::from(*bits)),
            SizeSpec::SelfDelimiting => ResolvedSize::SelfDelimiting,
            // FieldRef / remaining: width follows the value.
            _ => ResolvedSize::Remaining,
        };
        let value = self.value_of(compiled, overrides, message, index)?;
        field.marshaller.wire_bits(value, sizing)
    }

    /// Composes `message` to its wire image.
    ///
    /// Field functions (`f-length`, `f-total-length`, ...) are evaluated
    /// first, so length fields need not be pre-computed by the caller; the
    /// message itself is never modified (computed values live in a
    /// compose-local override table).
    ///
    /// # Errors
    ///
    /// Fails when the message type is unknown to the spec, a field is
    /// missing, or a value cannot be marshalled.
    pub fn compose(&self, message: &AbstractMessage) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compose_into(message, &mut out)?;
        Ok(out)
    }

    /// Composes `message` into a caller-provided buffer (cleared first),
    /// amortising the output allocation across messages.
    ///
    /// # Errors
    ///
    /// Fails as [`BinaryComposer::compose`].
    pub fn compose_into(&self, message: &AbstractMessage, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        let compiled = self
            .messages
            .iter()
            .find(|m| m.name == message.name())
            .ok_or_else(|| MdlError::UnknownMessage(message.name().to_owned()))?;
        let plan = &compiled.plan;

        // Compose-local overrides: rule discriminators and function-computed
        // length fields. The caller's message is left untouched.
        let mut overrides: Vec<Option<Value>> = vec![None; plan.len()];
        for (index, literal) in &compiled.bindings {
            let needs_fill = match message.field(&plan[*index].label) {
                None => true,
                Some(f) => f.value().map(Value::is_empty).unwrap_or(false),
            };
            if needs_fill {
                overrides[*index] = Some(literal.clone());
            }
        }
        // Value-local functions first; f-total-length needs them settled.
        for index in 0..plan.len() {
            match &plan[index].function {
                Some(PlanFunction::Length { target }) => {
                    let bits = self.wire_bits_of(compiled, &overrides, message, *target)?;
                    overrides[index] = Some(Value::Unsigned(bits / 8));
                }
                Some(PlanFunction::Count { target }) => {
                    let count = match message.field(target) {
                        Some(f) => match f.value() {
                            Ok(Value::List(items)) => items.len() as u64,
                            Ok(_) => 1,
                            Err(_) => {
                                f.as_structured().map(|s| s.fields().len()).unwrap_or(0) as u64
                            }
                        },
                        None => 0,
                    };
                    overrides[index] = Some(Value::Unsigned(count));
                }
                _ => {}
            }
        }
        for index in 0..plan.len() {
            if matches!(plan[index].function, Some(PlanFunction::TotalLength)) {
                let mut total_bits = 0u64;
                for i in 0..plan.len() {
                    total_bits += self.wire_bits_of(compiled, &overrides, message, i)?;
                }
                overrides[index] = Some(Value::Unsigned(total_bits / 8));
            }
        }

        let mut writer = BitWriter::with_buffer(std::mem::take(out));
        for (index, field) in plan.iter().enumerate() {
            let size = match &field.size {
                SizeSpec::Bits(bits) => ResolvedSize::Bits(u64::from(*bits)),
                SizeSpec::FieldRef(ref_label) => {
                    // The wire width follows the value; cross-check that the
                    // (possibly auto-computed) length field agrees.
                    let declared = match field.size_ref {
                        Some(ref_index) => {
                            self.value_of(compiled, &overrides, message, ref_index)?.as_u64()?
                        }
                        None => {
                            return Err(MdlError::Compose(format!(
                                "missing length field {ref_label:?}"
                            )))
                        }
                    };
                    let value = self.value_of(compiled, &overrides, message, index)?;
                    let actual = value.as_bytes().map(|b| b.len() as u64).unwrap_or(declared);
                    if declared != actual {
                        return Err(MdlError::Compose(format!(
                            "length field {ref_label:?} is {declared} but {:?} is {actual} bytes",
                            field.label
                        )));
                    }
                    ResolvedSize::Bytes(actual)
                }
                SizeSpec::SelfDelimiting => ResolvedSize::SelfDelimiting,
                SizeSpec::Remaining => ResolvedSize::Remaining,
                SizeSpec::Delimiter(_) | SizeSpec::DelimitedPairs { .. } => {
                    return Err(MdlError::Spec(
                        "delimiter sizes are only valid in text MDLs".into(),
                    ))
                }
            };
            let value = self.value_of(compiled, &overrides, message, index)?;
            field.marshaller.marshal(&mut writer, value, size)?;
        }
        *out = writer.into_bytes();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use crate::spec::MessageSpec;
    use crate::types::{FieldFunction, TypeDef};
    use starlink_message::Value;

    /// A miniature SLP-like binary spec exercising fixed widths, rules,
    /// field references and functions together.
    fn spec() -> Arc<MdlSpec> {
        Arc::new(
            MdlSpec::new("MiniSLP", MdlKind::Binary)
                .type_entry("SRVType", TypeDef::plain("String"))
                .type_entry(
                    "SRVTypeLength",
                    TypeDef::with_function(
                        "Integer",
                        FieldFunction::new("f-length", vec!["SRVType".into()]),
                    ),
                )
                .type_entry(
                    "MessageLength",
                    TypeDef::with_function("Integer", FieldFunction::new("f-total-length", vec![])),
                )
                .type_entry("URL", TypeDef::plain("String"))
                .type_entry(
                    "URLLength",
                    TypeDef::with_function(
                        "Integer",
                        FieldFunction::new("f-length", vec!["URL".into()]),
                    ),
                )
                .header_field(FieldSpec::new("Version", SizeSpec::Bits(8)))
                .header_field(FieldSpec::new("FunctionID", SizeSpec::Bits(8)))
                .header_field(FieldSpec::new("MessageLength", SizeSpec::Bits(24)))
                .header_field(FieldSpec::new("XID", SizeSpec::Bits(16)))
                .message(
                    MessageSpec::new("SrvRequest", Rule::parse("FunctionID=1").unwrap())
                        .field(FieldSpec::new("SRVTypeLength", SizeSpec::Bits(16)))
                        .field(
                            FieldSpec::new("SRVType", SizeSpec::FieldRef("SRVTypeLength".into()))
                                .required(),
                        ),
                )
                .message(
                    MessageSpec::new("SrvReply", Rule::parse("FunctionID=2").unwrap())
                        .field(FieldSpec::new("URLLength", SizeSpec::Bits(16)))
                        .field(
                            FieldSpec::new("URL", SizeSpec::FieldRef("URLLength".into()))
                                .required(),
                        ),
                ),
        )
    }

    fn registry() -> Arc<MarshallerRegistry> {
        Arc::new(MarshallerRegistry::with_builtins())
    }

    fn request(service: &str) -> AbstractMessage {
        let mut msg = spec().schema("SrvRequest").unwrap().instantiate();
        msg.set(&"Version".into(), Value::Unsigned(2)).unwrap();
        msg.set(&"XID".into(), Value::Unsigned(0xBEEF)).unwrap();
        msg.set(&"SRVType".into(), Value::Str(service.into())).unwrap();
        msg
    }

    #[test]
    fn compose_then_parse_roundtrips() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        let wire = composer.compose(&request("service:printer")).unwrap();
        let parsed = parser.parse(&wire).unwrap();
        assert_eq!(parsed.name(), "SrvRequest");
        assert_eq!(parsed.get(&"XID".into()).unwrap().as_u64().unwrap(), 0xBEEF);
        assert_eq!(parsed.get(&"SRVType".into()).unwrap().as_str().unwrap(), "service:printer");
    }

    #[test]
    fn compose_fills_length_fields() {
        let spec = spec();
        let composer = BinaryComposer::new(spec, registry()).unwrap();
        let wire = composer.compose(&request("ab")).unwrap();
        // Header: version(1) + functionID(1) + messageLength(3) + xid(2) = 7
        // Body: srvTypeLength(2) + "ab"(2) = 4; total = 11.
        assert_eq!(wire.len(), 11);
        assert_eq!(&wire[2..5], &[0, 0, 11]); // MessageLength auto-filled
        assert_eq!(&wire[7..9], &[0, 2]); // SRVTypeLength auto-filled
    }

    #[test]
    fn compose_does_not_mutate_the_message() {
        let spec = spec();
        let composer = BinaryComposer::new(spec, registry()).unwrap();
        let msg = request("service:printer");
        let before = msg.clone();
        composer.compose(&msg).unwrap();
        assert_eq!(msg, before, "compose must not write computed fields back");
    }

    #[test]
    fn compose_into_reuses_the_buffer() {
        let spec = spec();
        let composer = BinaryComposer::new(spec, registry()).unwrap();
        let msg = request("service:printer");
        let mut scratch = Vec::new();
        composer.compose_into(&msg, &mut scratch).unwrap();
        let first = scratch.clone();
        let capacity = scratch.capacity();
        composer.compose_into(&msg, &mut scratch).unwrap();
        assert_eq!(scratch, first);
        assert_eq!(scratch.capacity(), capacity, "no regrowth on reuse");
    }

    #[test]
    fn compose_fills_rule_discriminator() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let wire = composer.compose(&request("x")).unwrap();
        assert_eq!(wire[1], 1); // FunctionID = 1 from the rule
    }

    #[test]
    fn rule_selects_correct_body() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec.clone(), registry()).unwrap();
        let mut reply = spec.schema("SrvReply").unwrap().instantiate();
        reply.set(&"URL".into(), Value::Str("service:printer://10.0.0.9".into())).unwrap();
        let wire = composer.compose(&reply).unwrap();
        let parsed = parser.parse(&wire).unwrap();
        assert_eq!(parsed.name(), "SrvReply");
    }

    #[test]
    fn unmatched_rule_is_an_error() {
        let spec = spec();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        // FunctionID = 9 matches neither message.
        let bytes = [2u8, 9, 0, 0, 7, 0, 0];
        assert!(matches!(parser.parse(&bytes), Err(MdlError::NoRuleMatched { .. })));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        let wire = composer.compose(&request("service:printer")).unwrap();
        assert!(matches!(parser.parse(&wire[..wire.len() - 3]), Err(MdlError::Parse { .. })));
    }

    #[test]
    fn stale_length_field_is_rejected() {
        // A hand-built message with a length field that cannot be
        // reconciled: f-length overwrites it, so corrupt the spec path by
        // removing the function. This guards the cross-check.
        let spec = Arc::new(
            MdlSpec::new("X", MdlKind::Binary)
                .type_entry("Data", TypeDef::plain("String"))
                .message(
                    MessageSpec::new("M", Rule::Always)
                        .field(FieldSpec::new("Len", SizeSpec::Bits(8)))
                        .field(FieldSpec::new("Data", SizeSpec::FieldRef("Len".into()))),
                ),
        );
        let composer = BinaryComposer::new(spec, registry()).unwrap();
        let mut msg = AbstractMessage::new("X", "M");
        msg.push_field(Field::primitive("Len", 99u8)); // wrong on purpose
        msg.push_field(Field::primitive("Data", "abc"));
        let err = composer.compose(&msg).unwrap_err();
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn parse_prefix_reports_consumed_bytes() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        let mut wire = composer.compose(&request("svc")).unwrap();
        let message_len = wire.len();
        wire.extend_from_slice(&[0xAA; 4]); // trailing bytes from a stream
        let (msg, consumed) = parser.parse_prefix(&wire).unwrap();
        assert_eq!(consumed, message_len);
        assert_eq!(msg.name(), "SrvRequest");
    }

    #[test]
    fn mandatory_fields_are_marked() {
        let spec = spec();
        let composer = BinaryComposer::new(spec.clone(), registry()).unwrap();
        let parser = BinaryParser::new(spec, registry()).unwrap();
        let wire = composer.compose(&request("svc")).unwrap();
        let parsed = parser.parse(&wire).unwrap();
        assert!(parsed.is_mandatory("SRVType"));
    }

    #[test]
    fn text_spec_is_rejected() {
        let text_spec = Arc::new(MdlSpec::new("T", MdlKind::Text));
        assert!(BinaryParser::new(text_spec.clone(), registry()).is_err());
        assert!(BinaryComposer::new(text_spec, registry()).is_err());
    }
}
