//! Field size declarations and their runtime resolution.
//!
//! An MDL field's size entry takes several concrete forms in the paper:
//!
//! * a fixed **bit count** in binary specs (`<XID>16</XID>`, Fig. 7);
//! * a **field reference** whose value gives the byte length
//!   (`<LangTag>LangTagLen</LangTag>`, Fig. 7);
//! * one or two **delimiter byte lists** in text specs
//!   (`<Version>13,10</Version>`, `<Fields>13,10:58</Fields>`, Fig. 11);
//! * a **quoted delimiter string** in text specs
//!   (`<Action>'&lt;/a:Action&gt;'</Action>`) — the form XML-envelope
//!   protocols like WS-Discovery use, where field boundaries are literal
//!   markup tags rather than single control bytes.

use crate::error::{MdlError, Result};

/// A declared field size, straight from the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SizeSpec {
    /// Fixed size in bits (binary MDLs).
    Bits(u32),
    /// Size in **bytes** given by the value of a previously parsed field.
    FieldRef(String),
    /// Field extends to (and consumes) the delimiter byte sequence
    /// (text MDLs).
    Delimiter(Vec<u8>),
    /// Repeated `label<split>value` lines, each terminated by `line`,
    /// ending at an empty line (text MDL `<Fields>` entry).
    DelimitedPairs {
        /// Line terminator bytes (e.g. `\r\n`).
        line: Vec<u8>,
        /// Label/value split byte(s) (e.g. `:`).
        split: Vec<u8>,
    },
    /// The marshaller self-delimits (e.g. DNS FQDN label encoding).
    SelfDelimiting,
    /// The field consumes everything to the end of the message (bodies).
    Remaining,
}

impl SizeSpec {
    /// Parses the textual size entry of a binary MDL field.
    ///
    /// Digits mean bits; anything else is a field reference.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] for empty entries.
    pub fn parse_binary(text: &str) -> Result<Self> {
        let text = text.trim();
        if text.is_empty() {
            return Err(MdlError::Spec("empty size entry".into()));
        }
        if text.eq_ignore_ascii_case("rest") || text.eq_ignore_ascii_case("remaining") {
            return Ok(SizeSpec::Remaining);
        }
        if text.eq_ignore_ascii_case("self") {
            return Ok(SizeSpec::SelfDelimiting);
        }
        if text.chars().all(|c| c.is_ascii_digit()) {
            let bits: u32 = text
                .parse()
                .map_err(|_| MdlError::Spec(format!("bit count {text:?} out of range")))?;
            return Ok(SizeSpec::Bits(bits));
        }
        Ok(SizeSpec::FieldRef(text.to_owned()))
    }

    /// Parses the textual size entry of a text MDL field.
    ///
    /// A comma-separated byte list is a delimiter (`13,10` → CRLF); with a
    /// `:`-separated second list it declares repeated header pairs
    /// (`13,10:58`); a single-quoted string (`'</a:Action>'`) is a literal
    /// multi-byte delimiter (XML-envelope tags). Other non-numeric entries
    /// are field references.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] for empty or out-of-range byte values,
    /// or an empty quoted delimiter.
    pub fn parse_text(text: &str) -> Result<Self> {
        let text = text.trim();
        if text.is_empty() {
            return Err(MdlError::Spec("empty size entry".into()));
        }
        if text.eq_ignore_ascii_case("rest") || text.eq_ignore_ascii_case("remaining") {
            return Ok(SizeSpec::Remaining);
        }
        if let Some(inner) = text.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')) {
            if inner.is_empty() {
                return Err(MdlError::Spec("empty quoted delimiter".into()));
            }
            return Ok(SizeSpec::Delimiter(inner.as_bytes().to_vec()));
        }
        let parse_bytes = |list: &str| -> Result<Vec<u8>> {
            list.split(',')
                .map(|part| {
                    part.trim().parse::<u8>().map_err(|_| {
                        MdlError::Spec(format!("invalid delimiter byte {part:?} in {text:?}"))
                    })
                })
                .collect()
        };
        if let Some((line, split)) = text.split_once(':') {
            return Ok(SizeSpec::DelimitedPairs {
                line: parse_bytes(line)?,
                split: parse_bytes(split)?,
            });
        }
        if text
            .split(',')
            .all(|p| p.trim().chars().all(|c| c.is_ascii_digit()) && !p.trim().is_empty())
        {
            return Ok(SizeSpec::Delimiter(parse_bytes(text)?));
        }
        Ok(SizeSpec::FieldRef(text.to_owned()))
    }

    /// Renders the spec back to its MDL text form.
    pub fn to_text(&self) -> String {
        match self {
            SizeSpec::Bits(bits) => bits.to_string(),
            SizeSpec::FieldRef(label) => label.clone(),
            SizeSpec::Delimiter(bytes) => {
                // A multi-byte printable delimiter that the numeric form
                // would garble (an XML tag, not a byte list) renders back
                // in its quoted form; control bytes and single-byte
                // delimiters keep the paper's numeric rendering.
                let printable = bytes.iter().all(|b| (32..=126).contains(b) && *b != b'\'');
                let tag_like = bytes.iter().any(|b| !b.is_ascii_digit() && *b != b',');
                if bytes.len() > 1 && printable && tag_like {
                    format!("'{}'", String::from_utf8_lossy(bytes))
                } else {
                    bytes.iter().map(u8::to_string).collect::<Vec<_>>().join(",")
                }
            }
            SizeSpec::DelimitedPairs { line, split } => format!(
                "{}:{}",
                line.iter().map(u8::to_string).collect::<Vec<_>>().join(","),
                split.iter().map(u8::to_string).collect::<Vec<_>>().join(",")
            ),
            SizeSpec::SelfDelimiting => "self".into(),
            SizeSpec::Remaining => "rest".into(),
        }
    }
}

/// A size after resolving field references against already-parsed fields:
/// what a marshaller actually consumes or produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedSize {
    /// Exactly this many bits.
    Bits(u64),
    /// Exactly this many bytes (from a field reference).
    Bytes(u64),
    /// The marshaller determines its own extent.
    SelfDelimiting,
    /// Everything remaining in the input.
    Remaining,
}

impl ResolvedSize {
    /// The size in bits when it is statically known.
    pub fn bits(&self) -> Option<u64> {
        match self {
            ResolvedSize::Bits(b) => Some(*b),
            ResolvedSize::Bytes(b) => Some(b * 8),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_digits_are_bits() {
        assert_eq!(SizeSpec::parse_binary("16").unwrap(), SizeSpec::Bits(16));
    }

    #[test]
    fn binary_label_is_field_ref() {
        assert_eq!(
            SizeSpec::parse_binary("LangTagLen").unwrap(),
            SizeSpec::FieldRef("LangTagLen".into())
        );
    }

    #[test]
    fn binary_rest_and_self() {
        assert_eq!(SizeSpec::parse_binary("rest").unwrap(), SizeSpec::Remaining);
        assert_eq!(SizeSpec::parse_binary("self").unwrap(), SizeSpec::SelfDelimiting);
    }

    #[test]
    fn text_single_delimiter() {
        // Fig. 11: <Version>13,10</Version>
        assert_eq!(SizeSpec::parse_text("13,10").unwrap(), SizeSpec::Delimiter(vec![13, 10]));
        // Fig. 11: <Method>32</Method> — a single space byte.
        assert_eq!(SizeSpec::parse_text("32").unwrap(), SizeSpec::Delimiter(vec![32]));
    }

    #[test]
    fn text_pairs_delimiter() {
        // Fig. 11: <Fields>13,10:58</Fields>
        assert_eq!(
            SizeSpec::parse_text("13,10:58").unwrap(),
            SizeSpec::DelimitedPairs { line: vec![13, 10], split: vec![58] }
        );
    }

    #[test]
    fn text_field_ref_and_rest() {
        assert_eq!(
            SizeSpec::parse_text("ContentLength").unwrap(),
            SizeSpec::FieldRef("ContentLength".into())
        );
        assert_eq!(SizeSpec::parse_text("rest").unwrap(), SizeSpec::Remaining);
    }

    #[test]
    fn rejects_bad_entries() {
        assert!(SizeSpec::parse_binary("").is_err());
        assert!(SizeSpec::parse_text("300,10").is_err());
        assert!(SizeSpec::parse_text("13,:58").is_err());
        assert!(SizeSpec::parse_text("''").is_err());
    }

    #[test]
    fn text_quoted_string_delimiter() {
        // XML-envelope boundaries: the delimiter is a literal tag.
        assert_eq!(
            SizeSpec::parse_text("'</a:Action>'").unwrap(),
            SizeSpec::Delimiter(b"</a:Action>".to_vec())
        );
        // Quoted digits are still a literal string, not a byte list.
        assert_eq!(SizeSpec::parse_text("'10'").unwrap(), SizeSpec::Delimiter(b"10".to_vec()));
    }

    #[test]
    fn quoted_delimiter_roundtrips_via_to_text() {
        for text in ["'</a:Action>'", "'</d:Types><d:XAddrs>'"] {
            let spec = SizeSpec::parse_text(text).unwrap();
            assert_eq!(spec.to_text(), text);
            assert_eq!(SizeSpec::parse_text(&spec.to_text()).unwrap(), spec);
        }
        // Numeric forms keep their numeric rendering (Fig. 11 fidelity).
        assert_eq!(SizeSpec::parse_text("13,10").unwrap().to_text(), "13,10");
        assert_eq!(SizeSpec::parse_text("32").unwrap().to_text(), "32");
    }

    type ParseFn = fn(&str) -> Result<SizeSpec>;

    #[test]
    fn to_text_roundtrip() {
        let cases: [(&str, ParseFn); 5] = [
            ("16", SizeSpec::parse_binary),
            ("LangTagLen", SizeSpec::parse_binary),
            ("13,10", SizeSpec::parse_text),
            ("13,10:58", SizeSpec::parse_text),
            ("rest", SizeSpec::parse_text),
        ];
        for (text, parse) in cases {
            assert_eq!(parse(text).unwrap().to_text(), text);
        }
    }

    #[test]
    fn resolved_bits() {
        assert_eq!(ResolvedSize::Bits(12).bits(), Some(12));
        assert_eq!(ResolvedSize::Bytes(3).bits(), Some(24));
        assert_eq!(ResolvedSize::Remaining.bits(), None);
    }
}
