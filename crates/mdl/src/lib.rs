//! # starlink-mdl
//!
//! The **Message Description Language** layer of the Starlink framework
//! (§IV-A of the paper): runtime-loadable specifications of protocol
//! message formats, interpreted by generic parsers and composers.
//!
//! The key property is that *no protocol-specific code exists*: a single
//! [`BinaryParser`]/[`BinaryComposer`] pair interprets every binary spec
//! (SLP, DNS, ...) and a single [`TextParser`]/[`TextComposer`] pair
//! interprets every text spec (SSDP, HTTP, ...). Loading an MDL XML
//! document ([`load_mdl`]) and generating an [`MdlCodec`] from it *is* the
//! runtime generation step the paper describes.
//!
//! Components:
//!
//! * [`BitReader`]/[`BitWriter`] — bit-granular wire I/O (field sizes are
//!   declared in bits);
//! * [`TypeTable`]/[`TypeDef`] — the `<Types>` section, including field
//!   functions such as `Integer[f-length(URLEntry)]`;
//! * [`Marshaller`]/[`MarshallerRegistry`] — pluggable per-type
//!   marshallers, extensible at runtime (the paper's FQDN example);
//! * [`SizeSpec`] — fixed bit counts, field references, text delimiters;
//! * [`Rule`] — header predicates relating message bodies to headers;
//! * [`MdlSpec`]/[`MdlCodec`]/[`MdlRegistry`] — the spec model and the
//!   generated codecs.
//!
//! ## Example: loading Fig. 11's SSDP MDL
//!
//! ```
//! use starlink_mdl::{load_mdl, MdlCodec};
//!
//! let spec = load_mdl(r#"
//!   <MDL protocol="SSDP" kind="text">
//!     <Types><MX>Integer</MX></Types>
//!     <Header type="SSDP">
//!       <Method>32</Method>
//!       <URI>32</URI>
//!       <Version>13,10</Version>
//!       <Fields>13,10:58</Fields>
//!     </Header>
//!     <Message type="SSDP_M-Search"><Rule>Method=M-SEARCH</Rule></Message>
//!   </MDL>"#)?;
//! let codec = MdlCodec::generate(spec)?;
//! let msg = codec.parse(b"M-SEARCH * HTTP/1.1\r\nST: urn:x\r\nMX: 2\r\n\r\n")?;
//! assert_eq!(msg.name(), "SSDP_M-Search");
//! assert_eq!(msg.get(&"MX".into())?.as_u64()?, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod binary;
mod bitio;
mod codec;
mod error;
mod flat;
mod functions;
mod intern;
mod marshal;
mod rule;
mod size;
mod spec;
mod text;
mod types;
mod xml_load;

pub use analyze::{analyze_mdl, flat_reject_reasons};
pub use binary::{BinaryComposer, BinaryParser};
pub use bitio::{BitReader, BitWriter};
pub use codec::{MdlCodec, MdlRegistry};
pub use error::{MdlError, Result};
pub use flat::{FlatPlan, FlatRecord, FlatView};
pub use functions::{evaluate_functions, field_wire_bits};
pub use marshal::{
    BoolMarshaller, BytesMarshaller, FqdnMarshaller, IntegerMarshaller, Ipv4Marshaller, Marshaller,
    MarshallerRegistry, SignedMarshaller, StringMarshaller,
};
pub use rule::Rule;
pub use size::{ResolvedSize, SizeSpec};
pub use spec::{FieldSpec, MdlKind, MdlSpec, MessageSpec};
pub use text::{TextComposer, TextParser};
pub use types::{FieldFunction, TypeDef, TypeTable};
pub use xml_load::{
    load_mdl, load_mdl_element, load_mdl_element_unvalidated, mdl_to_element, mdl_to_xml,
};
