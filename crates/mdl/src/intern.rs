//! Crate-internal label interner used while compiling specs into field
//! plans: every plan field sharing a base type (or any other repeated
//! name) ends up holding the same `Arc<str>` allocation.

use fxhash::FxHashMap;
use starlink_message::Label;

#[derive(Debug, Default)]
pub(crate) struct LabelInterner(FxHashMap<String, Label>);

impl LabelInterner {
    pub(crate) fn intern(&mut self, text: &str) -> Label {
        if let Some(label) = self.0.get(text) {
            return label.clone();
        }
        let label = Label::from(text);
        self.0.insert(text.to_owned(), label.clone());
        label
    }
}
