//! Loading MDL specifications from their XML documents — the runtime
//! model-loading step of §IV-A ("an MDL specification ... is loaded into
//! composers and parsers to specialise these components at runtime").
//!
//! The document grammar follows Figs. 7 and 11 of the paper:
//!
//! ```xml
//! <MDL protocol="SLP" kind="binary">
//!   <Types>
//!     <Version>Integer</Version>
//!     <URLLength>Integer[f-length(URLEntry)]</URLLength>
//!   </Types>
//!   <Header type="SLP">
//!     <Version>8</Version>
//!     <XID>16</XID>
//!   </Header>
//!   <Message type="SLPSrvRequest">
//!     <Rule>FunctionID=1</Rule>
//!     <SRVTypeLength>16</SRVTypeLength>
//!     <SRVType mandatory="true">SRVTypeLength</SRVType>
//!   </Message>
//! </MDL>
//! ```
//!
//! The only additions over the paper's listings are the explicit root
//! element with `protocol`/`kind` attributes (the paper leaves the wrapper
//! implicit) and the optional `mandatory` attribute feeding the ⊨
//! operator.

use crate::error::{MdlError, Result};
use crate::rule::Rule;
use crate::size::SizeSpec;
use crate::spec::{FieldSpec, MdlKind, MdlSpec, MessageSpec};
use crate::types::TypeDef;
use starlink_xml::Element;

fn xml_err(err: starlink_xml::XmlError) -> MdlError {
    MdlError::Xml { message: err.kind_message(), position: err.position() }
}

/// Re-anchors a span-less spec error at `element`, so size/type/rule
/// grammar failures point at the offending line of the document.
fn at_element(err: MdlError, element: &Element) -> MdlError {
    match err {
        MdlError::Spec(message) => MdlError::Xml { message, position: element.position() },
        other => other,
    }
}

fn parse_field(element: &Element, kind: MdlKind) -> Result<FieldSpec> {
    let size_text = element.text();
    let size = match kind {
        MdlKind::Binary => SizeSpec::parse_binary(&size_text),
        MdlKind::Text => SizeSpec::parse_text(&size_text),
    }
    .map_err(|e| at_element(e, element))?;
    let mut field = FieldSpec::new(element.name(), size);
    if element.attr("mandatory").map(|v| v == "true").unwrap_or(false) {
        field = field.required();
    }
    Ok(field)
}

/// Parses an MDL XML document into a validated [`MdlSpec`].
///
/// # Errors
///
/// Returns [`MdlError::Spec`] for malformed XML, unknown kinds, bad size
/// or rule entries, or a spec failing [`MdlSpec::validate`].
pub fn load_mdl(source: &str) -> Result<MdlSpec> {
    let root = Element::parse(source).map_err(xml_err)?;
    load_mdl_element(&root)
}

/// Parses an already-built XML element (root `<MDL>`) into an [`MdlSpec`].
///
/// # Errors
///
/// Same failure modes as [`load_mdl`].
pub fn load_mdl_element(root: &Element) -> Result<MdlSpec> {
    let spec = load_mdl_element_unvalidated(root)?;
    spec.validate()?;
    Ok(spec)
}

/// Parses a `<MDL>` element **without** running [`MdlSpec::validate`].
///
/// This is the static checker's entry point: `starlink-check` wants a
/// spec that violates the validator's rules (duplicate message names,
/// unresolvable field references) to still load, so [`crate::analyze_mdl`]
/// can report the violation under its lint code (MDL007, MDL001) with
/// the offending element's source span instead of an opaque load error.
/// Every runtime path keeps using the validating [`load_mdl_element`].
///
/// # Errors
///
/// Returns [`MdlError::Xml`] for grammar-level violations (bad size
/// entries, unknown kinds, malformed rules).
pub fn load_mdl_element_unvalidated(root: &Element) -> Result<MdlSpec> {
    if root.name() != "MDL" {
        return Err(MdlError::Xml {
            message: format!("expected <MDL> root, found <{}>", root.name()),
            position: root.position(),
        });
    }
    let protocol = root.required_attr("protocol").map_err(xml_err)?;
    let kind = MdlKind::parse(root.required_attr("kind").map_err(xml_err)?)?;
    let mut spec = MdlSpec::new(protocol, kind);

    if let Some(types) = root.child("Types") {
        for entry in types.children() {
            let def = TypeDef::parse(&entry.text()).map_err(|e| at_element(e, entry))?;
            spec = spec.type_entry(entry.name(), def);
        }
    }

    if let Some(header) = root.child("Header") {
        for entry in header.children() {
            spec = spec.header_field(parse_field(entry, kind)?);
        }
    }

    for message_el in root.children_named("Message") {
        let name = message_el.required_attr("type").map_err(xml_err)?;
        let rule = match message_el.child("Rule") {
            Some(rule_el) => Rule::parse(&rule_el.text()).map_err(|e| at_element(e, rule_el))?,
            None => Rule::Always,
        };
        let mut message = MessageSpec::new(name, rule);
        for entry in message_el.children() {
            if entry.name() == "Rule" {
                continue;
            }
            message = message.field(parse_field(entry, kind)?);
        }
        spec = spec.message(message);
    }

    Ok(spec)
}

/// Renders a spec back to its XML document form (used to regenerate the
/// paper's Fig. 7/11 listings from the loaded models).
pub fn mdl_to_element(spec: &MdlSpec) -> Element {
    let mut root = Element::new("MDL");
    root.set_attr("protocol", spec.protocol());
    root.set_attr("kind", spec.kind().as_str());

    if !spec.types().is_empty() {
        let mut types = Element::new("Types");
        for (label, def) in spec.types().iter() {
            types.push_child_with_text(label, def.to_text());
        }
        root.push_element(types);
    }

    if !spec.header().is_empty() {
        let mut header = Element::new("Header");
        header.set_attr("type", spec.protocol());
        for field in spec.header() {
            let mut el = Element::new(field.label.as_str());
            el.push_text(field.size.to_text());
            if field.mandatory {
                el.set_attr("mandatory", "true");
            }
            header.push_element(el);
        }
        root.push_element(header);
    }

    for message in spec.messages() {
        let mut el = Element::new("Message");
        el.set_attr("type", message.name.as_str());
        let rule_text = message.rule.to_text();
        if !rule_text.is_empty() {
            el.push_child_with_text("Rule", rule_text);
        }
        for field in &message.fields {
            let mut field_el = Element::new(field.label.as_str());
            field_el.push_text(field.size.to_text());
            if field.mandatory {
                field_el.set_attr("mandatory", "true");
            }
            el.push_element(field_el);
        }
        root.push_element(el);
    }
    root
}

/// Renders a spec to a pretty-printed XML string.
pub fn mdl_to_xml(spec: &MdlSpec) -> String {
    starlink_xml::to_string_pretty(&mdl_to_element(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A condensed version of Fig. 7 (SLP, binary).
    const SLP_MDL: &str = r#"
    <MDL protocol="SLP" kind="binary">
      <Types>
        <Version>Integer</Version>
        <SRVType>String</SRVType>
        <SRVTypeLength>Integer[f-length(SRVType)]</SRVTypeLength>
        <MessageLength>Integer[f-total-length()]</MessageLength>
      </Types>
      <Header type="SLP">
        <Version>8</Version>
        <FunctionID>8</FunctionID>
        <MessageLength>24</MessageLength>
        <XID>16</XID>
      </Header>
      <Message type="SLPSrvRequest">
        <Rule>FunctionID=1</Rule>
        <SRVTypeLength>16</SRVTypeLength>
        <SRVType mandatory="true">SRVTypeLength</SRVType>
      </Message>
    </MDL>"#;

    /// Fig. 11 verbatim in structure (SSDP, text).
    const SSDP_MDL: &str = r#"
    <MDL protocol="SSDP" kind="text">
      <Types>
        <Method>String</Method>
        <URI>String</URI>
        <Version>String</Version>
        <ST>String</ST>
        <MX>Integer</MX>
      </Types>
      <Header type="SSDP">
        <Method>32</Method>
        <URI>32</URI>
        <Version>13,10</Version>
        <Fields>13,10:58</Fields>
      </Header>
      <Message type="SSDP_M-Search">
        <Rule>Method=M-SEARCH</Rule>
      </Message>
      <Message type="SSDP_Resp">
        <Rule>Method=HTTP/1.1</Rule>
      </Message>
    </MDL>"#;

    #[test]
    fn loads_binary_mdl() {
        let spec = load_mdl(SLP_MDL).unwrap();
        assert_eq!(spec.protocol(), "SLP");
        assert_eq!(spec.kind(), MdlKind::Binary);
        assert_eq!(spec.header().len(), 4);
        assert_eq!(spec.messages().len(), 1);
        assert_eq!(spec.header()[2].size, SizeSpec::Bits(24));
        let msg = &spec.messages()[0];
        assert_eq!(msg.fields[1].size, SizeSpec::FieldRef("SRVTypeLength".into()));
        assert!(msg.fields[1].mandatory);
    }

    #[test]
    fn loads_text_mdl_fig11() {
        let spec = load_mdl(SSDP_MDL).unwrap();
        assert_eq!(spec.kind(), MdlKind::Text);
        assert_eq!(spec.header()[0].size, SizeSpec::Delimiter(vec![32]));
        assert_eq!(
            spec.header()[3].size,
            SizeSpec::DelimitedPairs { line: vec![13, 10], split: vec![58] }
        );
        assert_eq!(spec.messages().len(), 2);
    }

    #[test]
    fn function_types_parse() {
        let spec = load_mdl(SLP_MDL).unwrap();
        let def = spec.types().get("SRVTypeLength").unwrap();
        assert_eq!(def.function.as_ref().unwrap().name, "f-length");
    }

    #[test]
    fn roundtrip_via_writer() {
        for source in [SLP_MDL, SSDP_MDL] {
            let spec = load_mdl(source).unwrap();
            let rendered = mdl_to_xml(&spec);
            let reloaded = load_mdl(&rendered).unwrap();
            assert_eq!(spec, reloaded);
        }
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(load_mdl("<NotMDL/>").is_err());
    }

    #[test]
    fn rejects_missing_attributes() {
        assert!(load_mdl("<MDL kind=\"binary\"/>").is_err());
        assert!(load_mdl("<MDL protocol=\"X\"/>").is_err());
        assert!(load_mdl("<MDL protocol=\"X\" kind=\"quantum\"/>").is_err());
    }

    #[test]
    fn rejects_invalid_spec_semantics() {
        // Forward reference caught by MdlSpec::validate.
        let bad = r#"
        <MDL protocol="X" kind="binary">
          <Message type="M">
            <Data>Len</Data>
            <Len>16</Len>
          </Message>
        </MDL>"#;
        assert!(load_mdl(bad).is_err());
    }

    #[test]
    fn message_without_rule_is_always() {
        let src = r#"
        <MDL protocol="X" kind="binary">
          <Message type="Only"><A>8</A></Message>
        </MDL>"#;
        let spec = load_mdl(src).unwrap();
        assert_eq!(spec.messages()[0].rule, Rule::Always);
    }
}
