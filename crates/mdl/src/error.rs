//! Error type for MDL loading, parsing and composing.

use starlink_message::MessageError;
use std::fmt;

/// Error raised by the MDL layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MdlError {
    /// The MDL XML document was malformed or violated the spec grammar.
    Spec(String),
    /// A load-time failure located in the XML source document.
    Xml {
        /// Human-readable reason.
        message: String,
        /// Where the offending construct sits (1-based line/column;
        /// `0:0` when unknown).
        position: starlink_xml::Position,
    },
    /// A field referenced a type with no registered marshaller.
    UnknownType(String),
    /// A field function (`f-length`, ...) was unknown or misused.
    Function(String),
    /// Wire bytes could not be parsed; `offset_bits` locates the failure.
    Parse {
        /// Human-readable reason.
        reason: String,
        /// Bit offset into the input at which parsing failed.
        offset_bits: u64,
    },
    /// No `<Message>` rule matched the parsed header.
    NoRuleMatched {
        /// The protocol whose spec was used.
        protocol: String,
    },
    /// A message could not be composed to wire format.
    Compose(String),
    /// The abstract message named a type absent from the spec.
    UnknownMessage(String),
    /// An underlying abstract-message operation failed.
    Message(MessageError),
}

impl fmt::Display for MdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdlError::Spec(msg) => write!(f, "invalid MDL specification: {msg}"),
            MdlError::Xml { message, position } => {
                write!(f, "invalid MDL specification")?;
                if *position != starlink_xml::Position::default() {
                    write!(f, " at {position}")?;
                }
                write!(f, ": {message}")
            }
            MdlError::UnknownType(name) => write!(f, "no marshaller registered for type {name:?}"),
            MdlError::Function(msg) => write!(f, "field function error: {msg}"),
            MdlError::Parse { reason, offset_bits } => {
                write!(f, "parse error at bit {offset_bits}: {reason}")
            }
            MdlError::NoRuleMatched { protocol } => {
                write!(f, "no message rule of protocol {protocol:?} matched the header")
            }
            MdlError::Compose(msg) => write!(f, "compose error: {msg}"),
            MdlError::UnknownMessage(name) => {
                write!(f, "message type {name:?} is not described by the spec")
            }
            MdlError::Message(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for MdlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MdlError::Message(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MessageError> for MdlError {
    fn from(err: MessageError) -> Self {
        MdlError::Message(err)
    }
}

/// Convenient result alias for MDL operations.
pub type Result<T> = std::result::Result<T, MdlError>;
