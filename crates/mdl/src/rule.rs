//! Message selection rules: the `<Rule>` entry relating a message body to
//! a parsed header (§IV-A: "used to relate the correct message body with
//! the header", e.g. `FunctionID=1`, `Method=M-SEARCH`).

use crate::error::{MdlError, Result};
use starlink_message::{AbstractMessage, Value};

/// A predicate over already-parsed header fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// Always matches (single-message protocols).
    Always,
    /// `field=literal`: matches when the named field's value equals the
    /// literal (numerically when both sides parse as integers, textually
    /// otherwise).
    FieldEquals {
        /// Header field label.
        field: String,
        /// Expected literal.
        literal: String,
    },
    /// Conjunction of rules (`a=1;b=2`).
    All(Vec<Rule>),
}

impl Rule {
    /// Parses the textual rule form: empty → `Always`; `f=v` →
    /// `FieldEquals`; `f=v;g=w` → `All`.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] when a clause has no `=`.
    pub fn parse(text: &str) -> Result<Self> {
        let text = text.trim().trim_end_matches('>'); // tolerate Fig. 7's "FunctionID=1>"
        if text.is_empty() || text == "*" {
            return Ok(Rule::Always);
        }
        let mut clauses = Vec::new();
        for clause in text.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (field, literal) = clause
                .split_once('=')
                .ok_or_else(|| MdlError::Spec(format!("rule clause {clause:?} has no '='")))?;
            clauses.push(Rule::FieldEquals {
                field: field.trim().to_owned(),
                literal: literal.trim().to_owned(),
            });
        }
        match clauses.len() {
            0 => Ok(Rule::Always),
            1 => Ok(clauses.pop().expect("checked length")),
            _ => Ok(Rule::All(clauses)),
        }
    }

    /// Renders the textual form.
    pub fn to_text(&self) -> String {
        match self {
            Rule::Always => String::new(),
            Rule::FieldEquals { field, literal } => format!("{field}={literal}"),
            Rule::All(clauses) => clauses.iter().map(Rule::to_text).collect::<Vec<_>>().join(";"),
        }
    }

    /// Evaluates the rule against the parsed header fields in `message`.
    pub fn matches(&self, message: &AbstractMessage) -> bool {
        match self {
            Rule::Always => true,
            Rule::FieldEquals { field, literal } => {
                let Some(field) = message.field(field) else { return false };
                let Ok(value) = field.value() else { return false };
                value_equals_literal(value, literal)
            }
            Rule::All(clauses) => clauses.iter().all(|c| c.matches(message)),
        }
    }

    /// The field/literal bindings this rule implies; used to pre-fill the
    /// discriminator fields when composing a message of this type.
    pub fn bindings(&self) -> Vec<(&str, &str)> {
        match self {
            Rule::Always => Vec::new(),
            Rule::FieldEquals { field, literal } => vec![(field.as_str(), literal.as_str())],
            Rule::All(clauses) => clauses.iter().flat_map(Rule::bindings).collect(),
        }
    }
}

fn value_equals_literal(value: &Value, literal: &str) -> bool {
    match value {
        Value::Unsigned(_) | Value::Signed(_) => match literal.parse::<i128>() {
            Ok(lit) => match value {
                Value::Unsigned(v) => i128::from(*v) == lit,
                Value::Signed(v) => i128::from(*v) == lit,
                _ => unreachable!(),
            },
            Err(_) => false,
        },
        other => other.to_text() == literal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_message::Field;

    fn header(function_id: u64, method: &str) -> AbstractMessage {
        let mut msg = AbstractMessage::new("P", "header");
        msg.push_field(Field::primitive("FunctionID", function_id));
        msg.push_field(Field::primitive("Method", method));
        msg
    }

    #[test]
    fn parse_fig7_rule_with_stray_bracket() {
        // Fig. 7 literally contains `FunctionID=1>`.
        let rule = Rule::parse("FunctionID=1>").unwrap();
        assert_eq!(rule, Rule::FieldEquals { field: "FunctionID".into(), literal: "1".into() });
    }

    #[test]
    fn numeric_comparison() {
        let rule = Rule::parse("FunctionID=1").unwrap();
        assert!(rule.matches(&header(1, "GET")));
        assert!(!rule.matches(&header(2, "GET")));
    }

    #[test]
    fn textual_comparison() {
        // Fig. 11: Method=M-SEARCH
        let rule = Rule::parse("Method=M-SEARCH").unwrap();
        assert!(rule.matches(&header(0, "M-SEARCH")));
        assert!(!rule.matches(&header(0, "NOTIFY")));
    }

    #[test]
    fn missing_field_never_matches() {
        let rule = Rule::parse("Nope=1").unwrap();
        assert!(!rule.matches(&header(1, "GET")));
    }

    #[test]
    fn conjunction() {
        let rule = Rule::parse("FunctionID=1;Method=GET").unwrap();
        assert!(rule.matches(&header(1, "GET")));
        assert!(!rule.matches(&header(1, "POST")));
    }

    #[test]
    fn empty_rule_always_matches() {
        assert!(Rule::parse("").unwrap().matches(&header(9, "x")));
        assert!(Rule::parse("*").unwrap().matches(&header(9, "x")));
    }

    #[test]
    fn malformed_clause_rejected() {
        assert!(Rule::parse("FunctionID").is_err());
    }

    #[test]
    fn bindings_expose_discriminators() {
        let rule = Rule::parse("FunctionID=2;Version=1").unwrap();
        assert_eq!(rule.bindings(), vec![("FunctionID", "2"), ("Version", "1")]);
    }

    #[test]
    fn roundtrip_text() {
        for text in ["FunctionID=1", "a=1;b=2", ""] {
            assert_eq!(Rule::parse(text).unwrap().to_text(), text);
        }
    }
}
