//! The `<Types>` section of an MDL specification (§IV-A, Fig. 7):
//! maps field labels to marshaller type names and optional field
//! functions such as `Integer[f-length(URLEntry)]`.

use crate::error::{MdlError, Result};
use std::collections::BTreeMap;

/// A function attached to a type entry, executed by the composer when the
/// field is written (§IV-A: "the named f-method is executed by the
/// marshaller when writing the type").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldFunction {
    /// Function name, e.g. `f-length`.
    pub name: String,
    /// Argument field labels, e.g. `["URLEntry"]`.
    pub args: Vec<String>,
}

impl FieldFunction {
    /// Creates a function reference.
    pub fn new(name: impl Into<String>, args: Vec<String>) -> Self {
        FieldFunction { name: name.into(), args }
    }
}

/// One entry of the type table: the base marshaller plus optional function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDef {
    /// Marshaller name (`Integer`, `String`, `FQDN`, ...).
    pub base: String,
    /// Function evaluated at compose time, if any.
    pub function: Option<FieldFunction>,
}

impl TypeDef {
    /// Creates a plain type definition.
    pub fn plain(base: impl Into<String>) -> Self {
        TypeDef { base: base.into(), function: None }
    }

    /// Creates a type definition with an attached function.
    pub fn with_function(base: impl Into<String>, function: FieldFunction) -> Self {
        TypeDef { base: base.into(), function: Some(function) }
    }

    /// Parses the textual form used in MDL XML:
    /// `Integer`, `Integer[f-length(URLEntry)]`, `Integer[f-total-length()]`.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] for malformed bracket/paren syntax.
    pub fn parse(text: &str) -> Result<Self> {
        let text = text.trim();
        let malformed = || MdlError::Spec(format!("malformed type expression {text:?}"));
        match text.find('[') {
            None => {
                if text.is_empty() {
                    return Err(malformed());
                }
                Ok(TypeDef::plain(text))
            }
            Some(open) => {
                let base = text[..open].trim();
                if base.is_empty() {
                    return Err(malformed());
                }
                let inner = text[open + 1..].strip_suffix(']').ok_or_else(malformed)?;
                let paren = inner.find('(').ok_or_else(malformed)?;
                let name = inner[..paren].trim();
                if name.is_empty() {
                    return Err(malformed());
                }
                let args_text = inner[paren + 1..].strip_suffix(')').ok_or_else(malformed)?;
                let args: Vec<String> = args_text
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                Ok(TypeDef::with_function(base, FieldFunction::new(name, args)))
            }
        }
    }

    /// Renders the textual form (inverse of [`TypeDef::parse`]).
    pub fn to_text(&self) -> String {
        match &self.function {
            None => self.base.clone(),
            Some(function) => {
                format!("{}[{}({})]", self.base, function.name, function.args.join(","))
            }
        }
    }
}

/// The full `<Types>` table: field label → type definition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeTable {
    entries: BTreeMap<String, TypeDef>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TypeTable::default()
    }

    /// Registers a type for a field label.
    pub fn insert(&mut self, label: impl Into<String>, def: TypeDef) -> &mut Self {
        self.entries.insert(label.into(), def);
        self
    }

    /// Looks up a field label.
    pub fn get(&self, label: &str) -> Option<&TypeDef> {
        self.entries.get(label)
    }

    /// The marshaller base name for `label`, falling back to `default`
    /// when the label has no entry (the paper's listings elide entries for
    /// obvious integer header fields).
    pub fn base_or<'t>(&'t self, label: &str, default: &'t str) -> &'t str {
        self.get(label).map(|def| def.base.as_str()).unwrap_or(default)
    }

    /// Iterates over entries in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TypeDef)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_type() {
        let def = TypeDef::parse("Integer").unwrap();
        assert_eq!(def.base, "Integer");
        assert!(def.function.is_none());
    }

    #[test]
    fn parse_function_type_from_fig7() {
        // Exactly the Fig. 7 line: Integer[f-length(URLEntry)]
        let def = TypeDef::parse("Integer[f-length(URLEntry)]").unwrap();
        assert_eq!(def.base, "Integer");
        let f = def.function.unwrap();
        assert_eq!(f.name, "f-length");
        assert_eq!(f.args, vec!["URLEntry"]);
    }

    #[test]
    fn parse_zero_arg_function() {
        let def = TypeDef::parse("Integer[f-total-length()]").unwrap();
        assert_eq!(def.function.unwrap().args.len(), 0);
    }

    #[test]
    fn parse_multi_arg_function() {
        let def = TypeDef::parse("String[f-concat(A, B)]").unwrap();
        assert_eq!(def.function.unwrap().args, vec!["A", "B"]);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "[f()]", "Integer[f-length", "Integer[f-length(x]", "Integer[(x)]"] {
            assert!(TypeDef::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn to_text_roundtrip() {
        for text in ["Integer", "Integer[f-length(URLEntry)]", "String[f-concat(A,B)]"] {
            assert_eq!(TypeDef::parse(text).unwrap().to_text(), text);
        }
    }

    #[test]
    fn table_lookup_and_default() {
        let mut table = TypeTable::new();
        table.insert("Version", TypeDef::plain("Integer"));
        assert_eq!(table.base_or("Version", "String"), "Integer");
        assert_eq!(table.base_or("Unknown", "String"), "String");
        assert_eq!(table.len(), 1);
    }
}
