//! Bit-granular readers and writers over byte buffers.
//!
//! MDL field sizes are declared **in bits** (§IV-A: "The size is the
//! length of the field content in bits"), and real binary protocols — SLP
//! headers, DNS flag words — pack sub-byte fields. All binary marshalling
//! goes through these two types; bit order is most-significant-bit first
//! within a byte (network order).

use crate::error::{MdlError, Result};

/// A reader yielding arbitrary-width bit fields from a byte slice.
///
/// ```
/// use starlink_mdl::BitReader;
///
/// let mut r = BitReader::new(&[0b1010_0110, 0xFF]);
/// assert_eq!(r.read_bits(4)?, 0b1010);
/// assert_eq!(r.read_bits(4)?, 0b0110);
/// assert_eq!(r.read_bits(8)?, 0xFF);
/// assert!(r.is_at_end());
/// # Ok::<(), starlink_mdl::MdlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Cursor position in bits from the start of `data`.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Current position in bits.
    pub fn position_bits(&self) -> u64 {
        self.pos
    }

    /// Bits remaining until the end of input.
    pub fn remaining_bits(&self) -> u64 {
        (self.data.len() as u64 * 8).saturating_sub(self.pos)
    }

    /// True when every bit has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.remaining_bits() == 0
    }

    fn eof(&self, wanted: u64) -> MdlError {
        MdlError::Parse {
            reason: format!("needed {wanted} bits, {} remain", self.remaining_bits()),
            offset_bits: self.pos,
        }
    }

    /// Reads `n` bits (0 ≤ n ≤ 64) as a big-endian unsigned integer.
    ///
    /// # Errors
    ///
    /// Fails when fewer than `n` bits remain or `n > 64`.
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        if n > 64 {
            return Err(MdlError::Parse {
                reason: format!("cannot read {n} bits into a u64"),
                offset_bits: self.pos,
            });
        }
        if u64::from(n) > self.remaining_bits() {
            return Err(self.eof(u64::from(n)));
        }
        // Chunked: consume up to a whole byte per step instead of a bit.
        let mut out: u64 = 0;
        let mut remaining = n;
        while remaining > 0 {
            let byte = self.data[(self.pos / 8) as usize];
            let offset = (self.pos % 8) as u32;
            let available = 8 - offset;
            let take = available.min(remaining);
            let chunk = (byte >> (available - take)) & (((1u16 << take) - 1) as u8);
            out = (out << take) | u64::from(chunk);
            self.pos += u64::from(take);
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads `n` whole bytes. Fast path when the cursor is byte-aligned.
    ///
    /// # Errors
    ///
    /// Fails when fewer than `n * 8` bits remain.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        let bits = n as u64 * 8;
        if bits > self.remaining_bits() {
            return Err(self.eof(bits));
        }
        if self.pos.is_multiple_of(8) {
            // Aligned fast path: one memcpy.
            let start = (self.pos / 8) as usize;
            self.pos += bits;
            return Ok(self.data[start..start + n].to_vec());
        }
        // Unaligned: each output byte spans two input bytes; shift once
        // per byte instead of once per bit. The bounds check above
        // guarantees `start + n` is a valid index (the cursor sits
        // mid-byte, so a trailing partial byte must exist).
        let shift = (self.pos % 8) as u32;
        let start = (self.pos / 8) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let hi = self.data[start + i] << shift;
            let lo = self.data[start + i + 1] >> (8 - shift);
            out.push(hi | lo);
        }
        self.pos += bits;
        Ok(out)
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Fails at end of input.
    pub fn read_u8(&mut self) -> Result<u8> {
        Ok(self.read_bits(8)? as u8)
    }

    /// Reads all remaining whole bytes (the cursor must be byte-aligned).
    ///
    /// # Errors
    ///
    /// Fails when the cursor is mid-byte.
    pub fn read_remaining(&mut self) -> Result<Vec<u8>> {
        if !self.pos.is_multiple_of(8) {
            return Err(MdlError::Parse {
                reason: "cannot read remainder from unaligned position".into(),
                offset_bits: self.pos,
            });
        }
        let n = (self.remaining_bits() / 8) as usize;
        self.read_bytes(n)
    }

    /// Peeks `n` bits without consuming them.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`BitReader::read_bits`].
    pub fn peek_bits(&self, n: u32) -> Result<u64> {
        self.clone().read_bits(n)
    }

    /// Skips `n` bits.
    ///
    /// # Errors
    ///
    /// Fails when fewer than `n` bits remain.
    pub fn skip_bits(&mut self, n: u64) -> Result<()> {
        if n > self.remaining_bits() {
            return Err(self.eof(n));
        }
        self.pos += n;
        Ok(())
    }
}

/// A writer assembling arbitrary-width bit fields into a byte buffer.
///
/// ```
/// use starlink_mdl::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b1010, 4)?;
/// w.write_bits(0b0110, 4)?;
/// w.write_bits(0xFF, 8)?;
/// assert_eq!(w.into_bytes(), vec![0b1010_0110, 0xFF]);
/// # Ok::<(), starlink_mdl::MdlError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the buffer (may end mid-byte).
    bits: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Creates a writer that assembles into `buffer` (cleared first),
    /// reusing its capacity. Recover the buffer with
    /// [`BitWriter::into_bytes`] — the scratch-reuse pattern of the
    /// codec hot path.
    pub fn with_buffer(mut buffer: Vec<u8>) -> Self {
        buffer.clear();
        BitWriter { bytes: buffer, bits: 0 }
    }

    /// Number of bits written so far.
    pub fn position_bits(&self) -> u64 {
        self.bits
    }

    /// Writes the low `n` bits of `value`, most significant first.
    ///
    /// # Errors
    ///
    /// Fails when `n > 64` or `value` does not fit in `n` bits.
    pub fn write_bits(&mut self, value: u64, n: u32) -> Result<()> {
        if n > 64 {
            return Err(MdlError::Compose(format!("cannot write {n} bits from a u64")));
        }
        if n < 64 && value >= (1u64 << n) {
            return Err(MdlError::Compose(format!("value {value} does not fit in {n} bits")));
        }
        // Chunked: fill up to a whole byte per step instead of a bit.
        let mut remaining = n;
        while remaining > 0 {
            let offset = (self.bits % 8) as u32;
            if offset == 0 {
                self.bytes.push(0);
            }
            let space = 8 - offset;
            let take = space.min(remaining); // ≤ 8
            let chunk = ((value >> (remaining - take)) & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.len() - 1;
            self.bytes[last] |= chunk << (space - take);
            self.bits += u64::from(take);
            remaining -= take;
        }
        Ok(())
    }

    /// Writes whole bytes. Byte-aligned cursors take a single
    /// `extend_from_slice`; unaligned cursors shift once per byte.
    pub fn write_bytes(&mut self, data: &[u8]) {
        if self.bits.is_multiple_of(8) {
            self.bytes.extend_from_slice(data);
            self.bits += data.len() as u64 * 8;
            return;
        }
        let offset = (self.bits % 8) as u32;
        self.bytes.reserve(data.len());
        for (last, &byte) in (self.bytes.len() - 1..).zip(data.iter()) {
            self.bytes[last] |= byte >> offset;
            self.bytes.push(byte << (8 - offset));
        }
        self.bits += data.len() as u64 * 8;
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.write_bytes(&[byte]);
    }

    /// Overwrites `n` bits starting at absolute bit offset `at` with the low
    /// `n` bits of `value`. Used to patch length fields computed after the
    /// message body is known (e.g. SLP `MessageLength`).
    ///
    /// # Errors
    ///
    /// Fails when the range `[at, at + n)` has not been written yet or the
    /// value does not fit.
    pub fn patch_bits(&mut self, at: u64, value: u64, n: u32) -> Result<()> {
        if n < 64 && value >= (1u64 << n) {
            return Err(MdlError::Compose(format!("patch value {value} does not fit in {n} bits")));
        }
        if at + u64::from(n) > self.bits {
            return Err(MdlError::Compose(format!(
                "patch range {at}..{} exceeds written length {}",
                at + u64::from(n),
                self.bits
            )));
        }
        for i in 0..u64::from(n) {
            let bit = ((value >> (u64::from(n) - 1 - i)) & 1) as u8;
            let pos = at + i;
            let index = (pos / 8) as usize;
            let shift = 7 - (pos % 8) as u8;
            self.bytes[index] = (self.bytes[index] & !(1 << shift)) | (bit << shift);
        }
        Ok(())
    }

    /// Finalises the buffer, zero-padding any trailing partial byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrows the buffer written so far (includes any partial final byte).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_across_byte_boundaries() {
        // 0x12345678 read as 4+12+16 bits.
        let data = [0x12, 0x34, 0x56, 0x78];
        let mut r = BitReader::new(&data);
        assert_eq!(r.read_bits(4).unwrap(), 0x1);
        assert_eq!(r.read_bits(12).unwrap(), 0x234);
        assert_eq!(r.read_bits(16).unwrap(), 0x5678);
        assert!(r.is_at_end());
    }

    #[test]
    fn read_zero_bits_is_ok() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn read_past_end_fails_with_offset() {
        let mut r = BitReader::new(&[0xAA]);
        r.read_bits(6).unwrap();
        let err = r.read_bits(4).unwrap_err();
        match err {
            MdlError::Parse { offset_bits, .. } => assert_eq!(offset_bits, 6),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn read_more_than_64_bits_fails() {
        let data = [0u8; 16];
        let mut r = BitReader::new(&data);
        assert!(r.read_bits(65).is_err());
    }

    #[test]
    fn unaligned_byte_reads() {
        let mut r = BitReader::new(&[0b1111_0000, 0b1010_1010, 0b0101_0101]);
        r.read_bits(4).unwrap();
        let bytes = r.read_bytes(2).unwrap();
        assert_eq!(bytes, vec![0b0000_1010, 0b1010_0101]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3).unwrap();
        w.write_bits(0x7FFF, 15).unwrap();
        w.write_bytes(b"ok");
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(15).unwrap(), 0x7FFF);
        assert_eq!(r.read_bytes(2).unwrap(), b"ok");
    }

    #[test]
    fn write_rejects_oversized_value() {
        let mut w = BitWriter::new();
        assert!(w.write_bits(4, 2).is_err());
        assert!(w.write_bits(3, 2).is_ok());
    }

    #[test]
    fn patch_overwrites_earlier_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0, 24).unwrap(); // placeholder length
        w.write_bytes(&[0xAB; 5]);
        w.patch_bits(0, 8, 24).unwrap(); // total = 8 bytes
        let bytes = w.into_bytes();
        assert_eq!(&bytes[..3], &[0, 0, 8]);
        assert_eq!(bytes.len(), 8);
    }

    #[test]
    fn patch_out_of_range_fails() {
        let mut w = BitWriter::new();
        w.write_bits(0, 8).unwrap();
        assert!(w.patch_bits(4, 1, 8).is_err());
    }

    #[test]
    fn peek_does_not_consume() {
        let r = BitReader::new(&[0xF0]);
        assert_eq!(r.peek_bits(4).unwrap(), 0xF);
        assert_eq!(r.position_bits(), 0);
    }

    #[test]
    fn skip_advances() {
        let mut r = BitReader::new(&[0xFF, 0x01]);
        r.skip_bits(8).unwrap();
        assert_eq!(r.read_bits(8).unwrap(), 1);
        assert!(r.skip_bits(1).is_err());
    }

    #[test]
    fn read_remaining_requires_alignment() {
        let mut r = BitReader::new(&[0xFF, 0x01]);
        r.read_bits(4).unwrap();
        assert!(r.read_remaining().is_err());
        r.read_bits(4).unwrap();
        assert_eq!(r.read_remaining().unwrap(), vec![0x01]);
    }
}
