//! Generic parser and composer for **text** MDL specifications (Fig. 11).
//!
//! Text protocols (SSDP, HTTP) have "no fixed layout or ordering of
//! fields" (§V-B); the MDL instead identifies *boundaries*: start-line
//! fields delimited by byte sequences (space, CRLF), then repeated
//! `label: value` pairs split at an inner boundary (`:`), ending at an
//! empty line, optionally followed by a body.

use crate::error::{MdlError, Result};
use crate::size::SizeSpec;
use crate::spec::{FieldSpec, MdlKind, MdlSpec};
use starlink_message::{AbstractMessage, Field, PrimitiveField, Value};
use std::sync::Arc;

fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from > haystack.len() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|i| i + from)
}

/// Converts raw field text into a [`Value`] according to the declared base
/// type (`Integer` fields of text protocols carry decimal digits).
fn text_to_value(base: &str, text: &str) -> Result<Value> {
    match base {
        "Integer" | "Unsigned" => text.trim().parse::<u64>().map(Value::Unsigned).map_err(|_| {
            MdlError::Parse {
                reason: format!("expected an integer, found {text:?}"),
                offset_bits: 0,
            }
        }),
        "Signed" => text.trim().parse::<i64>().map(Value::Signed).map_err(|_| MdlError::Parse {
            reason: format!("expected a signed integer, found {text:?}"),
            offset_bits: 0,
        }),
        "Bool" => match text.trim() {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            other => Err(MdlError::Parse {
                reason: format!("expected a boolean, found {other:?}"),
                offset_bits: 0,
            }),
        },
        _ => Ok(Value::Str(text.to_owned())),
    }
}

/// Parses wire bytes into abstract messages by interpreting a text
/// [`MdlSpec`].
#[derive(Debug, Clone)]
pub struct TextParser {
    spec: Arc<MdlSpec>,
}

impl TextParser {
    /// Creates a parser for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] when the spec is not a text MDL.
    pub fn new(spec: Arc<MdlSpec>) -> Result<Self> {
        if spec.kind() != MdlKind::Text {
            return Err(MdlError::Spec(format!("protocol {:?} is not a text MDL", spec.protocol())));
        }
        Ok(TextParser { spec })
    }

    fn parse_field(
        &self,
        bytes: &[u8],
        pos: &mut usize,
        message: &mut AbstractMessage,
        field: &FieldSpec,
    ) -> Result<()> {
        match &field.size {
            SizeSpec::Delimiter(delim) => {
                let end = find(bytes, delim, *pos).ok_or_else(|| MdlError::Parse {
                    reason: format!(
                        "field {:?}: delimiter {delim:?} not found",
                        field.label
                    ),
                    offset_bits: *pos as u64 * 8,
                })?;
                let raw = String::from_utf8_lossy(&bytes[*pos..end]).into_owned();
                *pos = end + delim.len();
                let base = self.spec.base_type(&field.label);
                let value = text_to_value(base, &raw)?;
                message.push_field(Field::Primitive(PrimitiveField::new(
                    field.label.clone(),
                    base.to_owned(),
                    value,
                )));
            }
            SizeSpec::DelimitedPairs { line, split } => {
                loop {
                    if *pos >= bytes.len() {
                        break;
                    }
                    // An immediate line terminator is the empty line that
                    // ends the pair section; consume it and stop.
                    if bytes[*pos..].starts_with(line) {
                        *pos += line.len();
                        break;
                    }
                    let end = match find(bytes, line, *pos) {
                        Some(end) => end,
                        None => bytes.len(),
                    };
                    let raw = &bytes[*pos..end];
                    *pos = (end + line.len()).min(bytes.len());
                    let split_at = find(raw, split, 0).ok_or_else(|| MdlError::Parse {
                        reason: format!(
                            "header line {:?} has no {split:?} separator",
                            String::from_utf8_lossy(raw)
                        ),
                        offset_bits: *pos as u64 * 8,
                    })?;
                    let label = String::from_utf8_lossy(&raw[..split_at]).trim().to_owned();
                    let text =
                        String::from_utf8_lossy(&raw[split_at + split.len()..]).trim().to_owned();
                    let base = self.spec.base_type(&label).to_owned();
                    let value = text_to_value(&base, &text).unwrap_or(Value::Str(text));
                    message.push_field(Field::Primitive(PrimitiveField::new(label, base, value)));
                }
            }
            SizeSpec::FieldRef(label) => {
                let count = message
                    .field(label)
                    .ok_or_else(|| MdlError::Parse {
                        reason: format!("length field {label:?} has not been parsed yet"),
                        offset_bits: *pos as u64 * 8,
                    })?
                    .value()?
                    .as_u64()? as usize;
                if *pos + count > bytes.len() {
                    return Err(MdlError::Parse {
                        reason: format!("field {:?} needs {count} bytes", field.label),
                        offset_bits: *pos as u64 * 8,
                    });
                }
                let raw = String::from_utf8_lossy(&bytes[*pos..*pos + count]).into_owned();
                *pos += count;
                let base = self.spec.base_type(&field.label);
                message.push_field(Field::Primitive(PrimitiveField::new(
                    field.label.clone(),
                    base.to_owned(),
                    text_to_value(base, &raw)?,
                )));
            }
            SizeSpec::Remaining => {
                let raw = String::from_utf8_lossy(&bytes[*pos..]).into_owned();
                *pos = bytes.len();
                let base = self.spec.base_type(&field.label);
                message.push_field(Field::Primitive(PrimitiveField::new(
                    field.label.clone(),
                    base.to_owned(),
                    Value::Str(raw),
                )));
            }
            SizeSpec::Bits(_) | SizeSpec::SelfDelimiting => {
                return Err(MdlError::Spec(format!(
                    "field {:?}: bit sizes are only valid in binary MDLs",
                    field.label
                )));
            }
        }
        if field.mandatory {
            message.mark_mandatory(field.label.clone());
        }
        Ok(())
    }

    /// Parses one message from `bytes`, returning it and the bytes
    /// consumed.
    ///
    /// # Errors
    ///
    /// Fails on missing delimiters or when no message rule matches.
    pub fn parse_prefix(&self, bytes: &[u8]) -> Result<(AbstractMessage, usize)> {
        let mut pos = 0usize;
        let mut message = AbstractMessage::new(self.spec.protocol().to_owned(), "");
        for field in self.spec.header() {
            self.parse_field(bytes, &mut pos, &mut message, field)?;
        }
        let selected = self
            .spec
            .select_by_rule(&message)
            .ok_or_else(|| MdlError::NoRuleMatched { protocol: self.spec.protocol().to_owned() })?;
        message.set_name(selected.name.clone());
        for field in &selected.fields {
            self.parse_field(bytes, &mut pos, &mut message, field)?;
        }
        Ok((message, pos))
    }

    /// Parses one message spanning the input.
    ///
    /// # Errors
    ///
    /// Fails as [`TextParser::parse_prefix`].
    pub fn parse(&self, bytes: &[u8]) -> Result<AbstractMessage> {
        let (message, _) = self.parse_prefix(bytes)?;
        Ok(message)
    }
}

/// Composes abstract messages to wire text by interpreting a text
/// [`MdlSpec`].
#[derive(Debug, Clone)]
pub struct TextComposer {
    spec: Arc<MdlSpec>,
}

impl TextComposer {
    /// Creates a composer for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] when the spec is not a text MDL.
    pub fn new(spec: Arc<MdlSpec>) -> Result<Self> {
        if spec.kind() != MdlKind::Text {
            return Err(MdlError::Spec(format!("protocol {:?} is not a text MDL", spec.protocol())));
        }
        Ok(TextComposer { spec })
    }

    /// Composes `message` to its wire image.
    ///
    /// Start-line fields are written in spec order with their delimiters;
    /// every message field *not* declared in the spec becomes a
    /// `label<split> value` pair line (in message field order); a
    /// `Remaining` field, if declared, is written last as the body.
    ///
    /// # Errors
    ///
    /// Fails when the message type is unknown, a declared field is
    /// missing, or a structured field is present (text messages are flat).
    pub fn compose(&self, message: &AbstractMessage) -> Result<Vec<u8>> {
        let selected = self
            .spec
            .message_spec(message.name())
            .ok_or_else(|| MdlError::UnknownMessage(message.name().to_owned()))?;
        let declared: Vec<&FieldSpec> =
            self.spec.header().iter().chain(selected.fields.iter()).collect();
        let declared_labels: Vec<&str> = declared.iter().map(|f| f.label.as_str()).collect();
        let bindings = selected.rule.bindings();

        let field_text = |label: &str| -> Result<Option<String>> {
            if let Some(field) = message.field(label) {
                return Ok(Some(field.value()?.to_text()));
            }
            if let Some((_, literal)) = bindings.iter().find(|(f, _)| *f == label) {
                return Ok(Some((*literal).to_owned()));
            }
            Ok(None)
        };

        let mut out: Vec<u8> = Vec::new();
        for field in &declared {
            match &field.size {
                SizeSpec::Delimiter(delim) => {
                    let text = field_text(&field.label)?.ok_or_else(|| {
                        MdlError::Compose(format!(
                            "message {:?} is missing field {:?}",
                            message.name(),
                            field.label
                        ))
                    })?;
                    out.extend_from_slice(text.as_bytes());
                    out.extend_from_slice(delim);
                }
                SizeSpec::DelimitedPairs { line, split } => {
                    for pair in message.fields() {
                        let label = pair.label();
                        if declared_labels.contains(&label) {
                            continue;
                        }
                        let value = pair.value().map_err(|_| {
                            MdlError::Compose(format!(
                                "text messages are flat; field {label:?} is structured"
                            ))
                        })?;
                        out.extend_from_slice(label.as_bytes());
                        out.extend_from_slice(split);
                        out.push(b' ');
                        out.extend_from_slice(value.to_text().as_bytes());
                        out.extend_from_slice(line);
                    }
                    // Empty line terminates the pair section.
                    out.extend_from_slice(line);
                }
                SizeSpec::FieldRef(_) | SizeSpec::Remaining => {
                    if let Some(text) = field_text(&field.label)? {
                        out.extend_from_slice(text.as_bytes());
                    }
                }
                SizeSpec::Bits(_) | SizeSpec::SelfDelimiting => {
                    return Err(MdlError::Spec(format!(
                        "field {:?}: bit sizes are only valid in binary MDLs",
                        field.label
                    )));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use crate::spec::MessageSpec;
    use crate::types::TypeDef;

    /// The SSDP MDL of Fig. 11, transcribed programmatically.
    fn ssdp_spec() -> Arc<MdlSpec> {
        Arc::new(
            MdlSpec::new("SSDP", MdlKind::Text)
                .type_entry("Method", TypeDef::plain("String"))
                .type_entry("URI", TypeDef::plain("String"))
                .type_entry("Version", TypeDef::plain("String"))
                .type_entry("ST", TypeDef::plain("String"))
                .type_entry("MX", TypeDef::plain("Integer"))
                .header_field(FieldSpec::new("Method", SizeSpec::Delimiter(vec![32])))
                .header_field(FieldSpec::new("URI", SizeSpec::Delimiter(vec![32])))
                .header_field(FieldSpec::new("Version", SizeSpec::Delimiter(vec![13, 10])))
                .header_field(FieldSpec::new(
                    "Fields",
                    SizeSpec::DelimitedPairs { line: vec![13, 10], split: vec![58] },
                ))
                .message(MessageSpec::new("SSDP_M-Search", Rule::parse("Method=M-SEARCH").unwrap()))
                .message(MessageSpec::new("SSDP_Resp", Rule::parse("Method=HTTP/1.1").unwrap())),
        )
    }

    const M_SEARCH: &[u8] = b"M-SEARCH * HTTP/1.1\r\n\
        HOST: 239.255.255.250:1900\r\n\
        MAN: \"ssdp:discover\"\r\n\
        MX: 2\r\n\
        ST: urn:schemas-upnp-org:service:Printer:1\r\n\
        \r\n";

    #[test]
    fn parses_m_search() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let msg = parser.parse(M_SEARCH).unwrap();
        assert_eq!(msg.name(), "SSDP_M-Search");
        assert_eq!(msg.get(&"Method".into()).unwrap().as_str().unwrap(), "M-SEARCH");
        assert_eq!(
            msg.get(&"ST".into()).unwrap().as_str().unwrap(),
            "urn:schemas-upnp-org:service:Printer:1"
        );
        // MX is declared Integer in the type table, so it parses numeric.
        assert_eq!(msg.get(&"MX".into()).unwrap().as_u64().unwrap(), 2);
    }

    #[test]
    fn rule_distinguishes_response() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let resp = b"HTTP/1.1 200 OK\r\nST: x\r\nLOCATION: http://10.0.0.9:5000/desc.xml\r\n\r\n";
        let msg = parser.parse(resp).unwrap();
        assert_eq!(msg.name(), "SSDP_Resp");
        assert_eq!(
            msg.get(&"LOCATION".into()).unwrap().as_str().unwrap(),
            "http://10.0.0.9:5000/desc.xml"
        );
    }

    #[test]
    fn compose_then_parse_roundtrips() {
        let spec = ssdp_spec();
        let parser = TextParser::new(spec.clone()).unwrap();
        let composer = TextComposer::new(spec).unwrap();
        let original = parser.parse(M_SEARCH).unwrap();
        let wire = composer.compose(&original).unwrap();
        let reparsed = parser.parse(&wire).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn compose_fills_start_line_from_rule_bindings() {
        let spec = ssdp_spec();
        let composer = TextComposer::new(spec).unwrap();
        let mut msg = AbstractMessage::new("SSDP", "SSDP_M-Search");
        msg.push_field(Field::primitive("URI", "*"));
        msg.push_field(Field::primitive("Version", "HTTP/1.1"));
        msg.push_field(Field::primitive("ST", "urn:x"));
        let wire = composer.compose(&msg).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("M-SEARCH * HTTP/1.1\r\n"));
        assert!(text.contains("ST: urn:x\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn missing_delimiter_is_an_error() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        assert!(parser.parse(b"M-SEARCH").is_err());
    }

    #[test]
    fn header_line_without_split_is_an_error() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let bad = b"M-SEARCH * HTTP/1.1\r\nNOSPLIT\r\n\r\n";
        assert!(parser.parse(bad).is_err());
    }

    #[test]
    fn pair_section_tolerates_missing_final_empty_line() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let msg = parser.parse(b"M-SEARCH * HTTP/1.1\r\nST: x\r\n").unwrap();
        assert_eq!(msg.get(&"ST".into()).unwrap().as_str().unwrap(), "x");
    }

    #[test]
    fn body_field_consumes_remaining() {
        let spec = Arc::new(
            MdlSpec::new("HTTP", MdlKind::Text)
                .header_field(FieldSpec::new("Method", SizeSpec::Delimiter(vec![32])))
                .header_field(FieldSpec::new("Rest", SizeSpec::Delimiter(vec![13, 10])))
                .header_field(FieldSpec::new(
                    "Fields",
                    SizeSpec::DelimitedPairs { line: vec![13, 10], split: vec![58] },
                ))
                .message(
                    MessageSpec::new("Response", Rule::Always)
                        .field(FieldSpec::new("Body", SizeSpec::Remaining)),
                ),
        );
        let parser = TextParser::new(spec.clone()).unwrap();
        let composer = TextComposer::new(spec).unwrap();
        let wire = b"HTTP/1.1 200 OK\r\nServer: x\r\n\r\n<xml>body</xml>";
        let msg = parser.parse(wire).unwrap();
        assert_eq!(msg.get(&"Body".into()).unwrap().as_str().unwrap(), "<xml>body</xml>");
        let back = composer.compose(&msg).unwrap();
        assert_eq!(back, wire);
    }

    #[test]
    fn structured_fields_are_rejected() {
        let composer = TextComposer::new(ssdp_spec()).unwrap();
        let mut msg = AbstractMessage::new("SSDP", "SSDP_M-Search");
        msg.push_field(Field::primitive("Method", "M-SEARCH"));
        msg.push_field(Field::primitive("URI", "*"));
        msg.push_field(Field::primitive("Version", "HTTP/1.1"));
        msg.push_field(Field::structured("Nested", vec![Field::primitive("a", 1u8)]));
        assert!(composer.compose(&msg).is_err());
    }

    #[test]
    fn binary_spec_is_rejected() {
        let spec = Arc::new(MdlSpec::new("B", MdlKind::Binary));
        assert!(TextParser::new(spec.clone()).is_err());
        assert!(TextComposer::new(spec).is_err());
    }

    #[test]
    fn parse_prefix_reports_consumed() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let mut data = M_SEARCH.to_vec();
        data.extend_from_slice(b"NEXT MESSAGE");
        let (_, consumed) = parser.parse_prefix(&data).unwrap();
        assert_eq!(consumed, M_SEARCH.len());
    }
}
