//! Generic parser and composer for **text** MDL specifications (Fig. 11).
//!
//! Text protocols (SSDP, HTTP) have "no fixed layout or ordering of
//! fields" (§V-B); the MDL instead identifies *boundaries*: start-line
//! fields delimited by byte sequences (space, CRLF), then repeated
//! `label: value` pairs split at an inner boundary (`:`), ending at an
//! empty line, optionally followed by a body.
//!
//! The hot path borrows subslices of the input: field text is inspected
//! as `&str` in place and owned only when it becomes a [`Value::Str`]
//! (or, for non-UTF-8 input, through the lossy fallback). Labels of
//! declared fields and known header names are interned [`Label`]s, so a
//! parsed field costs one value allocation — never a `String` clone.

use crate::error::{MdlError, Result};
use crate::intern::LabelInterner;
use crate::size::SizeSpec;
use crate::spec::{FieldSpec, MdlKind, MdlSpec};
use starlink_message::{AbstractMessage, Field, Label, PrimitiveField, Value};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::Arc;

fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from > haystack.len() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|i| i + from)
}

/// Converts raw field text into a [`Value`] according to the declared base
/// type (`Integer` fields of text protocols carry decimal digits). The
/// only allocation is the owned string of a `Value::Str`.
fn text_to_value(base: &str, text: &str) -> Result<Value> {
    match base {
        "Integer" | "Unsigned" => {
            text.trim().parse::<u64>().map(Value::Unsigned).map_err(|_| MdlError::Parse {
                reason: format!("expected an integer, found {text:?}"),
                offset_bits: 0,
            })
        }
        "Signed" => text.trim().parse::<i64>().map(Value::Signed).map_err(|_| MdlError::Parse {
            reason: format!("expected a signed integer, found {text:?}"),
            offset_bits: 0,
        }),
        "Bool" => match text.trim() {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            other => Err(MdlError::Parse {
                reason: format!("expected a boolean, found {other:?}"),
                offset_bits: 0,
            }),
        },
        _ => Ok(Value::Str(text.to_owned())),
    }
}

/// Converts raw field bytes, borrowing valid UTF-8 and falling back to a
/// lossy copy only for invalid input.
fn bytes_to_value(base: &str, raw: &[u8]) -> Result<Value> {
    match std::str::from_utf8(raw) {
        Ok(text) => text_to_value(base, text),
        // Non-UTF-8 is only representable as text lossily; numeric bases
        // cannot parse it either way, so surface it as a string.
        Err(_) => text_to_value(base, &String::from_utf8_lossy(raw)),
    }
}

/// Appends the text image of `value` to `out` without intermediate
/// `String`s for the common variants.
fn extend_value_text(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Str(s) => out.extend_from_slice(s.as_bytes()),
        Value::Unsigned(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Signed(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Bytes(b) => match std::str::from_utf8(b) {
            Ok(text) => out.extend_from_slice(text.as_bytes()),
            Err(_) => out.extend_from_slice(String::from_utf8_lossy(b).as_bytes()),
        },
        Value::List(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                extend_value_text(out, item);
            }
        }
    }
}

/// The byte length of [`extend_value_text`]'s image of `value`, computed
/// without rendering it — `f-length` fields read this on every compose,
/// which must stay allocation-free (the zero-allocation hot path).
fn value_text_len(value: &Value) -> usize {
    fn decimal_digits(mut v: u64) -> usize {
        let mut digits = 1;
        while v >= 10 {
            digits += 1;
            v /= 10;
        }
        digits
    }
    match value {
        Value::Str(s) => s.len(),
        Value::Unsigned(v) => decimal_digits(*v),
        Value::Signed(v) => usize::from(*v < 0) + decimal_digits(v.unsigned_abs()),
        Value::Bool(b) => {
            if *b {
                4
            } else {
                5
            }
        }
        Value::Bytes(b) => match std::str::from_utf8(b) {
            Ok(text) => text.len(),
            Err(_) => String::from_utf8_lossy(b).len(),
        },
        Value::List(items) => {
            items.iter().map(value_text_len).sum::<usize>() + items.len().saturating_sub(1)
        }
    }
}

/// One declared field, with its label and base type pre-interned.
#[derive(Debug, Clone)]
struct TextPlanField {
    label: Label,
    base: Label,
    size: SizeSpec,
    mandatory: bool,
    /// Set when the type table declares `f-length(target)` for this
    /// field: the composer writes the byte length of `target`'s text
    /// image instead of the stored value (Content-Length-style length
    /// fields, and the length-framed body of the WS-Discovery MDL).
    length_of: Option<Label>,
}

fn compile_text_plan(
    spec: &MdlSpec,
    fields: &[FieldSpec],
    interner: &mut LabelInterner,
) -> Vec<TextPlanField> {
    fields
        .iter()
        .map(|field| {
            let length_of = spec
                .types()
                .get(&field.label)
                .and_then(|def| def.function.as_ref())
                .filter(|f| f.name == "f-length")
                .and_then(|f| f.args.first())
                .map(|target| interner.intern(target.as_str()));
            TextPlanField {
                label: field.label.clone(),
                base: interner.intern(spec.base_type(&field.label)),
                size: field.size.clone(),
                mandatory: field.mandatory,
                length_of,
            }
        })
        .collect()
}

/// Parses wire bytes into abstract messages by interpreting a text
/// [`MdlSpec`].
#[derive(Debug, Clone)]
pub struct TextParser {
    spec: Arc<MdlSpec>,
    protocol: Label,
    header: Vec<TextPlanField>,
    /// Body plans, parallel to `spec.messages()`.
    bodies: Vec<(Label, Vec<TextPlanField>)>,
    /// Known `label: value` pair names (the type table) → base type,
    /// pre-interned so repeated headers like `ST`/`LOCATION` never
    /// allocate a label.
    known_pairs: BTreeMap<Label, Label>,
    /// Base type for pair labels absent from the type table.
    default_base: Label,
}

impl TextParser {
    /// Creates a parser for `spec`, compiling its field plans.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] when the spec is not a text MDL.
    pub fn new(spec: Arc<MdlSpec>) -> Result<Self> {
        if spec.kind() != MdlKind::Text {
            return Err(MdlError::Spec(format!(
                "protocol {:?} is not a text MDL",
                spec.protocol()
            )));
        }
        let mut interner = LabelInterner::default();
        let header = compile_text_plan(&spec, spec.header(), &mut interner);
        let bodies = spec
            .messages()
            .iter()
            .map(|m| (m.name.clone(), compile_text_plan(&spec, &m.fields, &mut interner)))
            .collect();
        let known_pairs = spec
            .types()
            .iter()
            .map(|(label, def)| (interner.intern(label), interner.intern(def.base.as_str())))
            .collect();
        let default_base = interner.intern("String");
        let protocol = spec.protocol_label().clone();
        Ok(TextParser { spec, protocol, header, bodies, known_pairs, default_base })
    }

    /// The interned label/base pair for a `label: value` header name.
    fn pair_label(&self, name: &str) -> (Label, Label) {
        match self.known_pairs.get_key_value(name) {
            Some((label, base)) => (label.clone(), base.clone()),
            None => (Label::from(name), self.default_base.clone()),
        }
    }

    fn parse_field(
        &self,
        bytes: &[u8],
        pos: &mut usize,
        message: &mut AbstractMessage,
        field: &TextPlanField,
    ) -> Result<()> {
        match &field.size {
            SizeSpec::Delimiter(delim) => {
                let end = find(bytes, delim, *pos).ok_or_else(|| MdlError::Parse {
                    reason: format!("field {:?}: delimiter {delim:?} not found", field.label),
                    offset_bits: *pos as u64 * 8,
                })?;
                let value = bytes_to_value(&field.base, &bytes[*pos..end])?;
                *pos = end + delim.len();
                message.push_field(Field::Primitive(PrimitiveField::new(
                    field.label.clone(),
                    field.base.clone(),
                    value,
                )));
            }
            SizeSpec::DelimitedPairs { line, split } => {
                loop {
                    if *pos >= bytes.len() {
                        break;
                    }
                    // An immediate line terminator is the empty line that
                    // ends the pair section; consume it and stop.
                    if bytes[*pos..].starts_with(line) {
                        *pos += line.len();
                        break;
                    }
                    let end = match find(bytes, line, *pos) {
                        Some(end) => end,
                        None => bytes.len(),
                    };
                    let raw = &bytes[*pos..end];
                    *pos = (end + line.len()).min(bytes.len());
                    let split_at = find(raw, split, 0).ok_or_else(|| MdlError::Parse {
                        reason: format!(
                            "header line {:?} has no {split:?} separator",
                            String::from_utf8_lossy(raw)
                        ),
                        offset_bits: *pos as u64 * 8,
                    })?;
                    let name = String::from_utf8_lossy(&raw[..split_at]);
                    let (label, base) = self.pair_label(name.trim());
                    let text_bytes = &raw[split_at + split.len()..];
                    let value = match std::str::from_utf8(text_bytes) {
                        Ok(text) => {
                            let text = text.trim();
                            text_to_value(&base, text)
                                .unwrap_or_else(|_| Value::Str(text.to_owned()))
                        }
                        Err(_) => Value::Str(String::from_utf8_lossy(text_bytes).trim().to_owned()),
                    };
                    message.push_field(Field::Primitive(PrimitiveField::new(label, base, value)));
                }
            }
            SizeSpec::FieldRef(label) => {
                let count = message
                    .field(label)
                    .ok_or_else(|| MdlError::Parse {
                        reason: format!("length field {label:?} has not been parsed yet"),
                        offset_bits: *pos as u64 * 8,
                    })?
                    .value()?
                    .as_u64()? as usize;
                if *pos + count > bytes.len() {
                    return Err(MdlError::Parse {
                        reason: format!("field {:?} needs {count} bytes", field.label),
                        offset_bits: *pos as u64 * 8,
                    });
                }
                let value = bytes_to_value(&field.base, &bytes[*pos..*pos + count])?;
                *pos += count;
                message.push_field(Field::Primitive(PrimitiveField::new(
                    field.label.clone(),
                    field.base.clone(),
                    value,
                )));
            }
            SizeSpec::Remaining => {
                let raw = &bytes[*pos..];
                let text = match std::str::from_utf8(raw) {
                    Ok(text) => text.to_owned(),
                    Err(_) => String::from_utf8_lossy(raw).into_owned(),
                };
                *pos = bytes.len();
                message.push_field(Field::Primitive(PrimitiveField::new(
                    field.label.clone(),
                    field.base.clone(),
                    Value::Str(text),
                )));
            }
            SizeSpec::Bits(_) | SizeSpec::SelfDelimiting => {
                return Err(MdlError::Spec(format!(
                    "field {:?}: bit sizes are only valid in binary MDLs",
                    field.label
                )));
            }
        }
        if field.mandatory {
            message.mark_mandatory(field.label.clone());
        }
        Ok(())
    }

    /// Parses one message from `bytes`, returning it and the bytes
    /// consumed.
    ///
    /// # Errors
    ///
    /// Fails on missing delimiters or when no message rule matches.
    pub fn parse_prefix(&self, bytes: &[u8]) -> Result<(AbstractMessage, usize)> {
        let mut pos = 0usize;
        let mut message = AbstractMessage::new(self.protocol.clone(), Label::empty());
        for field in &self.header {
            self.parse_field(bytes, &mut pos, &mut message, field)?;
        }
        let selected =
            self.spec.messages().iter().position(|m| m.rule.matches(&message)).ok_or_else(
                || MdlError::NoRuleMatched { protocol: self.spec.protocol().to_owned() },
            )?;
        let (name, body) = &self.bodies[selected];
        message.set_name(name.clone());
        for field in body {
            self.parse_field(bytes, &mut pos, &mut message, field)?;
        }
        Ok((message, pos))
    }

    /// Parses one message spanning the input.
    ///
    /// # Errors
    ///
    /// Fails as [`TextParser::parse_prefix`].
    pub fn parse(&self, bytes: &[u8]) -> Result<AbstractMessage> {
        let (message, _) = self.parse_prefix(bytes)?;
        Ok(message)
    }
}

/// Composes abstract messages to wire text by interpreting a text
/// [`MdlSpec`].
#[derive(Debug, Clone)]
pub struct TextComposer {
    /// Compiled plans, parallel to the spec's message sections.
    messages: Vec<CompiledTextMessage>,
}

#[derive(Debug, Clone)]
struct CompiledTextMessage {
    name: Label,
    /// Header + body fields in wire order.
    fields: Vec<TextPlanField>,
    /// Rule bindings: label → literal fallback for absent fields.
    bindings: Vec<(Label, String)>,
}

impl TextComposer {
    /// Creates a composer for `spec`, compiling its field plans.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::Spec`] when the spec is not a text MDL.
    pub fn new(spec: Arc<MdlSpec>) -> Result<Self> {
        if spec.kind() != MdlKind::Text {
            return Err(MdlError::Spec(format!(
                "protocol {:?} is not a text MDL",
                spec.protocol()
            )));
        }
        let mut interner = LabelInterner::default();
        let messages = spec
            .messages()
            .iter()
            .map(|message| {
                let mut fields = compile_text_plan(&spec, spec.header(), &mut interner);
                fields.extend(compile_text_plan(&spec, &message.fields, &mut interner));
                let bindings = message
                    .rule
                    .bindings()
                    .into_iter()
                    .map(|(label, literal)| (Label::from(label), literal.to_owned()))
                    .collect();
                CompiledTextMessage { name: message.name.clone(), fields, bindings }
            })
            .collect();
        Ok(TextComposer { messages })
    }

    /// Composes `message` to its wire image.
    ///
    /// Start-line fields are written in spec order with their delimiters;
    /// every message field *not* declared in the spec becomes a
    /// `label<split> value` pair line (in message field order); a
    /// `Remaining` field, if declared, is written last as the body.
    ///
    /// # Errors
    ///
    /// Fails when the message type is unknown, a declared field is
    /// missing, or a structured field is present (text messages are flat).
    pub fn compose(&self, message: &AbstractMessage) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compose_into(message, &mut out)?;
        Ok(out)
    }

    /// Composes `message` into a caller-provided buffer (cleared first),
    /// amortising the output allocation across messages.
    ///
    /// # Errors
    ///
    /// Fails as [`TextComposer::compose`].
    pub fn compose_into(&self, message: &AbstractMessage, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        let compiled = self
            .messages
            .iter()
            .find(|m| m.name == message.name())
            .ok_or_else(|| MdlError::UnknownMessage(message.name().to_owned()))?;

        // Writes the field's value, or the rule-binding literal for absent
        // fields; reports whether anything was written.
        let write_field_text = |label: &Label, out: &mut Vec<u8>| -> Result<bool> {
            if let Some(field) = message.field(label) {
                extend_value_text(out, field.value()?);
                return Ok(true);
            }
            if let Some((_, literal)) = compiled.bindings.iter().find(|(bound, _)| bound == label) {
                out.extend_from_slice(literal.as_bytes());
                return Ok(true);
            }
            Ok(false)
        };

        // Evaluates an `f-length(target)` field: the decimal byte length
        // of the target's text image, recomputed at compose time so the
        // stored value can never disagree with the framed bytes.
        let write_length_of = |target: &Label, out: &mut Vec<u8>| -> Result<bool> {
            let Some(field) = message.field(target) else { return Ok(false) };
            let _ = write!(out, "{}", value_text_len(field.value()?));
            Ok(true)
        };

        for field in &compiled.fields {
            let written = match &field.length_of {
                Some(target) => write_length_of(target, out)?,
                None => false,
            };
            match &field.size {
                SizeSpec::Delimiter(delim) if written => out.extend_from_slice(delim),
                SizeSpec::FieldRef(_) | SizeSpec::Remaining if written => {}
                SizeSpec::Delimiter(delim) => {
                    if !write_field_text(&field.label, out)? {
                        return Err(MdlError::Compose(format!(
                            "message {:?} is missing field {:?}",
                            message.name(),
                            field.label
                        )));
                    }
                    out.extend_from_slice(delim);
                }
                SizeSpec::DelimitedPairs { line, split } => {
                    for pair in message.fields() {
                        let label = pair.label();
                        if compiled.fields.iter().any(|f| f.label == label) {
                            continue;
                        }
                        let value = pair.value().map_err(|_| {
                            MdlError::Compose(format!(
                                "text messages are flat; field {label:?} is structured"
                            ))
                        })?;
                        out.extend_from_slice(label.as_bytes());
                        out.extend_from_slice(split);
                        out.push(b' ');
                        extend_value_text(out, value);
                        out.extend_from_slice(line);
                    }
                    // Empty line terminates the pair section.
                    out.extend_from_slice(line);
                }
                SizeSpec::FieldRef(_) | SizeSpec::Remaining => {
                    write_field_text(&field.label, out)?;
                }
                SizeSpec::Bits(_) | SizeSpec::SelfDelimiting => {
                    return Err(MdlError::Spec(format!(
                        "field {:?}: bit sizes are only valid in binary MDLs",
                        field.label
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use crate::spec::MessageSpec;
    use crate::types::TypeDef;

    /// The SSDP MDL of Fig. 11, transcribed programmatically.
    fn ssdp_spec() -> Arc<MdlSpec> {
        Arc::new(
            MdlSpec::new("SSDP", MdlKind::Text)
                .type_entry("Method", TypeDef::plain("String"))
                .type_entry("URI", TypeDef::plain("String"))
                .type_entry("Version", TypeDef::plain("String"))
                .type_entry("ST", TypeDef::plain("String"))
                .type_entry("MX", TypeDef::plain("Integer"))
                .header_field(FieldSpec::new("Method", SizeSpec::Delimiter(vec![32])))
                .header_field(FieldSpec::new("URI", SizeSpec::Delimiter(vec![32])))
                .header_field(FieldSpec::new("Version", SizeSpec::Delimiter(vec![13, 10])))
                .header_field(FieldSpec::new(
                    "Fields",
                    SizeSpec::DelimitedPairs { line: vec![13, 10], split: vec![58] },
                ))
                .message(MessageSpec::new("SSDP_M-Search", Rule::parse("Method=M-SEARCH").unwrap()))
                .message(MessageSpec::new("SSDP_Resp", Rule::parse("Method=HTTP/1.1").unwrap())),
        )
    }

    const M_SEARCH: &[u8] = b"M-SEARCH * HTTP/1.1\r\n\
        HOST: 239.255.255.250:1900\r\n\
        MAN: \"ssdp:discover\"\r\n\
        MX: 2\r\n\
        ST: urn:schemas-upnp-org:service:Printer:1\r\n\
        \r\n";

    #[test]
    fn parses_m_search() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let msg = parser.parse(M_SEARCH).unwrap();
        assert_eq!(msg.name(), "SSDP_M-Search");
        assert_eq!(msg.get(&"Method".into()).unwrap().as_str().unwrap(), "M-SEARCH");
        assert_eq!(
            msg.get(&"ST".into()).unwrap().as_str().unwrap(),
            "urn:schemas-upnp-org:service:Printer:1"
        );
        // MX is declared Integer in the type table, so it parses numeric.
        assert_eq!(msg.get(&"MX".into()).unwrap().as_u64().unwrap(), 2);
    }

    #[test]
    fn rule_distinguishes_response() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let resp = b"HTTP/1.1 200 OK\r\nST: x\r\nLOCATION: http://10.0.0.9:5000/desc.xml\r\n\r\n";
        let msg = parser.parse(resp).unwrap();
        assert_eq!(msg.name(), "SSDP_Resp");
        assert_eq!(
            msg.get(&"LOCATION".into()).unwrap().as_str().unwrap(),
            "http://10.0.0.9:5000/desc.xml"
        );
    }

    #[test]
    fn compose_then_parse_roundtrips() {
        let spec = ssdp_spec();
        let parser = TextParser::new(spec.clone()).unwrap();
        let composer = TextComposer::new(spec).unwrap();
        let original = parser.parse(M_SEARCH).unwrap();
        let wire = composer.compose(&original).unwrap();
        let reparsed = parser.parse(&wire).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn compose_into_reuses_the_buffer() {
        let spec = ssdp_spec();
        let parser = TextParser::new(spec.clone()).unwrap();
        let composer = TextComposer::new(spec).unwrap();
        let msg = parser.parse(M_SEARCH).unwrap();
        let mut scratch = Vec::new();
        composer.compose_into(&msg, &mut scratch).unwrap();
        let first = scratch.clone();
        let capacity = scratch.capacity();
        composer.compose_into(&msg, &mut scratch).unwrap();
        assert_eq!(scratch, first);
        assert_eq!(scratch.capacity(), capacity, "no regrowth on reuse");
    }

    #[test]
    fn compose_fills_start_line_from_rule_bindings() {
        let spec = ssdp_spec();
        let composer = TextComposer::new(spec).unwrap();
        let mut msg = AbstractMessage::new("SSDP", "SSDP_M-Search");
        msg.push_field(Field::primitive("URI", "*"));
        msg.push_field(Field::primitive("Version", "HTTP/1.1"));
        msg.push_field(Field::primitive("ST", "urn:x"));
        let wire = composer.compose(&msg).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("M-SEARCH * HTTP/1.1\r\n"));
        assert!(text.contains("ST: urn:x\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn missing_delimiter_is_an_error() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        assert!(parser.parse(b"M-SEARCH").is_err());
    }

    #[test]
    fn header_line_without_split_is_an_error() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let bad = b"M-SEARCH * HTTP/1.1\r\nNOSPLIT\r\n\r\n";
        assert!(parser.parse(bad).is_err());
    }

    #[test]
    fn pair_section_tolerates_missing_final_empty_line() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let msg = parser.parse(b"M-SEARCH * HTTP/1.1\r\nST: x\r\n").unwrap();
        assert_eq!(msg.get(&"ST".into()).unwrap().as_str().unwrap(), "x");
    }

    #[test]
    fn body_field_consumes_remaining() {
        let spec = Arc::new(
            MdlSpec::new("HTTP", MdlKind::Text)
                .header_field(FieldSpec::new("Method", SizeSpec::Delimiter(vec![32])))
                .header_field(FieldSpec::new("Rest", SizeSpec::Delimiter(vec![13, 10])))
                .header_field(FieldSpec::new(
                    "Fields",
                    SizeSpec::DelimitedPairs { line: vec![13, 10], split: vec![58] },
                ))
                .message(
                    MessageSpec::new("Response", Rule::Always)
                        .field(FieldSpec::new("Body", SizeSpec::Remaining)),
                ),
        );
        let parser = TextParser::new(spec.clone()).unwrap();
        let composer = TextComposer::new(spec).unwrap();
        let wire = b"HTTP/1.1 200 OK\r\nServer: x\r\n\r\n<xml>body</xml>";
        let msg = parser.parse(wire).unwrap();
        assert_eq!(msg.get(&"Body".into()).unwrap().as_str().unwrap(), "<xml>body</xml>");
        let back = composer.compose(&msg).unwrap();
        assert_eq!(back, wire);
    }

    #[test]
    fn length_ref_body_roundtrips_and_recomputes() {
        // The WS-Discovery shape: a length field framing a body blob that
        // may itself contain markup (so no delimiter could end it), with
        // the length recomputed from the blob at compose time.
        let spec = Arc::new(
            MdlSpec::new("Wsd", MdlKind::Text)
                .type_entry("Blob", TypeDef::plain("String"))
                .type_entry(
                    "BlobLen",
                    TypeDef::with_function(
                        "Integer",
                        crate::types::FieldFunction::new("f-length", vec!["Blob".into()]),
                    ),
                )
                .header_field(FieldSpec::new("Tag", SizeSpec::Delimiter(b"<len>".to_vec())))
                .message(
                    MessageSpec::new("M", Rule::Always)
                        .field(FieldSpec::new("BlobLen", SizeSpec::Delimiter(b"</len>".to_vec())))
                        .field(FieldSpec::new("Blob", SizeSpec::FieldRef("BlobLen".into()))),
                ),
        );
        let parser = TextParser::new(spec.clone()).unwrap();
        let composer = TextComposer::new(spec).unwrap();
        let wire = b"X<len>13</len><a>markup</a>!!";
        let msg = parser.parse(wire).unwrap();
        assert_eq!(msg.get(&"Blob".into()).unwrap().as_str().unwrap(), "<a>markup</a>");
        assert_eq!(msg.get(&"BlobLen".into()).unwrap().as_u64().unwrap(), 13);
        assert_eq!(composer.compose(&msg).unwrap(), b"X<len>13</len><a>markup</a>");

        // A stale stored length is overridden by the compose-time value.
        let mut edited = msg.clone();
        edited.set(&"Blob".into(), Value::Str("<b>longer markup</b>".into())).unwrap();
        let wire = composer.compose(&edited).unwrap();
        assert_eq!(wire, b"X<len>20</len><b>longer markup</b>");
        let back = parser.parse(&wire).unwrap();
        assert_eq!(back.get(&"Blob".into()).unwrap().as_str().unwrap(), "<b>longer markup</b>");
    }

    #[test]
    fn value_text_len_matches_rendered_length() {
        for value in [
            Value::Str("hello <x>".into()),
            Value::Str(String::new()),
            Value::Unsigned(0),
            Value::Unsigned(10_200),
            Value::Signed(-345),
            Value::Bool(true),
            Value::Bool(false),
            Value::Bytes(b"abc".to_vec()),
            Value::Bytes(vec![0xFF, 0xFE]),
            Value::List(vec![Value::Unsigned(1), Value::Str("ab".into())]),
            Value::List(vec![]),
        ] {
            let mut rendered = Vec::new();
            extend_value_text(&mut rendered, &value);
            assert_eq!(value_text_len(&value), rendered.len(), "{value:?}");
        }
    }

    #[test]
    fn structured_fields_are_rejected() {
        let composer = TextComposer::new(ssdp_spec()).unwrap();
        let mut msg = AbstractMessage::new("SSDP", "SSDP_M-Search");
        msg.push_field(Field::primitive("Method", "M-SEARCH"));
        msg.push_field(Field::primitive("URI", "*"));
        msg.push_field(Field::primitive("Version", "HTTP/1.1"));
        msg.push_field(Field::structured("Nested", vec![Field::primitive("a", 1u8)]));
        assert!(composer.compose(&msg).is_err());
    }

    #[test]
    fn binary_spec_is_rejected() {
        let spec = Arc::new(MdlSpec::new("B", MdlKind::Binary));
        assert!(TextParser::new(spec.clone()).is_err());
        assert!(TextComposer::new(spec).is_err());
    }

    #[test]
    fn non_utf8_field_text_falls_back_lossily() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let mut wire = b"M-SEARCH * HTTP/1.1\r\nST: ".to_vec();
        wire.extend_from_slice(&[0xFF, 0xFE]);
        wire.extend_from_slice(b"\r\n\r\n");
        let msg = parser.parse(&wire).unwrap();
        let text = msg.get(&"ST".into()).unwrap().as_str().unwrap().to_owned();
        assert_eq!(text, "\u{FFFD}\u{FFFD}");
    }

    #[test]
    fn parse_prefix_reports_consumed() {
        let parser = TextParser::new(ssdp_spec()).unwrap();
        let mut data = M_SEARCH.to_vec();
        data.extend_from_slice(b"NEXT MESSAGE");
        let (_, consumed) = parser.parse_prefix(&data).unwrap();
        assert_eq!(consumed, M_SEARCH.len());
    }
}
