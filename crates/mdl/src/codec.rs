//! The unified codec facade: one object per protocol that parses and
//! composes messages by interpreting its loaded [`MdlSpec`] — the
//! "Message Composers and Parsers" boxes of the architecture diagram
//! (Fig. 6).

use crate::binary::{BinaryComposer, BinaryParser};
use crate::error::Result;
use crate::flat::FlatPlan;
use crate::marshal::MarshallerRegistry;
use crate::spec::{MdlKind, MdlSpec};
use crate::text::{TextComposer, TextParser};
use starlink_message::{AbstractMessage, MessageSchema};
use std::collections::BTreeMap;
use std::sync::Arc;

enum Inner {
    Binary { parser: BinaryParser, composer: BinaryComposer },
    Text { parser: TextParser, composer: TextComposer },
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inner::Binary { .. } => write!(f, "Binary"),
            Inner::Text { .. } => write!(f, "Text"),
        }
    }
}

/// A runtime-generated parser/composer pair for one protocol.
///
/// ```
/// use starlink_mdl::{load_mdl, MdlCodec};
///
/// let spec = load_mdl(r#"
///   <MDL protocol="Echo" kind="binary">
///     <Header type="Echo"><Tag>8</Tag></Header>
///     <Message type="Ping"><Rule>Tag=1</Rule></Message>
///   </MDL>"#)?;
/// let codec = MdlCodec::generate(spec)?;
/// let ping = codec.schema("Ping")?.instantiate();
/// let wire = codec.compose(&ping)?;
/// assert_eq!(codec.parse(&wire)?.name(), "Ping");
/// # Ok::<(), starlink_mdl::MdlError>(())
/// ```
#[derive(Debug)]
pub struct MdlCodec {
    spec: Arc<MdlSpec>,
    inner: Inner,
    /// The allocation-free slot plan, when the spec falls inside the
    /// flattenable subset (see [`FlatPlan::compile`]).
    flat: Option<Arc<FlatPlan>>,
}

impl MdlCodec {
    /// Generates the codec for `spec` with the built-in marshallers.
    ///
    /// # Errors
    ///
    /// Fails when the spec's kind and size entries disagree.
    pub fn generate(spec: MdlSpec) -> Result<Self> {
        Self::generate_with(spec, Arc::new(MarshallerRegistry::with_builtins()))
    }

    /// Generates the codec with a custom marshaller registry (runtime type
    /// extension, §IV-A's FQDN example).
    ///
    /// # Errors
    ///
    /// Fails when the spec's kind and size entries disagree.
    pub fn generate_with(spec: MdlSpec, marshallers: Arc<MarshallerRegistry>) -> Result<Self> {
        let spec = Arc::new(spec);
        let inner = match spec.kind() {
            MdlKind::Binary => Inner::Binary {
                parser: BinaryParser::new(spec.clone(), marshallers.clone())?,
                composer: BinaryComposer::new(spec.clone(), marshallers)?,
            },
            MdlKind::Text => Inner::Text {
                parser: TextParser::new(spec.clone())?,
                composer: TextComposer::new(spec.clone())?,
            },
        };
        let flat = FlatPlan::compile(&spec).map(Arc::new);
        Ok(MdlCodec { spec, inner, flat })
    }

    /// The protocol this codec serves.
    pub fn protocol(&self) -> &str {
        self.spec.protocol()
    }

    /// The compiled flat slot plan, when this protocol's MDL falls
    /// inside the flattenable subset. `None` means only the interpreted
    /// pipeline serves this protocol.
    pub fn flat_plan(&self) -> Option<&Arc<FlatPlan>> {
        self.flat.as_ref()
    }

    /// The loaded specification.
    pub fn spec(&self) -> &MdlSpec {
        &self.spec
    }

    /// Parses one message spanning `bytes`.
    ///
    /// # Errors
    ///
    /// Propagates parse failures from the underlying interpreter.
    pub fn parse(&self, bytes: &[u8]) -> Result<AbstractMessage> {
        match &self.inner {
            Inner::Binary { parser, .. } => parser.parse(bytes),
            Inner::Text { parser, .. } => parser.parse(bytes),
        }
    }

    /// Parses one message from the front of `bytes`, returning the byte
    /// count consumed (for stream transports).
    ///
    /// # Errors
    ///
    /// Propagates parse failures from the underlying interpreter.
    pub fn parse_prefix(&self, bytes: &[u8]) -> Result<(AbstractMessage, usize)> {
        match &self.inner {
            Inner::Binary { parser, .. } => parser.parse_prefix(bytes),
            Inner::Text { parser, .. } => parser.parse_prefix(bytes),
        }
    }

    /// Composes `message` to wire bytes.
    ///
    /// # Errors
    ///
    /// Propagates compose failures from the underlying interpreter.
    pub fn compose(&self, message: &AbstractMessage) -> Result<Vec<u8>> {
        match &self.inner {
            Inner::Binary { composer, .. } => composer.compose(message),
            Inner::Text { composer, .. } => composer.compose(message),
        }
    }

    /// Composes `message` into a caller-provided buffer, clearing it
    /// first. Callers on the hot path keep one scratch buffer alive and
    /// amortise the output allocation across messages.
    ///
    /// # Errors
    ///
    /// Propagates compose failures from the underlying interpreter.
    pub fn compose_into(&self, message: &AbstractMessage, out: &mut Vec<u8>) -> Result<()> {
        match &self.inner {
            Inner::Binary { composer, .. } => composer.compose_into(message, out),
            Inner::Text { composer, .. } => composer.compose_into(message, out),
        }
    }

    /// Derives the schema for one of the spec's message types.
    ///
    /// # Errors
    ///
    /// Fails for unknown message names.
    pub fn schema(&self, name: &str) -> Result<MessageSchema> {
        self.spec.schema(name)
    }
}

/// The per-deployment codec registry: protocol name → codec, shared by
/// the network-facing sides of a Starlink bridge.
#[derive(Debug, Default)]
pub struct MdlRegistry {
    codecs: BTreeMap<String, Arc<MdlCodec>>,
}

impl MdlRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MdlRegistry::default()
    }

    /// Generates and registers a codec for `spec`.
    ///
    /// # Errors
    ///
    /// Fails when codec generation fails.
    pub fn load(&mut self, spec: MdlSpec) -> Result<Arc<MdlCodec>> {
        let codec = Arc::new(MdlCodec::generate(spec)?);
        self.codecs.insert(codec.protocol().to_owned(), codec.clone());
        Ok(codec)
    }

    /// Registers an existing codec.
    pub fn insert(&mut self, codec: Arc<MdlCodec>) {
        self.codecs.insert(codec.protocol().to_owned(), codec);
    }

    /// Looks up the codec for a protocol.
    pub fn get(&self, protocol: &str) -> Option<&Arc<MdlCodec>> {
        self.codecs.get(protocol)
    }

    /// Registered protocol names, sorted.
    pub fn protocols(&self) -> Vec<&str> {
        self.codecs.keys().map(String::as_str).collect()
    }

    /// Number of registered codecs.
    pub fn len(&self) -> usize {
        self.codecs.len()
    }

    /// True when no codecs are registered.
    pub fn is_empty(&self) -> bool {
        self.codecs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml_load::load_mdl;

    const BIN: &str = r#"
      <MDL protocol="Bin" kind="binary">
        <Header type="Bin"><Op>8</Op></Header>
        <Message type="A"><Rule>Op=1</Rule><X>16</X></Message>
        <Message type="B"><Rule>Op=2</Rule></Message>
      </MDL>"#;

    const TXT: &str = r#"
      <MDL protocol="Txt" kind="text">
        <Header type="Txt">
          <Method>32</Method>
          <Rest>13,10</Rest>
          <Fields>13,10:58</Fields>
        </Header>
        <Message type="Req"><Rule>Method=GET</Rule></Message>
      </MDL>"#;

    #[test]
    fn codec_dispatches_by_kind() {
        let bin = MdlCodec::generate(load_mdl(BIN).unwrap()).unwrap();
        let txt = MdlCodec::generate(load_mdl(TXT).unwrap()).unwrap();

        let mut a = bin.schema("A").unwrap().instantiate();
        a.set(&"X".into(), starlink_message::Value::Unsigned(7)).unwrap();
        let wire = bin.compose(&a).unwrap();
        assert_eq!(wire, vec![1, 0, 7]);
        assert_eq!(bin.parse(&wire).unwrap().name(), "A");

        let req = txt.schema("Req").unwrap().instantiate();
        let mut req = req;
        req.set(&"Rest".into(), starlink_message::Value::Str("HTTP/1.1".into())).unwrap();
        let wire = txt.compose(&req).unwrap();
        assert!(wire.starts_with(b"GET HTTP/1.1\r\n"));
        assert_eq!(txt.parse(&wire).unwrap().name(), "Req");
    }

    #[test]
    fn registry_stores_by_protocol() {
        let mut registry = MdlRegistry::new();
        registry.load(load_mdl(BIN).unwrap()).unwrap();
        registry.load(load_mdl(TXT).unwrap()).unwrap();
        assert_eq!(registry.protocols(), vec!["Bin", "Txt"]);
        assert!(registry.get("Bin").is_some());
        assert!(registry.get("Nope").is_none());
        assert_eq!(registry.len(), 2);
    }
}
