//! Property tests on the MDL layer: bit I/O round-trips and full
//! compose→parse round-trips through a representative binary spec.

use proptest::prelude::*;
use starlink_mdl::{load_mdl, BitReader, BitWriter, MdlCodec, ResolvedSize};
use starlink_message::Value;

proptest! {
    #[test]
    fn bitio_roundtrip_bit_sequences(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 1..12)) {
        let mut writer = BitWriter::new();
        let mut expected = Vec::new();
        for (value, bits) in &fields {
            let masked = if *bits == 64 { *value } else { value & ((1u64 << bits) - 1) };
            writer.write_bits(masked, *bits).unwrap();
            expected.push((masked, *bits));
        }
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for (value, bits) in expected {
            prop_assert_eq!(reader.read_bits(bits).unwrap(), value);
        }
    }

    #[test]
    fn bitio_never_reads_past_end(data in prop::collection::vec(any::<u8>(), 0..16), bits in 0u32..=64) {
        let mut reader = BitReader::new(&data);
        let result = reader.read_bits(bits);
        if u64::from(bits) <= data.len() as u64 * 8 {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn fqdn_marshaller_roundtrip(labels in prop::collection::vec("[a-z0-9]{1,12}", 1..5)) {
        use starlink_mdl::{FqdnMarshaller, Marshaller};
        let name = Value::Str(labels.join("."));
        let mut writer = BitWriter::new();
        FqdnMarshaller.marshal(&mut writer, &name, ResolvedSize::SelfDelimiting).unwrap();
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        let back = FqdnMarshaller.unmarshal(&mut reader, ResolvedSize::SelfDelimiting).unwrap();
        prop_assert_eq!(back, name);
        // Sizing agrees with what was actually written.
        let declared = FqdnMarshaller
            .wire_bits(&Value::Str(labels.join(".")), ResolvedSize::SelfDelimiting)
            .unwrap();
        prop_assert_eq!(declared, bytes.len() as u64 * 8);
    }
}

/// Reference bit-by-bit writer: the original `BitWriter` algorithm the
/// chunked fast paths must match exactly.
fn reference_write(fields: &[(u64, u32)], byte_runs: &[(usize, Vec<u8>)]) -> Vec<u8> {
    let mut bytes: Vec<u8> = Vec::new();
    let mut bits: u64 = 0;
    let push_bit = |bytes: &mut Vec<u8>, bits: &mut u64, bit: u8| {
        let offset = (*bits % 8) as u8;
        if offset == 0 {
            bytes.push(0);
        }
        let last = bytes.len() - 1;
        bytes[last] |= bit << (7 - offset);
        *bits += 1;
    };
    for (run, (value, width)) in fields.iter().enumerate() {
        for i in (0..*width).rev() {
            push_bit(&mut bytes, &mut bits, ((value >> i) & 1) as u8);
        }
        for (at, data) in byte_runs {
            if *at == run {
                for byte in data {
                    for i in (0..8).rev() {
                        push_bit(&mut bytes, &mut bits, (byte >> i) & 1);
                    }
                }
            }
        }
    }
    bytes
}

/// Reference bit-by-bit reader.
fn reference_read_bits(data: &[u8], pos: &mut u64, n: u32) -> u64 {
    let mut out = 0u64;
    for _ in 0..n {
        let byte = data[(*pos / 8) as usize];
        let bit = (byte >> (7 - (*pos % 8))) & 1;
        out = (out << 1) | u64::from(bit);
        *pos += 1;
    }
    out
}

proptest! {
    /// The chunked `write_bits`/`write_bytes` fast paths produce byte
    /// streams identical to the bit-by-bit reference, for aligned and
    /// unaligned cursors alike.
    #[test]
    fn bitio_fast_paths_match_bit_by_bit_writer(
        fields in prop::collection::vec((any::<u64>(), 0u32..=64), 1..8),
        byte_runs in prop::collection::vec((0usize..8, prop::collection::vec(any::<u8>(), 0..9)), 0..4),
    ) {
        let masked: Vec<(u64, u32)> = fields
            .iter()
            .map(|(v, w)| (if *w == 64 { *v } else { v & ((1u64 << w) - 1) }, *w))
            .collect();
        let mut writer = BitWriter::new();
        for (run, (value, width)) in masked.iter().enumerate() {
            writer.write_bits(*value, *width).unwrap();
            for (at, data) in &byte_runs {
                if *at == run {
                    writer.write_bytes(data);
                }
            }
        }
        prop_assert_eq!(writer.into_bytes(), reference_write(&masked, &byte_runs));
    }

    /// `read_bytes` at aligned and unaligned positions returns exactly
    /// the bytes a bit-by-bit reader yields from the same cursor.
    #[test]
    fn bitio_read_bytes_matches_bit_by_bit_reader(
        data in prop::collection::vec(any::<u8>(), 1..32),
        prefix in 0u32..16,
        take in 0usize..16,
    ) {
        let total_bits = data.len() as u64 * 8;
        prop_assume!(u64::from(prefix) + take as u64 * 8 <= total_bits);
        let mut reader = BitReader::new(&data);
        reader.read_bits(prefix).unwrap();
        let fast = reader.read_bytes(take).unwrap();
        let mut pos = u64::from(prefix);
        let reference: Vec<u8> = (0..take)
            .map(|_| reference_read_bits(&data, &mut pos, 8) as u8)
            .collect();
        prop_assert_eq!(fast, reference);
        prop_assert_eq!(reader.position_bits(), pos);
    }

    /// Chunked `read_bits` agrees with the bit-by-bit reference across
    /// arbitrary split points.
    #[test]
    fn bitio_read_bits_matches_bit_by_bit_reader(
        data in prop::collection::vec(any::<u8>(), 1..16),
        widths in prop::collection::vec(0u32..=64, 1..6),
    ) {
        let total: u64 = widths.iter().map(|w| u64::from(*w)).sum();
        prop_assume!(total <= data.len() as u64 * 8);
        let mut reader = BitReader::new(&data);
        let mut pos = 0u64;
        for width in &widths {
            let fast = reader.read_bits(*width).unwrap();
            let reference = reference_read_bits(&data, &mut pos, *width);
            prop_assert_eq!(fast, reference, "width {}", width);
        }
    }

    /// Scratch-buffer composition (`BitWriter::with_buffer`) is
    /// indistinguishable from a fresh writer.
    #[test]
    fn bitio_with_buffer_matches_fresh_writer(
        fields in prop::collection::vec((any::<u64>(), 1u32..=64), 1..8),
        junk in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut fresh = BitWriter::new();
        let mut reused = BitWriter::with_buffer(junk);
        for (value, width) in &fields {
            let masked = if *width == 64 { *value } else { value & ((1u64 << width) - 1) };
            fresh.write_bits(masked, *width).unwrap();
            reused.write_bits(masked, *width).unwrap();
        }
        prop_assert_eq!(fresh.into_bytes(), reused.into_bytes());
    }
}

const SPEC: &str = r#"
  <MDL protocol="Prop" kind="binary">
    <Types>
      <Payload>String</Payload>
      <PayloadLen>Integer[f-length(Payload)]</PayloadLen>
      <Total>Integer[f-total-length()]</Total>
    </Types>
    <Header type="Prop">
      <Version>4</Version>
      <Op>4</Op>
      <Total>16</Total>
      <Tag>16</Tag>
    </Header>
    <Message type="Data">
      <Rule>Op=1</Rule>
      <PayloadLen>16</PayloadLen>
      <Payload>PayloadLen</Payload>
    </Message>
  </MDL>"#;

proptest! {
    #[test]
    fn compose_parse_roundtrip_with_functions(
        version in 0u64..16,
        tag in any::<u16>(),
        payload in "[ -~]{0,64}",
    ) {
        let codec = MdlCodec::generate(load_mdl(SPEC).unwrap()).unwrap();
        let mut msg = codec.schema("Data").unwrap().instantiate();
        msg.set(&"Version".into(), Value::Unsigned(version)).unwrap();
        msg.set(&"Tag".into(), Value::Unsigned(u64::from(tag))).unwrap();
        msg.set(&"Payload".into(), Value::Str(payload.clone())).unwrap();
        let wire = codec.compose(&msg).unwrap();
        // The auto-computed total length matches the wire image.
        let parsed = codec.parse(&wire).unwrap();
        prop_assert_eq!(parsed.get(&"Total".into()).unwrap().as_u64().unwrap(), wire.len() as u64);
        prop_assert_eq!(parsed.get(&"Version".into()).unwrap().as_u64().unwrap(), version);
        prop_assert_eq!(parsed.get(&"Tag".into()).unwrap().as_u64().unwrap(), u64::from(tag));
        prop_assert_eq!(parsed.get(&"Payload".into()).unwrap().as_str().unwrap(), payload.as_str());
        // Idempotence: recomposing the parsed message is byte-identical.
        prop_assert_eq!(codec.compose(&parsed).unwrap(), wire);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let codec = MdlCodec::generate(load_mdl(SPEC).unwrap()).unwrap();
        let _ = codec.parse(&data); // may Err, must not panic
    }
}

const TEXT_SPEC: &str = r#"
  <MDL protocol="PropText" kind="text">
    <Header type="PropText">
      <Verb>32</Verb>
      <Rest>13,10</Rest>
      <Fields>13,10:58</Fields>
    </Header>
    <Message type="Req"><Rule>Verb=REQ</Rule></Message>
  </MDL>"#;

proptest! {
    #[test]
    fn text_codec_roundtrips_header_pairs(
        pairs in prop::collection::btree_map("[A-Za-z][A-Za-z0-9-]{0,8}", "[a-zA-Z0-9 ./]{0,16}", 0..5),
    ) {
        // Labels that collide with declared fields would shadow them.
        prop_assume!(!pairs.contains_key("Verb") && !pairs.contains_key("Rest") && !pairs.contains_key("Fields"));
        let codec = MdlCodec::generate(load_mdl(TEXT_SPEC).unwrap()).unwrap();
        let mut wire = b"REQ path\r\n".to_vec();
        for (label, value) in &pairs {
            wire.extend_from_slice(format!("{label}: {value}\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        let msg = codec.parse(&wire).unwrap();
        for (label, value) in &pairs {
            prop_assert_eq!(
                msg.get(&starlink_message::FieldPath::field(label)).unwrap().to_text(),
                value.trim().to_owned()
            );
        }
        // Parse∘compose is a fixed point at the abstract-message level.
        let recomposed = codec.compose(&msg).unwrap();
        let reparsed = codec.parse(&recomposed).unwrap();
        prop_assert_eq!(reparsed, msg);
    }

    #[test]
    fn text_parser_never_panics(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let codec = MdlCodec::generate(load_mdl(TEXT_SPEC).unwrap()).unwrap();
        let _ = codec.parse(&data);
    }
}
