//! Property tests on the MDL layer: bit I/O round-trips and full
//! compose→parse round-trips through a representative binary spec.

use proptest::prelude::*;
use starlink_mdl::{
    load_mdl, BitReader, BitWriter, MdlCodec, ResolvedSize,
};
use starlink_message::Value;

proptest! {
    #[test]
    fn bitio_roundtrip_bit_sequences(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 1..12)) {
        let mut writer = BitWriter::new();
        let mut expected = Vec::new();
        for (value, bits) in &fields {
            let masked = if *bits == 64 { *value } else { value & ((1u64 << bits) - 1) };
            writer.write_bits(masked, *bits).unwrap();
            expected.push((masked, *bits));
        }
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for (value, bits) in expected {
            prop_assert_eq!(reader.read_bits(bits).unwrap(), value);
        }
    }

    #[test]
    fn bitio_never_reads_past_end(data in prop::collection::vec(any::<u8>(), 0..16), bits in 0u32..=64) {
        let mut reader = BitReader::new(&data);
        let result = reader.read_bits(bits);
        if u64::from(bits) <= data.len() as u64 * 8 {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn fqdn_marshaller_roundtrip(labels in prop::collection::vec("[a-z0-9]{1,12}", 1..5)) {
        use starlink_mdl::{FqdnMarshaller, Marshaller};
        let name = Value::Str(labels.join("."));
        let mut writer = BitWriter::new();
        FqdnMarshaller.marshal(&mut writer, &name, ResolvedSize::SelfDelimiting).unwrap();
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        let back = FqdnMarshaller.unmarshal(&mut reader, ResolvedSize::SelfDelimiting).unwrap();
        prop_assert_eq!(back, name);
        // Sizing agrees with what was actually written.
        let declared = FqdnMarshaller
            .wire_bits(&Value::Str(labels.join(".")), ResolvedSize::SelfDelimiting)
            .unwrap();
        prop_assert_eq!(declared, bytes.len() as u64 * 8);
    }
}

const SPEC: &str = r#"
  <MDL protocol="Prop" kind="binary">
    <Types>
      <Payload>String</Payload>
      <PayloadLen>Integer[f-length(Payload)]</PayloadLen>
      <Total>Integer[f-total-length()]</Total>
    </Types>
    <Header type="Prop">
      <Version>4</Version>
      <Op>4</Op>
      <Total>16</Total>
      <Tag>16</Tag>
    </Header>
    <Message type="Data">
      <Rule>Op=1</Rule>
      <PayloadLen>16</PayloadLen>
      <Payload>PayloadLen</Payload>
    </Message>
  </MDL>"#;

proptest! {
    #[test]
    fn compose_parse_roundtrip_with_functions(
        version in 0u64..16,
        tag in any::<u16>(),
        payload in "[ -~]{0,64}",
    ) {
        let codec = MdlCodec::generate(load_mdl(SPEC).unwrap()).unwrap();
        let mut msg = codec.schema("Data").unwrap().instantiate();
        msg.set(&"Version".into(), Value::Unsigned(version)).unwrap();
        msg.set(&"Tag".into(), Value::Unsigned(u64::from(tag))).unwrap();
        msg.set(&"Payload".into(), Value::Str(payload.clone())).unwrap();
        let wire = codec.compose(&msg).unwrap();
        // The auto-computed total length matches the wire image.
        let parsed = codec.parse(&wire).unwrap();
        prop_assert_eq!(parsed.get(&"Total".into()).unwrap().as_u64().unwrap(), wire.len() as u64);
        prop_assert_eq!(parsed.get(&"Version".into()).unwrap().as_u64().unwrap(), version);
        prop_assert_eq!(parsed.get(&"Tag".into()).unwrap().as_u64().unwrap(), u64::from(tag));
        prop_assert_eq!(parsed.get(&"Payload".into()).unwrap().as_str().unwrap(), payload.as_str());
        // Idempotence: recomposing the parsed message is byte-identical.
        prop_assert_eq!(codec.compose(&parsed).unwrap(), wire);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let codec = MdlCodec::generate(load_mdl(SPEC).unwrap()).unwrap();
        let _ = codec.parse(&data); // may Err, must not panic
    }
}

const TEXT_SPEC: &str = r#"
  <MDL protocol="PropText" kind="text">
    <Header type="PropText">
      <Verb>32</Verb>
      <Rest>13,10</Rest>
      <Fields>13,10:58</Fields>
    </Header>
    <Message type="Req"><Rule>Verb=REQ</Rule></Message>
  </MDL>"#;

proptest! {
    #[test]
    fn text_codec_roundtrips_header_pairs(
        pairs in prop::collection::btree_map("[A-Za-z][A-Za-z0-9-]{0,8}", "[a-zA-Z0-9 ./]{0,16}", 0..5),
    ) {
        // Labels that collide with declared fields would shadow them.
        prop_assume!(!pairs.contains_key("Verb") && !pairs.contains_key("Rest") && !pairs.contains_key("Fields"));
        let codec = MdlCodec::generate(load_mdl(TEXT_SPEC).unwrap()).unwrap();
        let mut wire = b"REQ path\r\n".to_vec();
        for (label, value) in &pairs {
            wire.extend_from_slice(format!("{label}: {value}\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        let msg = codec.parse(&wire).unwrap();
        for (label, value) in &pairs {
            prop_assert_eq!(
                msg.get(&starlink_message::FieldPath::field(label)).unwrap().to_text(),
                value.trim().to_owned()
            );
        }
        // Parse∘compose is a fixed point at the abstract-message level.
        let recomposed = codec.compose(&msg).unwrap();
        let reparsed = codec.parse(&recomposed).unwrap();
        prop_assert_eq!(reparsed, msg);
    }

    #[test]
    fn text_parser_never_panics(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let codec = MdlCodec::generate(load_mdl(TEXT_SPEC).unwrap()).unwrap();
        let _ = codec.parse(&data);
    }
}
