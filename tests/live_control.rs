//! The live control plane end to end: registry loads that reproduce the
//! `starlink-check` diagnostics verbatim when a bad spec is refused, a
//! genuine ontology revision (two synthesized versions of the same
//! bridge) drained-then-swapped under in-flight traffic with the
//! metrics endpoint scraped mid-drain, and the same swap through the
//! real-socket [`ShardedGateway`] with the ingress ports held stable.

use starlink::core::{
    swap_commands, synthesize_bridge, BridgeRegistry, CoreError, DeployState, EngineConfig,
    GatewayConfig, MetricsHub, ShardInput, ShardOutput, ShardedBridge, ShardedGateway, Starlink,
};
use starlink::net::{
    Bytes, Datagram, LatencyModel, LoopbackUdp, MetricsServer, SimAddr, SimDuration, SimTime,
};
use starlink::protocols::{
    bridges::{self, BridgeCase},
    mdns, slp, wsd, Calibration,
};
use starlink_bench::{add_target_service, expected_discovery_url, BRIDGE};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// `GET {path}` against a [`MetricsServer`], returning the raw response.
fn http_get(server: &MetricsServer, path: &str) -> String {
    let mut stream = TcpStream::connect((Ipv4Addr::LOCALHOST, server.port())).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").as_bytes())
        .expect("write request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

fn body(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).expect("response has a body")
}

/// Every control-plane refusal carries the *same* rendered diagnostics
/// as the `starlink-check` CLI: for each badspec fixture whose golden
/// snapshot holds an error, [`BridgeRegistry::load_file`] must refuse
/// with a report rendering byte-identically to that snapshot — and
/// every fixture clean at error severity must load.
#[test]
fn badspec_loads_reproduce_the_checker_diagnostics_verbatim() {
    let dir = repo_path("tests/fixtures/badspecs");
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("badspecs directory readable")
        .map(|entry| entry.expect("directory entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("xml"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "no fixtures found in {}", dir.display());

    for fixture in &fixtures {
        let stem = fixture.file_stem().and_then(|s| s.to_str()).expect("fixture stem");
        let golden_path = dir.join("golden").join(format!("{stem}.txt"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));

        let mut registry = BridgeRegistry::new();
        let result = registry.load_file(fixture);
        if golden.contains("error[") {
            let err = result.err().unwrap_or_else(|| {
                panic!("{stem}: an error-severity spec must be refused at load")
            });
            let CoreError::Rejected(report) = err else {
                panic!("{stem}: expected a structured rejection, got: {err}");
            };
            assert_eq!(report.subject, fixture.display().to_string());
            assert!(report.errors().count() > 0, "{stem}: rejection carries no errors");
            assert_eq!(
                format!("{}\n", report.render()),
                golden,
                "{stem}: the registry's rejection drifted from the starlink-check render"
            );
        } else {
            result.unwrap_or_else(|e| {
                panic!("{stem}: a spec clean at error severity must load, got: {e}")
            });
        }
    }
}

/// The PR's acceptance scenario, on genuinely different model versions:
/// v1 and v2 are two *synthesized* WSD→SLP bridges differing only in
/// the ontology (`LangTag` constant `"en"` vs `"fr"`). Three probes go
/// in-flight on v1, the fleet swaps to v2 mid-drain (scraping the HTTP
/// endpoint while both versions coexist), two fresh probes land on v2,
/// and every one of the five clients gets exactly its own ProbeMatch —
/// zero dropped in-flight sessions, zero unrouted datagrams.
#[test]
fn two_ontology_revisions_coexist_through_a_live_drain() {
    let case = BridgeCase::WsdToSlp;
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let (_, service_side, client_side, ontology) = bridges::synthesized_inputs()
        .into_iter()
        .find(|(c, ..)| *c == case)
        .expect("case 7 is synthesizable");

    let merged_v1 =
        synthesize_bridge(&framework, "wsd-to-slp-live", service_side, client_side, &ontology)
            .expect("v1 synthesizes");
    // The ontology revision: the composed SLP requests now carry the
    // French language tag (the legacy service echoes whatever it gets).
    let ontology_fr = ontology.constant("SLPSrvRequest", "LangTag", "fr");
    let merged_v2 = synthesize_bridge(
        &framework,
        "wsd-to-slp-live",
        wsd::service_automaton(),
        slp::client_automaton(),
        &ontology_fr,
    )
    .expect("v2 synthesizes");

    let mut registry = BridgeRegistry::with_framework(framework);
    let (v1_engines, v1) =
        registry.deploy_sharded(merged_v1, EngineConfig::default(), 2).expect("v1 deploys");
    let (v2_engines, v2) =
        registry.deploy_sharded(merged_v2, EngineConfig::default(), 2).expect("v2 deploys");
    assert_eq!((v1.version(), v2.version()), (1, 2));

    let mut bridge = ShardedBridge::launch(0x11CE, BRIDGE, v1_engines, |_, sim| {
        add_target_service(sim, case, Calibration::fast());
    });
    let hub = MetricsHub::new();
    hub.register(&v1);
    let server = MetricsServer::serve(hub.render_fn()).expect("endpoint binds");

    let probe = |index: usize| {
        ShardInput::Datagram(Datagram {
            from: SimAddr::new(format!("10.20.1.{index}"), wsd::WSD_CLIENT_PORT),
            to: SimAddr::new(BRIDGE, wsd::WSD_PORT),
            payload: Bytes::from(wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(
                1 + index as u64,
                "dn:printer",
            )))),
        })
    };

    // Three probes go in-flight on v1 (the calibrated SLP service
    // answers ~3 virtual ms later, so nothing resolves yet).
    bridge.dispatch(SimTime::from_micros(1_000), (0..3).map(probe));
    bridge.flush();
    assert_eq!(v1.stats().concurrency().started, 3);
    assert_eq!(v1.stats().concurrency().active, 3, "probes are in-flight on v1");

    // Swap to v2 while those three sessions are mid-translation.
    bridge.dispatch_control(SimTime::from_micros(1_100), swap_commands(&v2, v2_engines));
    bridge.flush();
    hub.register(&v2);

    // The drain window, as an operator sees it over HTTP: both versions
    // exported, v1 draining with its three live sessions, v2 serving.
    let mid_drain = http_get(&server, "/metrics");
    assert!(mid_drain.starts_with("HTTP/1.0 200 OK"), "{mid_drain}");
    let page = body(&mid_drain);
    for needle in [
        r#"starlink_deployment_state{case="wsd-to-slp-live",version="1",state="draining"} 1"#,
        r#"starlink_deployment_state{case="wsd-to-slp-live",version="2",state="serving"} 1"#,
        r#"starlink_sessions_total{case="wsd-to-slp-live",version="1",outcome="started"} 3"#,
        r#"starlink_sessions_total{case="wsd-to-slp-live",version="2",outcome="started"} 0"#,
        r#"starlink_sessions_active{case="wsd-to-slp-live",version="1"} 3"#,
    ] {
        assert!(page.contains(needle), "mid-drain page lacks `{needle}`:\n{page}");
    }

    // Fresh traffic lands on the new version; the draining one keeps
    // only its in-flight work.
    bridge.dispatch(SimTime::from_micros(1_200), (3..5).map(probe));
    bridge.flush();
    assert_eq!(v2.stats().concurrency().started, 2, "fresh probes landed on v2");
    assert_eq!(v1.stats().concurrency().started, 3, "v1 took no fresh traffic");

    // Let every reply timer fire: the three v1 sessions must finish on
    // v1, the two v2 sessions on v2, and v1 must then be reaped.
    bridge.advance(SimTime::from_millis(200));
    bridge.flush();
    let mut outputs = Vec::new();
    bridge.drain_into(&mut outputs);
    let mut replied = vec![0usize; 5];
    for (_, output) in &outputs {
        let ShardOutput::Datagram(datagram) = output else {
            panic!("unexpected non-datagram output: {output:?}");
        };
        let Ok(wsd::WsdMessage::ProbeMatch(matched)) = wsd::decode(&datagram.payload) else {
            panic!("unexpected reply payload to {}", datagram.to.host);
        };
        let index: usize = datagram
            .to
            .host
            .strip_prefix("10.20.1.")
            .and_then(|s| s.parse().ok())
            .expect("reply goes to a probing client");
        assert_eq!(
            matched.relates_to,
            wsd::probe_uuid(1 + index as u64),
            "client {index} got another client's match"
        );
        assert_eq!(matched.xaddrs, expected_discovery_url(case));
        replied[index] += 1;
    }
    assert_eq!(replied, vec![1; 5], "every client got exactly its own ProbeMatch");

    let old = v1.stats().concurrency();
    let new = v2.stats().concurrency();
    assert_eq!((old.started, old.completed, old.active), (3, 3, 0), "v1 drained clean");
    assert_eq!((new.started, new.completed, new.active), (2, 2, 0), "v2 serving clean");
    assert_eq!(v1.state(), DeployState::Retired, "drained version was reaped");
    assert_eq!(v2.state(), DeployState::Serving);
    assert_eq!(bridge.unrouted(), 0, "no datagram fell into the swap gap");
    assert!(v1.stats().errors().is_empty(), "{:?}", v1.stats().errors());
    assert!(v2.stats().errors().is_empty(), "{:?}", v2.stats().errors());

    let settled = body(&http_get(&server, "/metrics")).to_owned();
    for needle in [
        r#"starlink_deployment_state{case="wsd-to-slp-live",version="1",state="retired"} 1"#,
        r#"starlink_deployment_state{case="wsd-to-slp-live",version="2",state="serving"} 1"#,
        r#"starlink_sessions_total{case="wsd-to-slp-live",version="1",outcome="completed"} 3"#,
        r#"starlink_sessions_total{case="wsd-to-slp-live",version="2",outcome="completed"} 2"#,
    ] {
        assert!(settled.contains(needle), "settled page lacks `{needle}`:\n{settled}");
    }
}

/// The same drain-then-swap against the *real-socket* front: a served
/// [`ShardedGateway`] swaps its bridge between two registry versions
/// without changing a single advertised ingress port, keeps answering
/// SLP lookups on every shard, and its metrics endpoint exports both
/// versions plus the gateway's own counters. Skips quietly when the
/// environment forbids socket creation (same policy as
/// `loopback_sockets.rs`).
#[test]
fn gateway_swap_keeps_ingress_ports_and_exports_both_versions() {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let mut registry = BridgeRegistry::with_framework(framework);
    let (v1_engines, v1) = registry
        .deploy_sharded(bridges::slp_to_bonjour(), EngineConfig::default(), 2)
        .expect("v1 deploys");
    let (v2_engines, v2) = registry
        .deploy_sharded(bridges::slp_to_bonjour(), EngineConfig::default(), 2)
        .expect("v2 deploys");

    let bridge = ShardedBridge::launch(21, BRIDGE, v1_engines, |_, sim| {
        sim.set_latency(LatencyModel::Fixed(SimDuration::ZERO));
        sim.add_actor(
            "10.0.0.3",
            mdns::BonjourService::new(
                "_printer._tcp.local",
                "service:printer://10.0.0.3:631",
                Calibration::instant(),
            ),
        );
    });
    let config =
        GatewayConfig { udp_ports: vec![slp::SLP_PORT], threads: 1, ..GatewayConfig::default() };
    let gateway = match ShardedGateway::launch(bridge, config) {
        Ok(gateway) => gateway,
        Err(err) => {
            eprintln!("skipping: gateway sockets unavailable in this environment ({err})");
            return;
        }
    };
    let hub = MetricsHub::new();
    let server = match gateway.serve_metrics(&hub) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("skipping: metrics endpoint unavailable in this environment ({err})");
            return;
        }
    };
    hub.register(&v1);

    let slp_exchange = |ingress: u16, xid: u16| {
        let client = LoopbackUdp::bind_with_timeout(Duration::from_secs(10)).unwrap();
        let rqst = slp::SrvRqst::new(xid, "service:printer");
        client.send_to(&slp::encode(&slp::SlpMessage::SrvRqst(rqst)), ingress).unwrap();
        let (payload, _) = client.recv().expect("reply within the socket timeout");
        match slp::decode(&payload).unwrap() {
            slp::SlpMessage::SrvRply(rply) => (rply.xid, rply.url),
            other => panic!("unexpected {other:?}"),
        }
    };

    let ports: Vec<u16> = (0..gateway.shard_count())
        .map(|s| gateway.ingress_real_port(s, slp::SLP_PORT).expect("ingress port mapped"))
        .collect();
    for (s, &port) in ports.iter().enumerate() {
        let (xid, url) = slp_exchange(port, 0x5100 + s as u16);
        assert_eq!(xid, 0x5100 + s as u16);
        assert_eq!(url, "service:printer://10.0.0.3:631");
    }
    gateway.flush();
    assert_eq!(v1.stats().concurrency().completed, ports.len() as u64);

    // The live swap: one command per shard, riding the ordinary batch
    // queues behind the traffic above.
    gateway.dispatch_control(swap_commands(&v2, v2_engines));
    gateway.flush();
    hub.register(&v2);

    // Same advertised ports, and every shard keeps answering — now on v2.
    let after: Vec<u16> = (0..gateway.shard_count())
        .map(|s| gateway.ingress_real_port(s, slp::SLP_PORT).expect("ingress port mapped"))
        .collect();
    assert_eq!(ports, after, "the swap touched no socket registration");
    for (s, &port) in after.iter().enumerate() {
        let (xid, url) = slp_exchange(port, 0x5200 + s as u16);
        assert_eq!(xid, 0x5200 + s as u16);
        assert_eq!(url, "service:printer://10.0.0.3:631");
    }
    gateway.flush();
    assert_eq!(v1.stats().concurrency().completed, ports.len() as u64, "v1 took no new work");
    assert_eq!(v2.stats().concurrency().completed, ports.len() as u64, "v2 answered post-swap");
    assert_eq!(v1.state(), DeployState::Retired, "idle version reaped at the swap");
    assert_eq!(v2.state(), DeployState::Serving);

    // The operator's view of all of it, over the gateway-served endpoint.
    let page = body(&http_get(&server, "/metrics")).to_owned();
    for needle in [
        r#"starlink_deployment_state{case="slp-to-bonjour",version="1",state="retired"} 1"#,
        r#"starlink_deployment_state{case="slp-to-bonjour",version="2",state="serving"} 1"#,
        r#"starlink_gateway_datagrams_total{direction="in"}"#,
        r#"starlink_gateway_datagrams_total{direction="out"}"#,
        "starlink_gateway_submits_total",
        "starlink_unrouted_total 0",
    ] {
        assert!(page.contains(needle), "gateway metrics page lacks `{needle}`:\n{page}");
    }
    assert!(gateway.errors().is_empty(), "gateway errors: {:?}", gateway.errors());
}
