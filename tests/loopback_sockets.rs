//! Real-socket tests: the wire codecs (native and MDL-driven) work over
//! actual UDP sockets on loopback, and the bridge engine serves *live*
//! multi-client traffic behind real sockets through the
//! [`starlink::net::UdpBridge`] gateway loop — demonstrating that
//! nothing in the stack depends on simulator artefacts. Tests skip
//! quietly when the environment forbids socket creation.

use starlink::core::Starlink;
use starlink::mdl::{load_mdl, MdlCodec};
use starlink::net::{LoopbackUdp, SimAddr, UdpBridge};
use starlink::protocols::{bridges, mdns, slp};
use std::time::Duration;

fn sockets() -> Option<(LoopbackUdp, LoopbackUdp)> {
    match (LoopbackUdp::bind(), LoopbackUdp::bind()) {
        (Ok(a), Ok(b)) => Some((a, b)),
        _ => {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            None
        }
    }
}

#[test]
fn native_slp_exchange_over_real_udp() {
    let Some((client, service)) = sockets() else { return };
    let service_port = service.port().unwrap();

    let handle = std::thread::spawn(move || {
        let (payload, from) = service.recv().unwrap();
        let slp::SlpMessage::SrvRqst(rqst) = slp::decode(&payload).unwrap() else {
            panic!("expected SrvRqst");
        };
        let rply = slp::SrvRply::new(rqst.xid, "service:printer://127.0.0.1:631");
        service.send_to(&slp::encode(&slp::SlpMessage::SrvRply(rply)), from).unwrap();
    });

    let rqst = slp::SrvRqst::new(0x77, "service:printer");
    client.send_to(&slp::encode(&slp::SlpMessage::SrvRqst(rqst)), service_port).unwrap();
    let (payload, _) = client.recv().unwrap();
    match slp::decode(&payload).unwrap() {
        slp::SlpMessage::SrvRply(rply) => {
            assert_eq!(rply.xid, 0x77);
            assert_eq!(rply.url, "service:printer://127.0.0.1:631");
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.join().unwrap();
}

#[test]
fn mdl_codec_interoperates_with_native_peer_over_real_udp() {
    // One side speaks through the runtime-generated MDL codec, the other
    // through the hand-written native codec — over real sockets.
    let Some((model_side, native_side)) = sockets() else { return };
    let native_port = native_side.port().unwrap();

    let handle = std::thread::spawn(move || {
        let (payload, from) = native_side.recv().unwrap();
        let mdns::DnsMessage::Question(q) = mdns::decode(&payload).unwrap() else {
            panic!("expected question");
        };
        assert_eq!(q.qname, "_printer._tcp.local");
        let response = mdns::DnsResponse::new(q.id, q.qname, "service:printer://real");
        native_side
            .send_to(&mdns::encode(&mdns::DnsMessage::Response(response)).unwrap(), from)
            .unwrap();
    });

    let codec = MdlCodec::generate(load_mdl(mdns::mdl_xml()).unwrap()).unwrap();
    let mut question = codec.schema("DNS_Question").unwrap().instantiate();
    question.set(&"ID".into(), starlink::message::Value::Unsigned(5)).unwrap();
    question.set(&"QDCount".into(), starlink::message::Value::Unsigned(1)).unwrap();
    question
        .set(&"QName".into(), starlink::message::Value::Str("_printer._tcp.local".into()))
        .unwrap();
    question.set(&"QType".into(), starlink::message::Value::Unsigned(12)).unwrap();
    question.set(&"QClass".into(), starlink::message::Value::Unsigned(1)).unwrap();
    model_side.send_to(&codec.compose(&question).unwrap(), native_port).unwrap();

    let (payload, _) = model_side.recv().unwrap();
    let parsed = codec.parse(&payload).unwrap();
    assert_eq!(parsed.name(), "DNS_Response");
    assert_eq!(parsed.get(&"RData".into()).unwrap().as_str().unwrap(), "service:printer://real");
    handle.join().unwrap();
}

#[test]
fn bridge_engine_serves_live_multi_client_traffic_over_real_udp() {
    // A deployed SLP→Bonjour bridge hosted behind real loopback sockets:
    // several real SLP clients fire requests concurrently, a real
    // Bonjour-style responder answers the bridge's translated questions,
    // and every client must get its own reply back on its own socket.
    const CLIENTS: usize = 6;
    const SERVICE_URL: &str = "service:printer://127.0.0.1:631";

    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let (engine, stats) = framework.deploy(bridges::slp_to_bonjour()).unwrap();
    let Ok(mut bridge) =
        UdpBridge::deploy(91, "10.0.0.2", engine, &[slp::SLP_PORT, mdns::MDNS_PORT])
    else {
        eprintln!("skipping: loopback UDP unavailable in this environment");
        return;
    };
    let slp_port = bridge.real_port(slp::SLP_PORT).unwrap();

    // The responder lives outside the gateway's simulation; it joins the
    // mDNS group so the bridge's multicast questions reach its socket.
    let responder = LoopbackUdp::bind_with_timeout(Duration::from_secs(5)).unwrap();
    bridge.join_group_external(
        SimAddr::new(mdns::MDNS_GROUP, mdns::MDNS_PORT),
        responder.port().unwrap(),
    );
    let responder_handle = std::thread::spawn(move || {
        for _ in 0..CLIENTS {
            let Ok((payload, from)) = responder.recv() else { return };
            let Ok(mdns::DnsMessage::Question(q)) = mdns::decode(&payload) else {
                continue;
            };
            let response = mdns::DnsResponse::new(q.id, q.qname, SERVICE_URL);
            let wire = mdns::encode(&mdns::DnsMessage::Response(response)).unwrap();
            responder.send_to(&wire, from).unwrap();
        }
    });

    let mut client_handles = Vec::new();
    for i in 0..CLIENTS {
        let client = LoopbackUdp::bind_with_timeout(Duration::from_secs(5)).unwrap();
        let xid = 0x1000 + i as u16;
        client_handles.push(std::thread::spawn(move || {
            let rqst = slp::SrvRqst::new(xid, "service:printer");
            client.send_to(&slp::encode(&slp::SlpMessage::SrvRqst(rqst)), slp_port).unwrap();
            let (payload, _) = client.recv().expect("reply within the socket timeout");
            match slp::decode(&payload).unwrap() {
                slp::SlpMessage::SrvRply(rply) => (xid, rply.xid, rply.url),
                other => panic!("unexpected {other:?}"),
            }
        }));
    }

    // Pump the gateway while clients and responder run on their threads.
    let stats_probe = stats.clone();
    bridge.pump_until(Duration::from_secs(10), || stats_probe.session_count() >= CLIENTS).unwrap();

    for handle in client_handles {
        let (sent_xid, got_xid, url) = handle.join().unwrap();
        assert_eq!(got_xid, sent_xid, "reply XID belongs to this client's own session");
        assert_eq!(url, SERVICE_URL);
    }
    responder_handle.join().unwrap();
    assert_eq!(stats.session_count(), CLIENTS);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
    let c = stats.concurrency();
    assert_eq!(c.completed, CLIENTS as u64);
    assert_eq!(c.active, 0);
    stats.assert_consistent("live multi-client bridge");
}
