//! Real-socket smoke tests: the wire codecs (native and MDL-driven) work
//! over actual UDP sockets on loopback, demonstrating that nothing in
//! the message stack depends on simulator artefacts. Tests skip quietly
//! when the environment forbids socket creation.

use starlink::mdl::{load_mdl, MdlCodec};
use starlink::net::LoopbackUdp;
use starlink::protocols::{mdns, slp};

fn sockets() -> Option<(LoopbackUdp, LoopbackUdp)> {
    match (LoopbackUdp::bind(), LoopbackUdp::bind()) {
        (Ok(a), Ok(b)) => Some((a, b)),
        _ => {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            None
        }
    }
}

#[test]
fn native_slp_exchange_over_real_udp() {
    let Some((client, service)) = sockets() else { return };
    let service_port = service.port().unwrap();

    let handle = std::thread::spawn(move || {
        let (payload, from) = service.recv().unwrap();
        let slp::SlpMessage::SrvRqst(rqst) = slp::decode(&payload).unwrap() else {
            panic!("expected SrvRqst");
        };
        let rply = slp::SrvRply::new(rqst.xid, "service:printer://127.0.0.1:631");
        service.send_to(&slp::encode(&slp::SlpMessage::SrvRply(rply)), from).unwrap();
    });

    let rqst = slp::SrvRqst::new(0x77, "service:printer");
    client.send_to(&slp::encode(&slp::SlpMessage::SrvRqst(rqst)), service_port).unwrap();
    let (payload, _) = client.recv().unwrap();
    match slp::decode(&payload).unwrap() {
        slp::SlpMessage::SrvRply(rply) => {
            assert_eq!(rply.xid, 0x77);
            assert_eq!(rply.url, "service:printer://127.0.0.1:631");
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.join().unwrap();
}

#[test]
fn mdl_codec_interoperates_with_native_peer_over_real_udp() {
    // One side speaks through the runtime-generated MDL codec, the other
    // through the hand-written native codec — over real sockets.
    let Some((model_side, native_side)) = sockets() else { return };
    let native_port = native_side.port().unwrap();

    let handle = std::thread::spawn(move || {
        let (payload, from) = native_side.recv().unwrap();
        let mdns::DnsMessage::Question(q) = mdns::decode(&payload).unwrap() else {
            panic!("expected question");
        };
        assert_eq!(q.qname, "_printer._tcp.local");
        let response = mdns::DnsResponse::new(q.id, q.qname, "service:printer://real");
        native_side
            .send_to(&mdns::encode(&mdns::DnsMessage::Response(response)).unwrap(), from)
            .unwrap();
    });

    let codec = MdlCodec::generate(load_mdl(mdns::mdl_xml()).unwrap()).unwrap();
    let mut question = codec.schema("DNS_Question").unwrap().instantiate();
    question.set(&"ID".into(), starlink::message::Value::Unsigned(5)).unwrap();
    question.set(&"QDCount".into(), starlink::message::Value::Unsigned(1)).unwrap();
    question
        .set(&"QName".into(), starlink::message::Value::Str("_printer._tcp.local".into()))
        .unwrap();
    question.set(&"QType".into(), starlink::message::Value::Unsigned(12)).unwrap();
    question.set(&"QClass".into(), starlink::message::Value::Unsigned(1)).unwrap();
    model_side.send_to(&codec.compose(&question).unwrap(), native_port).unwrap();

    let (payload, _) = model_side.recv().unwrap();
    let parsed = codec.parse(&payload).unwrap();
    assert_eq!(parsed.name(), "DNS_Response");
    assert_eq!(parsed.get(&"RData".into()).unwrap().as_str().unwrap(), "service:printer://real");
    handle.join().unwrap();
}
