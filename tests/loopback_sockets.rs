//! Real-socket tests: the wire codecs (native and MDL-driven) work over
//! actual UDP sockets on loopback, and the bridge engine serves *live*
//! multi-client traffic behind real sockets through the
//! [`starlink::net::UdpBridge`] gateway loop — demonstrating that
//! nothing in the stack depends on simulator artefacts. Tests skip
//! quietly when the environment forbids socket creation.

use starlink::core::{EngineConfig, GatewayConfig, ShardedBridge, ShardedGateway, Starlink};
use starlink::mdl::{load_mdl, MdlCodec};
use starlink::net::{
    Actor, Context, Datagram, LatencyModel, LoopbackUdp, SimAddr, SimDuration, UdpBridge,
};
use starlink::protocols::{bridges, mdns, slp, Calibration};
use std::time::{Duration, Instant};

fn sockets() -> Option<(LoopbackUdp, LoopbackUdp)> {
    match (LoopbackUdp::bind(), LoopbackUdp::bind()) {
        (Ok(a), Ok(b)) => Some((a, b)),
        _ => {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            None
        }
    }
}

#[test]
fn native_slp_exchange_over_real_udp() {
    let Some((client, service)) = sockets() else { return };
    let service_port = service.port().unwrap();

    let handle = std::thread::spawn(move || {
        let (payload, from) = service.recv().unwrap();
        let slp::SlpMessage::SrvRqst(rqst) = slp::decode(&payload).unwrap() else {
            panic!("expected SrvRqst");
        };
        let rply = slp::SrvRply::new(rqst.xid, "service:printer://127.0.0.1:631");
        service.send_to(&slp::encode(&slp::SlpMessage::SrvRply(rply)), from).unwrap();
    });

    let rqst = slp::SrvRqst::new(0x77, "service:printer");
    client.send_to(&slp::encode(&slp::SlpMessage::SrvRqst(rqst)), service_port).unwrap();
    let (payload, _) = client.recv().unwrap();
    match slp::decode(&payload).unwrap() {
        slp::SlpMessage::SrvRply(rply) => {
            assert_eq!(rply.xid, 0x77);
            assert_eq!(rply.url, "service:printer://127.0.0.1:631");
        }
        other => panic!("unexpected {other:?}"),
    }
    handle.join().unwrap();
}

#[test]
fn mdl_codec_interoperates_with_native_peer_over_real_udp() {
    // One side speaks through the runtime-generated MDL codec, the other
    // through the hand-written native codec — over real sockets.
    let Some((model_side, native_side)) = sockets() else { return };
    let native_port = native_side.port().unwrap();

    let handle = std::thread::spawn(move || {
        let (payload, from) = native_side.recv().unwrap();
        let mdns::DnsMessage::Question(q) = mdns::decode(&payload).unwrap() else {
            panic!("expected question");
        };
        assert_eq!(q.qname, "_printer._tcp.local");
        let response = mdns::DnsResponse::new(q.id, q.qname, "service:printer://real");
        native_side
            .send_to(&mdns::encode(&mdns::DnsMessage::Response(response)).unwrap(), from)
            .unwrap();
    });

    let codec = MdlCodec::generate(load_mdl(mdns::mdl_xml()).unwrap()).unwrap();
    let mut question = codec.schema("DNS_Question").unwrap().instantiate();
    question.set(&"ID".into(), starlink::message::Value::Unsigned(5)).unwrap();
    question.set(&"QDCount".into(), starlink::message::Value::Unsigned(1)).unwrap();
    question
        .set(&"QName".into(), starlink::message::Value::Str("_printer._tcp.local".into()))
        .unwrap();
    question.set(&"QType".into(), starlink::message::Value::Unsigned(12)).unwrap();
    question.set(&"QClass".into(), starlink::message::Value::Unsigned(1)).unwrap();
    model_side.send_to(&codec.compose(&question).unwrap(), native_port).unwrap();

    let (payload, _) = model_side.recv().unwrap();
    let parsed = codec.parse(&payload).unwrap();
    assert_eq!(parsed.name(), "DNS_Response");
    assert_eq!(parsed.get(&"RData".into()).unwrap().as_str().unwrap(), "service:printer://real");
    handle.join().unwrap();
}

#[test]
fn bridge_engine_serves_live_multi_client_traffic_over_real_udp() {
    // A deployed SLP→Bonjour bridge hosted behind real loopback sockets:
    // several real SLP clients fire requests concurrently, a real
    // Bonjour-style responder answers the bridge's translated questions,
    // and every client must get its own reply back on its own socket.
    const CLIENTS: usize = 6;
    const SERVICE_URL: &str = "service:printer://127.0.0.1:631";

    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let (engine, stats) = framework.deploy(bridges::slp_to_bonjour()).unwrap();
    let Ok(mut bridge) =
        UdpBridge::deploy(91, "10.0.0.2", engine, &[slp::SLP_PORT, mdns::MDNS_PORT])
    else {
        eprintln!("skipping: loopback UDP unavailable in this environment");
        return;
    };
    let slp_port = bridge.real_port(slp::SLP_PORT).unwrap();

    // The responder lives outside the gateway's simulation; it joins the
    // mDNS group so the bridge's multicast questions reach its socket.
    let responder = LoopbackUdp::bind_with_timeout(Duration::from_secs(5)).unwrap();
    bridge.join_group_external(
        SimAddr::new(mdns::MDNS_GROUP, mdns::MDNS_PORT),
        responder.port().unwrap(),
    );
    let responder_handle = std::thread::spawn(move || {
        for _ in 0..CLIENTS {
            let Ok((payload, from)) = responder.recv() else { return };
            let Ok(mdns::DnsMessage::Question(q)) = mdns::decode(&payload) else {
                continue;
            };
            let response = mdns::DnsResponse::new(q.id, q.qname, SERVICE_URL);
            let wire = mdns::encode(&mdns::DnsMessage::Response(response)).unwrap();
            responder.send_to(&wire, from).unwrap();
        }
    });

    let mut client_handles = Vec::new();
    for i in 0..CLIENTS {
        let client = LoopbackUdp::bind_with_timeout(Duration::from_secs(5)).unwrap();
        let xid = 0x1000 + i as u16;
        client_handles.push(std::thread::spawn(move || {
            let rqst = slp::SrvRqst::new(xid, "service:printer");
            client.send_to(&slp::encode(&slp::SlpMessage::SrvRqst(rqst)), slp_port).unwrap();
            let (payload, _) = client.recv().expect("reply within the socket timeout");
            match slp::decode(&payload).unwrap() {
                slp::SlpMessage::SrvRply(rply) => (xid, rply.xid, rply.url),
                other => panic!("unexpected {other:?}"),
            }
        }));
    }

    // Pump the gateway while clients and responder run on their threads.
    let stats_probe = stats.clone();
    bridge.pump_until(Duration::from_secs(10), || stats_probe.session_count() >= CLIENTS).unwrap();

    for handle in client_handles {
        let (sent_xid, got_xid, url) = handle.join().unwrap();
        assert_eq!(got_xid, sent_xid, "reply XID belongs to this client's own session");
        assert_eq!(url, SERVICE_URL);
    }
    responder_handle.join().unwrap();
    assert_eq!(stats.session_count(), CLIENTS);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
    let c = stats.concurrency();
    assert_eq!(c.completed, CLIENTS as u64);
    assert_eq!(c.active, 0);
    stats.assert_consistent("live multi-client bridge");
}

/// A two-shard, two-thread [`ShardedGateway`] rig over a fully
/// in-sim target service: SLP clients on real sockets, a Bonjour
/// responder inside each shard's simulation.
fn sharded_gateway_rig(threads: usize) -> Option<(ShardedGateway, starlink::core::ShardedStats)> {
    const SERVICE_URL: &str = "service:printer://10.0.0.3:631";
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let (engines, stats) =
        framework.deploy_sharded(bridges::slp_to_bonjour(), EngineConfig::default(), 2).unwrap();
    let bridge = ShardedBridge::launch(21, "10.0.0.2", engines, |_, sim| {
        sim.set_latency(LatencyModel::Fixed(SimDuration::ZERO));
        sim.add_actor(
            "10.0.0.3",
            mdns::BonjourService::new("_printer._tcp.local", SERVICE_URL, Calibration::instant()),
        );
    });
    let config =
        GatewayConfig { udp_ports: vec![slp::SLP_PORT], threads, ..GatewayConfig::default() };
    match ShardedGateway::launch(bridge, config) {
        Ok(gateway) => Some((gateway, stats)),
        Err(err) => {
            eprintln!("skipping: gateway sockets unavailable in this environment ({err})");
            None
        }
    }
}

/// One SLP request/reply exchange through shard `shard`'s ingress
/// socket, returning the reply's `(xid, url)`.
fn slp_exchange(client: &LoopbackUdp, ingress: u16, xid: u16) -> (u16, String) {
    let rqst = slp::SrvRqst::new(xid, "service:printer");
    client.send_to(&slp::encode(&slp::SlpMessage::SrvRqst(rqst)), ingress).unwrap();
    let (payload, _) = client.recv().expect("reply within the socket timeout");
    match slp::decode(&payload).unwrap() {
        slp::SlpMessage::SrvRply(rply) => (rply.xid, rply.url),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn sharded_gateway_isolates_replies_across_threads_and_shards() {
    // The multi-threaded gateway front: every client must get its own
    // reply back on its own socket (reply isolation) and sessions stay
    // pinned to the shard whose ingress socket the client used
    // (affinity) — across two gateway threads running concurrently.
    const CLIENTS: usize = 8;
    let Some((gateway, stats)) = sharded_gateway_rig(2) else { return };
    eprintln!("gateway front: {}", gateway.mode());

    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let shard = i % gateway.shard_count();
        let ingress = gateway.ingress_real_port(shard, slp::SLP_PORT).unwrap();
        let xid = 0x2000 + i as u16;
        handles.push(std::thread::spawn(move || {
            let client = LoopbackUdp::bind_with_timeout(Duration::from_secs(10)).unwrap();
            let (got_xid, url) = slp_exchange(&client, ingress, xid);
            (xid, got_xid, url)
        }));
    }
    for handle in handles {
        let (sent_xid, got_xid, url) = handle.join().unwrap();
        assert_eq!(got_xid, sent_xid, "reply XID belongs to this client's own session");
        assert_eq!(url, "service:printer://10.0.0.3:631");
    }

    gateway.flush();
    assert!(gateway.errors().is_empty(), "gateway errors: {:?}", gateway.errors());
    assert!(stats.errors().is_empty(), "engine errors: {:?}", stats.errors());
    let c = stats.concurrency();
    assert_eq!(c.completed, CLIENTS as u64);
    assert_eq!(c.active, 0, "every live-socket session concluded");
    let g = gateway.stats();
    assert!(g.datagrams_in >= CLIENTS as u64 && g.datagrams_out >= CLIENTS as u64);
}

#[test]
fn sharded_gateway_rebuild_keeps_ingress_ports_and_traffic_flowing() {
    // Simulated fd churn: a rebuild tears down and re-registers every
    // gateway socket registration, but the sockets themselves — and so
    // the sim-port ↔ real-port mapping clients hold — must survive.
    let Some((gateway, stats)) = sharded_gateway_rig(1) else { return };
    let before: Vec<Option<u16>> =
        (0..gateway.shard_count()).map(|s| gateway.ingress_real_port(s, slp::SLP_PORT)).collect();
    assert!(before.iter().all(Option::is_some));

    let client = LoopbackUdp::bind_with_timeout(Duration::from_secs(10)).unwrap();
    let (xid, _) = slp_exchange(&client, before[0].unwrap(), 0x31);
    assert_eq!(xid, 0x31);

    gateway.request_rebuild();

    let after: Vec<Option<u16>> =
        (0..gateway.shard_count()).map(|s| gateway.ingress_real_port(s, slp::SLP_PORT)).collect();
    assert_eq!(before, after, "real ports stable across re-registration");
    // Traffic keeps flowing through the same advertised ports, on
    // every shard, after the registration set was rebuilt.
    for (s, port) in after.iter().enumerate() {
        let (xid, url) = slp_exchange(&client, port.unwrap(), 0x40 + s as u16);
        assert_eq!(xid, 0x40 + s as u16);
        assert_eq!(url, "service:printer://10.0.0.3:631");
    }
    gateway.flush();
    assert!(gateway.errors().is_empty(), "gateway errors: {:?}", gateway.errors());
    assert!(stats.errors().is_empty(), "engine errors: {:?}", stats.errors());
}

/// Drives one idle→burst cycle repeatedly through a [`UdpBridge`] and
/// returns the median first-reply latency plus the loop's pump
/// counters. `None` means the environment can't host it (no loopback,
/// or — for `readiness` — no epoll).
fn idle_burst_median(readiness: bool) -> Option<(Duration, starlink::net::PumpStats)> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    struct Echo;
    impl Actor for Echo {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(9).unwrap();
        }
        fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
            ctx.udp_send(9, datagram.from, datagram.payload);
        }
    }

    let Ok(mut bridge) = UdpBridge::deploy(33, "10.0.0.2", Echo, &[9]) else {
        eprintln!("skipping: loopback UDP unavailable in this environment");
        return None;
    };
    if readiness && !bridge.enable_readiness().unwrap_or(false) {
        eprintln!("skipping readiness half: epoll unavailable in this environment");
        return None;
    }
    let port = bridge.real_port(9).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                bridge
                    .pump_until(Duration::from_millis(20), || stop.load(Ordering::Relaxed))
                    .unwrap();
            }
            bridge.pump_stats()
        })
    };

    let client = LoopbackUdp::bind_with_timeout(Duration::from_secs(5)).unwrap();
    let mut samples = Vec::new();
    for i in 0..15u32 {
        // Long enough for the portable loop to back off to its 1 ms
        // sleep floor before the burst lands.
        std::thread::sleep(Duration::from_millis(10));
        let sent = Instant::now();
        let ping = i.to_be_bytes();
        client.send_to(&ping, port).unwrap();
        let (payload, _) = client.recv().expect("echo within the socket timeout");
        samples.push(sent.elapsed());
        assert_eq!(payload, ping);
    }
    stop.store(true, Ordering::Relaxed);
    let pump_stats = pump.join().unwrap();
    samples.sort();
    Some((samples[samples.len() / 2], pump_stats))
}

#[test]
fn readiness_wakeup_avoids_the_portable_backoff_floor_after_idle() {
    // The semantic contract behind the latency claim: an idle
    // readiness loop blocks in `epoll_wait` (woken instantly by the
    // first arrival), while the portable fallback idles by backoff
    // sleeping — each sleep costing up to a scheduler quantum of
    // wakeup latency when traffic resumes.
    let Some((portable_median, portable)) = idle_burst_median(false) else { return };
    assert!(portable.backoff_sleeps > 0, "portable loop idles by backoff sleeping: {portable:?}");
    let Some((ready_median, ready)) = idle_burst_median(true) else { return };
    assert_eq!(ready.backoff_sleeps, 0, "readiness loop never backoff-sleeps: {ready:?}");
    assert!(ready.readiness_waits > 0, "idle waits block in epoll_wait: {ready:?}");
    // The comparative bound is deliberately generous (shared CI boxes
    // jitter); the counters above are the precise assertions.
    assert!(
        ready_median <= portable_median + Duration::from_millis(5),
        "idle→burst first reply: readiness {ready_median:?} vs portable {portable_median:?}"
    );
}
