//! End-to-end test of the future-work extension (§VII): the framework
//! *generates* the SLP↔Bonjour merge itself from an ontology — no
//! hand-written merged automaton — and the generated bridge answers a
//! real legacy lookup.

use starlink::core::{synthesize_bridge, Ontology, Starlink};
use starlink::net::SimNet;
use starlink::protocols::{bridges, mdns, slp, Calibration, DiscoveryProbe};

/// The semantic annotations a CONNECT-style ontology would provide for
/// SLP and DNS-SD discovery: which fields carry the service type, the
/// service URL and the transaction id, and how service-type vocabularies
/// convert.
fn discovery_ontology() -> Ontology {
    Ontology::new()
        // Service-type concepts and their vocabulary conversion.
        .concept("SLPSrvRequest", "SRVType", "service-type-slp")
        .concept("DNS_Question", "QName", "service-type-dns")
        .conversion("service-type-slp", "service-type-dns", "slp-to-dns-type")
        // Service URL flows straight through.
        .concept("DNS_Response", "RData", "service-url")
        .concept("SLPSrvReply", "URLEntry", "service-url")
        // Transaction ids correspond across request and reply.
        .concept("SLPSrvRequest", "XID", "txn")
        .concept("DNS_Question", "ID", "txn")
        .concept("SLPSrvReply", "XID", "txn")
        // Language tags correspond.
        .concept("SLPSrvRequest", "LangTag", "lang")
        .concept("SLPSrvReply", "LangTag", "lang")
        // DNS protocol constants.
        .constant("DNS_Question", "QDCount", 1u64)
        .constant("DNS_Question", "QType", 12u64)
        .constant("DNS_Question", "QClass", 1u64)
        // SLP protocol constants.
        .constant("SLPSrvReply", "Version", 2u64)
        .constant("SLPSrvReply", "LifeTime", 60u64)
}

#[test]
fn framework_generates_the_slp_bonjour_merge_itself() {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();

    let merged = synthesize_bridge(
        &framework,
        "auto-slp-bonjour",
        slp::service_automaton(),
        mdns::client_automaton(),
        &discovery_ontology(),
    )
    .expect("synthesis succeeds");

    let report = merged.check_merge();
    assert!(report.is_mergeable(), "{report}");
    assert!(report.strongly_merged);

    // The generated logic contains the Fig. 10 translations.
    let rendered = starlink::automata::bridge_to_xml(&merged);
    assert!(rendered.contains("slp-to-dns-type"));
    assert!(rendered.contains("QName"));
    assert!(rendered.contains("RData"));
}

#[test]
fn generated_bridge_answers_a_real_legacy_lookup() {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let merged = synthesize_bridge(
        &framework,
        "auto-slp-bonjour",
        slp::service_automaton(),
        mdns::client_automaton(),
        &discovery_ontology(),
    )
    .unwrap();
    let (engine, stats) = framework.deploy(merged).unwrap();

    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(88);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::fast(),
        ),
    );
    sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
    sim.run_until_idle();

    let result = probe.first().expect("generated bridge answered the lookup");
    assert_eq!(result.url, "service:printer://10.0.0.3:631");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "{:?}", stats.errors());
}

#[test]
fn generated_bridge_matches_handwritten_bridge_behaviour() {
    // The synthesized bridge and the hand-written case-2 bridge must
    // deliver identical results for the same seed.
    let run = |auto: bool, seed: u64| {
        let mut framework = Starlink::new();
        bridges::load_all_mdls(&mut framework).unwrap();
        let merged = if auto {
            synthesize_bridge(
                &framework,
                "auto",
                slp::service_automaton(),
                mdns::client_automaton(),
                &discovery_ontology(),
            )
            .unwrap()
        } else {
            bridges::slp_to_bonjour()
        };
        let (engine, _) = framework.deploy(merged).unwrap();
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(seed);
        sim.add_actor("10.0.0.2", engine);
        sim.add_actor(
            "10.0.0.3",
            mdns::BonjourService::new(
                "_printer._tcp.local",
                "service:printer://10.0.0.3:631",
                Calibration::fast(),
            ),
        );
        sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
        sim.run_until_idle();
        probe.first().map(|d| d.url)
    };
    for seed in [1, 2, 3] {
        assert_eq!(run(true, seed), run(false, seed), "seed {seed}");
    }
}
