//! Property test: for *any* interleaving order of concurrent clients —
//! random client count, random per-client start offsets, random seed,
//! any bridge case — every client completes exactly one session and
//! every reply reaches its own originator.

use proptest::prelude::*;
use starlink::protocols::{bridges::BridgeCase, Calibration};
use starlink_bench::{
    expected_discovery_url, run_concurrent_clients_with, run_sharded_case, ShardedWorkload,
};

proptest! {
    #[test]
    fn any_interleaving_order_keeps_sessions_isolated(
        seed in 0u64..10_000,
        case_index in 0usize..6,
        offsets in prop::collection::vec(0u64..8_000, 2..10),
    ) {
        let case = BridgeCase::all()[case_index];
        let (probes, stats) =
            run_concurrent_clients_with(case, seed, Calibration::fast(), &offsets);

        for (i, probe) in probes.iter().enumerate() {
            let results = probe.results();
            prop_assert_eq!(
                results.len(),
                1,
                "case {} client {} (seed {}, offsets {:?}): errors {:?}",
                case.number(),
                i,
                seed,
                &offsets,
                stats.errors()
            );
            prop_assert_eq!(results[0].url.as_str(), expected_discovery_url(case));
        }
        prop_assert_eq!(stats.session_count(), offsets.len());
        prop_assert_eq!(stats.concurrency().active, 0);
        prop_assert!(stats.errors().is_empty(), "errors: {:?}", stats.errors());
    }

    /// The same invariant through the multi-threaded sharded runtime:
    /// for any case, shard count, client count and wave depth, every
    /// wire-level client gets exactly its own reply back.
    #[test]
    fn any_sharded_layout_keeps_sessions_isolated(
        seed in 0u64..10_000,
        case_index in 0usize..6,
        shards in 1usize..=8,
        clients in 2usize..16,
        wave in 1usize..12,
    ) {
        let case = BridgeCase::all()[case_index];
        let mut workload = ShardedWorkload::new(shards, clients);
        workload.seed = seed;
        workload.wave = wave;
        let run = run_sharded_case(case, workload);
        prop_assert_eq!(
            run.completed(),
            clients,
            "case {} (seed {}, {} shards, wave {}): {} of {} sessions completed; errors: {:?}",
            case.number(),
            seed,
            shards,
            wave,
            run.completed(),
            clients,
            run.stats.errors()
        );
        // Full isolation: right URL, own transaction id, clean engines.
        run.assert_isolated();
    }
}
