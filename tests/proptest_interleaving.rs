//! Property test: for *any* interleaving order of concurrent clients —
//! random client count, random per-client start offsets, random seed,
//! any bridge case — every client completes exactly one session and
//! every reply reaches its own originator. A second family draws random
//! *impairment profiles* alongside random shard layouts and asserts the
//! chaos liveness contract: whatever the network does, the engine never
//! wedges and its stats stay balanced.

use proptest::prelude::*;
use starlink::core::StoreForward;
use starlink::net::{Impairments, SimDuration};
use starlink::protocols::{bridges::BridgeCase, Calibration};
use starlink_bench::chaos::{
    check_liveness_contract, run_chaos_cell, tail, ChaosCell, ChaosProfile, CHAOS_IDLE_TIMEOUT,
};
use starlink_bench::{
    expected_discovery_url, run_concurrent_clients_chaos, run_concurrent_clients_with,
    run_sharded_case, run_sharded_scripted, ScriptedCommand, ShardedWorkload,
};

/// Random impairment knobs: anywhere from pristine to a badly misbehaving
/// link (each probability up to 25%, partitions up to 2% per traversal).
fn arb_impairments() -> impl Strategy<Value = Impairments> {
    (
        (0u16..=250, 0u16..=250, 0u16..=250, 0u64..=3_000),
        (0u64..=800, 0u16..=250, 0u16..=20, 0u64..=8_000),
    )
        .prop_map(
            |((drop, dup, reorder, window_us), (jitter_us, corrupt, partition, heal_us))| {
                Impairments {
                    drop_permille: drop,
                    duplicate_permille: dup,
                    reorder_permille: reorder,
                    reorder_window: SimDuration::from_micros(window_us),
                    jitter: SimDuration::from_micros(jitter_us),
                    corrupt_permille: corrupt,
                    partition_permille: partition,
                    partition_window: SimDuration::from_micros(heal_us),
                }
            },
        )
}

/// The last `n` lines of a trace, for failure dumps.
fn trace_tail(trace: &str, n: usize) -> String {
    tail(&trace.lines().collect::<Vec<_>>(), n)
}

proptest! {
    #[test]
    fn any_interleaving_order_keeps_sessions_isolated(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        offsets in prop::collection::vec(0u64..8_000, 2..10),
    ) {
        let case = BridgeCase::all()[case_index];
        let (probes, stats) =
            run_concurrent_clients_with(case, seed, Calibration::fast(), &offsets);

        for (i, probe) in probes.iter().enumerate() {
            let results = probe.results();
            prop_assert_eq!(
                results.len(),
                1,
                "case {} client {} (seed {}, offsets {:?}): errors {:?}",
                case.number(),
                i,
                seed,
                &offsets,
                stats.errors()
            );
            prop_assert_eq!(results[0].url.as_str(), expected_discovery_url(case));
        }
        prop_assert_eq!(stats.session_count(), offsets.len());
        prop_assert_eq!(stats.concurrency().active, 0);
        prop_assert!(stats.errors().is_empty(), "errors: {:?}", stats.errors());
    }

    /// The same invariant through the multi-threaded sharded runtime:
    /// for any case, shard count, client count and wave depth, every
    /// wire-level client gets exactly its own reply back.
    #[test]
    fn any_sharded_layout_keeps_sessions_isolated(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        shards in 1usize..=8,
        clients in 2usize..16,
        wave in 1usize..12,
    ) {
        let case = BridgeCase::all()[case_index];
        let mut workload = ShardedWorkload::new(shards, clients);
        workload.seed = seed;
        workload.wave = wave;
        let run = run_sharded_case(case, workload);
        prop_assert_eq!(
            run.completed(),
            clients,
            "case {} (seed {}, {} shards, wave {}): {} of {} sessions completed; errors: {:?}",
            case.number(),
            seed,
            shards,
            wave,
            run.completed(),
            clients,
            run.stats.errors()
        );
        // Full isolation: right URL, own transaction id, clean engines.
        run.assert_isolated();
    }

    /// Random impairment profiles over the single-engine runtime: for
    /// any knobs, any case, any interleaving, the bridge never wedges —
    /// every opened session ends counted, and the run drains to idle. On
    /// failure the dump carries the full (seed, profile) plus the trace
    /// tail, so one `run_concurrent_clients_chaos` call replays it.
    #[test]
    fn any_impairment_profile_keeps_the_engine_live(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        offsets in prop::collection::vec(0u64..8_000, 2..8),
        impairments in arb_impairments(),
    ) {
        let case = BridgeCase::all()[case_index];
        let (probes, stats, trace) = run_concurrent_clients_chaos(
            case, seed, Calibration::fast(), &offsets, impairments,
        );
        let c = stats.concurrency();
        prop_assert!(
            c.is_balanced() && c.active == 0,
            "case {} seed {} profile {:?}: counters {:?} (wedged or unbalanced)\n\
             errors: {:?}\ntrace tail:\n{}",
            case.number(), seed, impairments, c, stats.errors(), trace_tail(&trace, 30)
        );
        prop_assert_eq!(
            stats.session_count() as u64, c.completed,
            "case {} seed {} profile {:?}: session records disagree with counters",
            case.number(), seed, impairments
        );
        // No client can complete more than its one discovery.
        for (i, probe) in probes.iter().enumerate() {
            prop_assert!(
                probe.results().len() <= 1,
                "case {} client {i} completed {} times under {:?} (seed {})",
                case.number(), probe.results().len(), impairments, seed
            );
        }
    }

    /// The same family through the sharded runtime: random impairment
    /// profiles alongside random shard layouts, asserting the full chaos
    /// liveness contract in every drawn cell.
    #[test]
    fn any_impairment_profile_and_shard_layout_keep_the_fleet_live(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        shards in 1usize..=4,
        clients in 2usize..12,
        impairments in arb_impairments(),
    ) {
        let case = BridgeCase::all()[case_index];
        let mut workload = ShardedWorkload::new(shards, clients);
        workload.seed = seed;
        workload.wave = 8;
        workload.impairments = impairments;
        workload.idle_timeout = CHAOS_IDLE_TIMEOUT;
        workload.virtual_horizon = Some(starlink_bench::chaos::chaos_horizon(clients, 8));
        workload.log_boundary = true;
        let run = run_sharded_case(case, workload);
        let profile = ChaosProfile {
            name: "proptest",
            impairments,
            expect_client_completion: false,
            expect_clean_engines: false,
            ..ChaosProfile::lossless()
        };
        let violations = check_liveness_contract(&run, &profile);
        prop_assert!(
            violations.is_empty(),
            "case {} seed {} shards {} clients {} profile {:?}:\n  - {}\nboundary log tail:\n{}",
            case.number(), seed, shards, clients, impairments,
            violations.join("\n  - "),
            tail(&run.boundary_log, 30)
        );
    }

    /// Random control-plane command streams — deploy, drain-then-swap
    /// and undeploy at random driver iterations — interleaved with
    /// 0..50 wire clients across random shard layouts: whatever the
    /// operator does to the fleet mid-run, every client still completes
    /// exactly one isolated session, no datagram goes unrouted (the
    /// executor never drains the last serving version), every version's
    /// ledger stays balanced and quiescent, and no version is left
    /// half-drained. On failure the dump prints the effective command
    /// log plus the seed, so the exact stream replays.
    #[test]
    fn any_command_stream_keeps_the_fleet_serving(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        shards in 1usize..=4,
        clients in 0usize..50,
        wave in 1usize..12,
        commands in prop::collection::vec(
            (
                1u64..=40,
                prop_oneof![
                    Just(ScriptedCommand::Deploy),
                    Just(ScriptedCommand::Swap),
                    Just(ScriptedCommand::Undeploy),
                ],
            ),
            0..6,
        ),
    ) {
        use starlink::core::DeployState;

        let case = BridgeCase::all()[case_index];
        let mut workload = ShardedWorkload::new(shards, clients);
        workload.seed = seed;
        workload.wave = wave;
        let scripted = run_sharded_scripted(case, workload, &commands);
        let run = &scripted.run;
        let dump = || {
            format!(
                "case {} seed {seed} shards {shards} clients {clients} wave {wave}\n\
                 command log:\n  {}\nerrors: {:?}",
                case.number(),
                scripted.command_log.join("\n  "),
                run.stats.errors(),
            )
        };
        prop_assert_eq!(
            run.completed(), clients,
            "{} of {} clients completed\n{}", run.completed(), clients, dump()
        );
        for (i, outcome) in run.outcomes.iter().enumerate() {
            prop_assert_eq!(
                outcome.url.as_deref(), Some(expected_discovery_url(case)),
                "client {i} got a wrong/foreign reply\n{}", dump()
            );
            prop_assert!(outcome.id_ok, "client {i} got another client's id\n{}", dump());
        }
        prop_assert_eq!(run.unrouted, 0, "fresh traffic went unrouted\n{}", dump());
        for handle in &scripted.deployments {
            let c = handle.stats().concurrency();
            prop_assert!(
                c.is_balanced() && c.active == 0,
                "v{} wedged or unbalanced: {:?}\n{}", handle.version(), c, dump()
            );
            prop_assert!(
                handle.stats().errors().is_empty(),
                "v{} logged engine errors\n{}", handle.version(), dump()
            );
            prop_assert!(
                handle.state() != DeployState::Draining,
                "v{} left half-drained (state {})\n{}", handle.version(), handle.state(), dump()
            );
        }
    }

    /// Random pass schedules, per-link bandwidths and store-and-forward
    /// bounds — the PR's new knob space — against the liveness contract:
    /// whatever connectivity windows the schedule cuts, however small
    /// the shared capacity or the parking queue, the fleet never wedges,
    /// the store-and-forward counters settle (every parked leg replayed
    /// or abandoned), and nothing is cross-delivered. On failure the
    /// dump carries the full drawn profile Debug plus the seed, so one
    /// `run_chaos_cell` call replays the exact cell.
    #[test]
    fn any_pass_schedule_and_bandwidth_keep_the_fleet_live(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        shards in 1usize..=3,
        clients in 2usize..8,
        window_ms in prop_oneof![Just(0u64), 4u64..=25],
        slots in 2u32..=3,
        bandwidth in prop_oneof![Just(0u64), 500_000u64..4_000_000],
        queue_bound in 0usize..12,
        retry_ms in 1u64..=4,
    ) {
        let case = BridgeCase::all()[case_index];
        let profile = ChaosProfile {
            name: "proptest-knobs",
            link_bandwidth: bandwidth,
            pass_window: SimDuration::from_millis(window_ms),
            pass_slots: slots,
            store_forward: Some(StoreForward {
                queue_bound,
                retry_interval: SimDuration::from_millis(retry_ms),
                max_retries: 24,
                saturation_bytes: if bandwidth > 0 { 4_096 } else { 0 },
            }),
            // Pass-schedule cells need the clients' own retry loop for
            // requests launched into a closed window; harmless without
            // a schedule (duplicates are recorded-and-dropped).
            client_retry_ms: 2 * retry_ms,
            expect_client_completion: false,
            expect_clean_engines: false,
            ..ChaosProfile::lossless()
        };
        let cell = ChaosCell { case, shards, clients, seed };
        let run = run_chaos_cell(cell, &profile);
        let violations = check_liveness_contract(&run, &profile);
        prop_assert!(
            violations.is_empty(),
            "case {} seed {} shards {} clients {} profile {:?}:\n  - {}\nboundary log tail:\n{}",
            case.number(), seed, shards, clients, profile,
            violations.join("\n  - "),
            tail(&run.boundary_log, 30)
        );
    }
}
