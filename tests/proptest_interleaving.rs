//! Property test: for *any* interleaving order of concurrent clients —
//! random client count, random per-client start offsets, random seed,
//! any bridge case — every client completes exactly one session and
//! every reply reaches its own originator. A second family draws random
//! *impairment profiles* alongside random shard layouts and asserts the
//! chaos liveness contract: whatever the network does, the engine never
//! wedges and its stats stay balanced.

use proptest::prelude::*;
use starlink::net::{Impairments, SimDuration};
use starlink::protocols::{bridges::BridgeCase, Calibration};
use starlink_bench::chaos::{check_liveness_contract, tail, ChaosProfile, CHAOS_IDLE_TIMEOUT};
use starlink_bench::{
    expected_discovery_url, run_concurrent_clients_chaos, run_concurrent_clients_with,
    run_sharded_case, ShardedWorkload,
};

/// Random impairment knobs: anywhere from pristine to a badly misbehaving
/// link (each probability up to 25%, partitions up to 2% per traversal).
fn arb_impairments() -> impl Strategy<Value = Impairments> {
    (
        (0u16..=250, 0u16..=250, 0u16..=250, 0u64..=3_000),
        (0u64..=800, 0u16..=250, 0u16..=20, 0u64..=8_000),
    )
        .prop_map(
            |((drop, dup, reorder, window_us), (jitter_us, corrupt, partition, heal_us))| {
                Impairments {
                    drop_permille: drop,
                    duplicate_permille: dup,
                    reorder_permille: reorder,
                    reorder_window: SimDuration::from_micros(window_us),
                    jitter: SimDuration::from_micros(jitter_us),
                    corrupt_permille: corrupt,
                    partition_permille: partition,
                    partition_window: SimDuration::from_micros(heal_us),
                }
            },
        )
}

/// The last `n` lines of a trace, for failure dumps.
fn trace_tail(trace: &str, n: usize) -> String {
    tail(&trace.lines().collect::<Vec<_>>(), n)
}

proptest! {
    #[test]
    fn any_interleaving_order_keeps_sessions_isolated(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        offsets in prop::collection::vec(0u64..8_000, 2..10),
    ) {
        let case = BridgeCase::all()[case_index];
        let (probes, stats) =
            run_concurrent_clients_with(case, seed, Calibration::fast(), &offsets);

        for (i, probe) in probes.iter().enumerate() {
            let results = probe.results();
            prop_assert_eq!(
                results.len(),
                1,
                "case {} client {} (seed {}, offsets {:?}): errors {:?}",
                case.number(),
                i,
                seed,
                &offsets,
                stats.errors()
            );
            prop_assert_eq!(results[0].url.as_str(), expected_discovery_url(case));
        }
        prop_assert_eq!(stats.session_count(), offsets.len());
        prop_assert_eq!(stats.concurrency().active, 0);
        prop_assert!(stats.errors().is_empty(), "errors: {:?}", stats.errors());
    }

    /// The same invariant through the multi-threaded sharded runtime:
    /// for any case, shard count, client count and wave depth, every
    /// wire-level client gets exactly its own reply back.
    #[test]
    fn any_sharded_layout_keeps_sessions_isolated(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        shards in 1usize..=8,
        clients in 2usize..16,
        wave in 1usize..12,
    ) {
        let case = BridgeCase::all()[case_index];
        let mut workload = ShardedWorkload::new(shards, clients);
        workload.seed = seed;
        workload.wave = wave;
        let run = run_sharded_case(case, workload);
        prop_assert_eq!(
            run.completed(),
            clients,
            "case {} (seed {}, {} shards, wave {}): {} of {} sessions completed; errors: {:?}",
            case.number(),
            seed,
            shards,
            wave,
            run.completed(),
            clients,
            run.stats.errors()
        );
        // Full isolation: right URL, own transaction id, clean engines.
        run.assert_isolated();
    }

    /// Random impairment profiles over the single-engine runtime: for
    /// any knobs, any case, any interleaving, the bridge never wedges —
    /// every opened session ends counted, and the run drains to idle. On
    /// failure the dump carries the full (seed, profile) plus the trace
    /// tail, so one `run_concurrent_clients_chaos` call replays it.
    #[test]
    fn any_impairment_profile_keeps_the_engine_live(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        offsets in prop::collection::vec(0u64..8_000, 2..8),
        impairments in arb_impairments(),
    ) {
        let case = BridgeCase::all()[case_index];
        let (probes, stats, trace) = run_concurrent_clients_chaos(
            case, seed, Calibration::fast(), &offsets, impairments,
        );
        let c = stats.concurrency();
        prop_assert!(
            c.is_balanced() && c.active == 0,
            "case {} seed {} profile {:?}: counters {:?} (wedged or unbalanced)\n\
             errors: {:?}\ntrace tail:\n{}",
            case.number(), seed, impairments, c, stats.errors(), trace_tail(&trace, 30)
        );
        prop_assert_eq!(
            stats.session_count() as u64, c.completed,
            "case {} seed {} profile {:?}: session records disagree with counters",
            case.number(), seed, impairments
        );
        // No client can complete more than its one discovery.
        for (i, probe) in probes.iter().enumerate() {
            prop_assert!(
                probe.results().len() <= 1,
                "case {} client {i} completed {} times under {:?} (seed {})",
                case.number(), probe.results().len(), impairments, seed
            );
        }
    }

    /// The same family through the sharded runtime: random impairment
    /// profiles alongside random shard layouts, asserting the full chaos
    /// liveness contract in every drawn cell.
    #[test]
    fn any_impairment_profile_and_shard_layout_keep_the_fleet_live(
        seed in 0u64..10_000,
        case_index in 0usize..12,
        shards in 1usize..=4,
        clients in 2usize..12,
        impairments in arb_impairments(),
    ) {
        let case = BridgeCase::all()[case_index];
        let mut workload = ShardedWorkload::new(shards, clients);
        workload.seed = seed;
        workload.wave = 8;
        workload.impairments = impairments;
        workload.idle_timeout = CHAOS_IDLE_TIMEOUT;
        workload.virtual_horizon = Some(starlink_bench::chaos::chaos_horizon(clients, 8));
        workload.log_boundary = true;
        let run = run_sharded_case(case, workload);
        let profile = ChaosProfile {
            name: "proptest",
            impairments,
            expect_client_completion: false,
            expect_clean_engines: false,
        };
        let violations = check_liveness_contract(&run, &profile);
        prop_assert!(
            violations.is_empty(),
            "case {} seed {} shards {} clients {} profile {:?}:\n  - {}\nboundary log tail:\n{}",
            case.number(), seed, shards, clients, impairments,
            violations.join("\n  - "),
            tail(&run.boundary_log, 30)
        );
    }
}
