//! The paper's central claim (§II-E requirement 1): interoperability
//! logic is "fully generateable at runtime". These tests drive the
//! complete model path — XML documents in, working bridge out — with no
//! compiled protocol-specific code in the loop, and check the model
//! export used to regenerate the paper's figure listings.

use starlink::automata::{automaton_to_dot, bridge_to_xml, load_bridge, merged_to_dot};
use starlink::core::Starlink;
use starlink::mdl::{load_mdl, mdl_to_xml};
use starlink::net::SimNet;
use starlink::protocols::{bridges, mdns, slp, Calibration, DiscoveryProbe};

#[test]
fn full_case2_from_xml_documents_only() {
    // MDLs from their XML documents; the merged automaton from *its* XML
    // document (exported form of Fig. 10 + Fig. 5-style logic); then a
    // real discovery across the deployed bridge.
    let bridge_xml = bridge_to_xml(&bridges::slp_to_bonjour());

    let mut framework = Starlink::new();
    framework.load_mdl_xml(slp::mdl_xml()).unwrap();
    framework.load_mdl_xml(mdns::mdl_xml()).unwrap();
    let merged = framework.load_bridge_xml(&bridge_xml).unwrap();
    let (engine, stats) = framework.deploy(merged).unwrap();

    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(55);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::fast(),
        ),
    );
    sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
    sim.run_until_idle();

    assert_eq!(probe.first().unwrap().url, "service:printer://10.0.0.3:631");
    assert_eq!(stats.session_count(), 1);
}

#[test]
fn mdl_documents_roundtrip_through_model_export() {
    // Figs. 7/11 regeneration: loading a spec and re-exporting it yields
    // a document that loads to the same spec.
    for xml in [
        slp::mdl_xml(),
        mdns::mdl_xml(),
        starlink::protocols::ssdp::mdl_xml(),
        starlink::protocols::http::mdl_xml(),
        starlink::protocols::wsd::mdl_xml(),
    ] {
        let spec = load_mdl(xml).unwrap();
        let exported = mdl_to_xml(&spec);
        assert_eq!(load_mdl(&exported).unwrap(), spec);
    }
}

#[test]
fn bridge_documents_reload_for_all_cases() {
    for &case in bridges::BridgeCase::all() {
        let merged = case.build("10.0.0.2");
        let xml = bridge_to_xml(&merged);
        let reloaded = load_bridge(&xml).unwrap();
        assert!(reloaded.check_merge().is_mergeable(), "case {}", case.number());
        // Translation logic survives: same assignment count per δ.
        for (a, b) in merged.deltas().iter().zip(reloaded.deltas()) {
            assert_eq!(a.assignments.len(), b.assignments.len());
            assert_eq!(a.actions.len(), b.actions.len());
        }
    }
}

#[test]
fn figure_dot_exports_are_nonempty_and_deterministic() {
    let slp_dot = automaton_to_dot(&slp::service_automaton());
    assert!(slp_dot.contains("SLPSrvRequest"));
    assert_eq!(slp_dot, automaton_to_dot(&slp::service_automaton()));

    let merged_dot = merged_to_dot(&bridges::slp_to_upnp());
    assert!(merged_dot.contains("cluster_0"));
    assert!(merged_dot.contains("set_host"));
}

#[test]
fn a_protocol_never_seen_at_compile_time_can_be_bridged() {
    // Invent a new protocol *in this test* and bridge it to mDNS without
    // any new compiled code: requirement 4 of §II-E ("easily extensible
    // to include future protocols").
    const NEWPROTO_MDL: &str = r#"
      <MDL protocol="Find" kind="binary">
        <Types>
          <Name>String</Name>
          <NameLen>Integer[f-length(Name)]</NameLen>
        </Types>
        <Header type="Find"><Kind>8</Kind></Header>
        <Message type="FindReq">
          <Rule>Kind=1</Rule>
          <NameLen>16</NameLen>
          <Name>NameLen</Name>
        </Message>
        <Message type="FindResp">
          <Rule>Kind=2</Rule>
          <NameLen>16</NameLen>
          <Name>NameLen</Name>
        </Message>
      </MDL>"#;

    let bridge_xml = format!(
        r#"<Bridge name="find-to-bonjour">
          <ColoredAutomaton protocol="Find">
            <Color>
              <transport_protocol>udp</transport_protocol>
              <port>7000</port>
              <mode>async</mode>
              <multicast>yes</multicast>
              <group>239.7.0.1</group>
            </Color>
            <State name="f0" initial="true"/>
            <State name="f1" accepting="true"/>
            <Transition from="f0" action="receive" message="FindReq" to="f1"/>
            <Transition from="f1" action="send" message="FindResp" to="f0"/>
          </ColoredAutomaton>
          {mdns_automaton}
          <Equivalence target="DNS_Question" sources="FindReq"/>
          <Equivalence target="FindResp" sources="DNS_Response"/>
          <Delta from="Find:f1" to="DNS:s0">
            <TranslationLogic>
              <Assignment>
                <Field><Message>DNS_Question</Message><Xpath>/field/primitiveField[label='QName']/value</Xpath></Field>
                <Field><Message>FindReq</Message><Xpath>/field/primitiveField[label='Name']/value</Xpath></Field>
              </Assignment>
              <Assignment>
                <Field><Message>DNS_Question</Message><Xpath>/field/primitiveField[label='QDCount']/value</Xpath></Field>
                <Literal kind="unsigned">1</Literal>
              </Assignment>
              <Assignment>
                <Field><Message>DNS_Question</Message><Xpath>/field/primitiveField[label='QType']/value</Xpath></Field>
                <Literal kind="unsigned">12</Literal>
              </Assignment>
              <Assignment>
                <Field><Message>DNS_Question</Message><Xpath>/field/primitiveField[label='QClass']/value</Xpath></Field>
                <Literal kind="unsigned">1</Literal>
              </Assignment>
            </TranslationLogic>
          </Delta>
          <Delta from="DNS:s2" to="Find:f1">
            <TranslationLogic>
              <Assignment>
                <Field><Message>FindResp</Message><Xpath>/field/primitiveField[label='Name']/value</Xpath></Field>
                <Field><Message>DNS_Response</Message><Xpath>/field/primitiveField[label='RData']/value</Xpath></Field>
              </Assignment>
            </TranslationLogic>
          </Delta>
        </Bridge>"#,
        mdns_automaton = starlink::automata::automaton_to_xml(&mdns::client_automaton()),
    );

    let mut framework = Starlink::new();
    framework.load_mdl_xml(NEWPROTO_MDL).unwrap();
    framework.load_mdl_xml(mdns::mdl_xml()).unwrap();
    let merged = framework.load_bridge_xml(&bridge_xml).unwrap();
    assert!(merged.check_merge().is_mergeable());
    let (engine, stats) = framework.deploy(merged).unwrap();

    // A synthetic "legacy" Find client speaking the new wire format.
    use starlink::net::{Actor, Context, Datagram, SimAddr};
    use std::sync::{Arc, Mutex};
    struct FindClient {
        got: Arc<Mutex<Option<String>>>,
    }
    impl Actor for FindClient {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(7000).unwrap();
            let name = b"_printer._tcp.local";
            let mut wire = vec![1u8, 0, name.len() as u8];
            wire.extend_from_slice(name);
            ctx.udp_send(7000, SimAddr::new("239.7.0.1", 7000), wire);
        }
        fn on_datagram(&mut self, _ctx: &mut Context<'_>, datagram: Datagram) {
            assert_eq!(datagram.payload[0], 2); // FindResp
            let len = u16::from_be_bytes([datagram.payload[1], datagram.payload[2]]) as usize;
            let name = String::from_utf8_lossy(&datagram.payload[3..3 + len]).into_owned();
            *self.got.lock().unwrap() = Some(name);
        }
    }

    let got = Arc::new(Mutex::new(None));
    let mut sim = SimNet::new(66);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::fast(),
        ),
    );
    sim.add_actor("10.0.0.1", FindClient { got: got.clone() });
    sim.run_until_idle();

    assert_eq!(got.lock().unwrap().as_deref(), Some("service:printer://10.0.0.3:631"));
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "{:?}", stats.errors());
}
