//! The case-study matrix: the paper's §V six cases ("There are six
//! particular cases i.e. SLP to UPnP and Bonjour, UPnP to SLP and
//! Bonjour, and Bonjour to SLP and UPnP. For each case, the legacy
//! lookup application received a response to the lookup request from
//! the heterogeneous protocol.") plus the six WS-Discovery cases the
//! fourth family adds.
//!
//! Each test wires a *legacy* client of protocol A, a *legacy* service of
//! protocol B, and the Starlink bridge for (A, B) into one simulated
//! network — the legacy endpoints are the same actors used natively, so
//! transparency is by construction.

use starlink::core::Starlink;
use starlink::net::{SimNet, SimTime};
use starlink::protocols::{
    bridges::{self, BridgeCase, Family},
    mdns, slp, upnp, wsd, Calibration, DiscoveryProbe,
};

const CLIENT: &str = "10.0.0.1";
const BRIDGE: &str = "10.0.0.2";
const SERVICE: &str = "10.0.0.3";

const SLP_TYPE: &str = "service:printer";
const UPNP_TYPE: &str = "urn:schemas-upnp-org:service:printer:1";
const DNS_TYPE: &str = "_printer._tcp.local";
const WSD_TYPE: &str = "dn:printer";
const WSD_URL: &str = "http://10.0.0.3:5357/device";

/// Deploys the bridge for `case` and runs one discovery with the given
/// legacy peers, returning the client's probe and the bridge stats.
fn run_case(
    case: BridgeCase,
    seed: u64,
    calibration: Calibration,
) -> (DiscoveryProbe, starlink::core::BridgeStats, SimTime) {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let merged = case.build(BRIDGE);
    let (engine, stats) = framework.deploy(merged).expect("bridge deploys");

    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(seed);
    sim.add_actor(BRIDGE, engine);
    match case.target() {
        Family::Upnp => {
            sim.add_actor(SERVICE, upnp::UpnpDevice::new(UPNP_TYPE, SERVICE, calibration));
        }
        Family::Bonjour => {
            sim.add_actor(
                SERVICE,
                mdns::BonjourService::new(DNS_TYPE, "service:printer://10.0.0.3:631", calibration),
            );
        }
        Family::Slp => {
            sim.add_actor(
                SERVICE,
                slp::SlpService::new(SLP_TYPE, "service:printer://10.0.0.3:631", calibration),
            );
        }
        Family::Wsd => {
            sim.add_actor(SERVICE, wsd::WsdTarget::new(WSD_TYPE, WSD_URL, calibration));
        }
    }
    match case.source() {
        Family::Slp => {
            sim.add_actor(CLIENT, slp::SlpClient::new(SLP_TYPE, probe.clone()));
        }
        Family::Upnp => {
            sim.add_actor(CLIENT, upnp::UpnpClient::new(UPNP_TYPE, calibration, probe.clone()));
        }
        Family::Bonjour => {
            sim.add_actor(CLIENT, mdns::BonjourClient::new(DNS_TYPE, calibration, probe.clone()));
        }
        Family::Wsd => {
            sim.add_actor(CLIENT, wsd::WsdClient::new(WSD_TYPE, calibration, probe.clone()));
        }
    }
    let end = sim.run_until_idle();
    stats.assert_consistent(&format!("case {}", case.number()));
    (probe, stats, end)
}

#[test]
fn case_1_slp_client_discovers_upnp_device() {
    let (probe, stats, _) = run_case(BridgeCase::SlpToUpnp, 101, Calibration::fast());
    let result = probe.first().expect("SLP client got a reply");
    // The URL delivered to the SLP client is the UPnP device's URLBase.
    assert_eq!(result.url, "http://10.0.0.3:5000");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_2_slp_client_discovers_bonjour_service() {
    let (probe, stats, _) = run_case(BridgeCase::SlpToBonjour, 102, Calibration::fast());
    let result = probe.first().expect("SLP client got a reply");
    assert_eq!(result.url, "service:printer://10.0.0.3:631");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_3_upnp_client_discovers_slp_service() {
    let (probe, stats, _) = run_case(BridgeCase::UpnpToSlp, 103, Calibration::fast());
    let result = probe.first().expect("UPnP client got a description");
    // The control point extracts URLBase from the description the bridge
    // served, which embeds the SLP service URL.
    assert_eq!(result.url, "service:printer://10.0.0.3:631");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_4_upnp_client_discovers_bonjour_service() {
    let (probe, stats, _) = run_case(BridgeCase::UpnpToBonjour, 104, Calibration::fast());
    let result = probe.first().expect("UPnP client got a description");
    assert_eq!(result.url, "service:printer://10.0.0.3:631");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_5_bonjour_client_discovers_upnp_device() {
    let (probe, stats, _) = run_case(BridgeCase::BonjourToUpnp, 105, Calibration::fast());
    let result = probe.first().expect("Bonjour client got an answer");
    assert_eq!(result.url, "http://10.0.0.3:5000");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_6_bonjour_client_discovers_slp_service() {
    let (probe, stats, _) = run_case(BridgeCase::BonjourToSlp, 106, Calibration::fast());
    let result = probe.first().expect("Bonjour client got an answer");
    assert_eq!(result.url, "service:printer://10.0.0.3:631");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_7_wsd_client_discovers_slp_service() {
    let (probe, stats, _) = run_case(BridgeCase::WsdToSlp, 107, Calibration::fast());
    let result = probe.first().expect("WSD client got a probe match");
    // The XAddrs delivered to the probe client is the SLP service URL.
    assert_eq!(result.url, "service:printer://10.0.0.3:631");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_8_wsd_client_discovers_bonjour_service() {
    let (probe, stats, _) = run_case(BridgeCase::WsdToBonjour, 108, Calibration::fast());
    let result = probe.first().expect("WSD client got a probe match");
    assert_eq!(result.url, "service:printer://10.0.0.3:631");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_9_wsd_client_discovers_upnp_device() {
    let (probe, stats, _) = run_case(BridgeCase::WsdToUpnp, 109, Calibration::fast());
    let result = probe.first().expect("WSD client got a probe match");
    // The chain case: XAddrs carries the UPnP device's URLBase.
    assert_eq!(result.url, "http://10.0.0.3:5000");
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_10_slp_client_discovers_wsd_target() {
    let (probe, stats, _) = run_case(BridgeCase::SlpToWsd, 110, Calibration::fast());
    let result = probe.first().expect("SLP client got a reply");
    assert_eq!(result.url, WSD_URL);
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_11_bonjour_client_discovers_wsd_target() {
    let (probe, stats, _) = run_case(BridgeCase::BonjourToWsd, 111, Calibration::fast());
    let result = probe.first().expect("Bonjour client got an answer");
    assert_eq!(result.url, WSD_URL);
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn case_12_upnp_client_discovers_wsd_target() {
    let (probe, stats, _) = run_case(BridgeCase::UpnpToWsd, 112, Calibration::fast());
    let result = probe.first().expect("UPnP client got a description");
    // The control point extracts URLBase from the description the bridge
    // served, which embeds the WSD target's XAddrs.
    assert_eq!(result.url, WSD_URL);
    assert_eq!(stats.session_count(), 1);
    assert!(stats.errors().is_empty(), "bridge errors: {:?}", stats.errors());
}

#[test]
fn all_cases_succeed_across_seeds() {
    // Robustness: the matrix holds for several RNG seeds (different
    // latency samples and response jitter).
    for seed in [7, 8, 9] {
        for &case in BridgeCase::all() {
            let (probe, stats, _) = run_case(case, seed, Calibration::fast());
            assert_eq!(
                probe.len(),
                1,
                "case {} ({}) seed {seed}: no discovery; bridge errors: {:?}",
                case.number(),
                case.name(),
                stats.errors()
            );
        }
    }
}

#[test]
fn paper_calibration_translation_times_have_the_published_shape() {
    // One seeded run per case with the paper calibration: §VI's analysis
    // — "the cost of translation is bounded by the response of the
    // legacy protocols" — so the bridge time follows the *target*
    // family: SLP-target cases sit near the 6 s SLP response floor, the
    // others in the low hundreds of ms (the WSD target's WSDAPI-style
    // window lands there too).
    for &case in BridgeCase::all() {
        let (probe, stats, _) = run_case(case, 200 + case.number() as u64, Calibration::paper());
        assert_eq!(probe.len(), 1, "case {} did not complete", case.number());
        let times = stats.translation_times();
        assert_eq!(times.len(), 1);
        let ms = times[0].as_millis();
        match case.target() {
            Family::Slp => {
                assert!((5_900..=6_300).contains(&ms), "case {}: {ms}ms", case.number());
            }
            Family::Wsd => {
                assert!((150..=500).contains(&ms), "case {}: {ms}ms", case.number());
            }
            Family::Upnp | Family::Bonjour => {
                assert!((200..=450).contains(&ms), "case {}: {ms}ms", case.number());
            }
        }
        // All within discovery timeout bounds (OpenSLP default 15 s).
        assert!(ms < 15_000);
    }
}
