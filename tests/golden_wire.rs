//! Golden wire-format fixtures: the composed bytes of every protocol
//! message the bridges exchange — both through the hand-written native
//! codecs and through the runtime-generated MDL codecs — are snapshotted
//! as checked-in hex fixtures under `tests/fixtures/`. A codec refactor
//! that silently changes on-wire output fails here first, with a byte
//! diff; a deliberate format change regenerates the fixtures with
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test -q --test golden_wire
//! ```
//!
//! Every fixture also carries a round-trip assertion: the snapshotted
//! bytes must parse back to the message that produced them.

use starlink::core::Starlink;
use starlink::protocols::{bridges, http, mdns, slp, ssdp, wsd};

const SLP_TYPE: &str = "service:printer";
const UPNP_TYPE: &str = "urn:schemas-upnp-org:service:printer:1";
const DNS_TYPE: &str = "_printer._tcp.local";
const WSD_TYPE: &str = "dn:printer";
const SERVICE_URL: &str = "service:printer://10.0.0.3:631";
const WSD_URL: &str = "http://10.0.0.3:5357/device";

/// Formats bytes as the fixture hex text: 32 bytes per line, lowercase.
fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::new();
    for chunk in bytes.chunks(32) {
        for byte in chunk {
            out.push_str(&format!("{byte:02x}"));
        }
        out.push('\n');
    }
    out
}

fn from_hex(text: &str) -> Vec<u8> {
    // Anything but hex digits and line breaks means the fixture file
    // itself is broken (bad merge, stray edit) — fail at that cause, not
    // with a confusing byte diff.
    let mut digits = String::new();
    for c in text.chars() {
        if c.is_ascii_hexdigit() {
            digits.push(c);
        } else {
            assert!(c.is_ascii_whitespace(), "fixture contains non-hex character {c:?}");
        }
    }
    assert!(digits.len().is_multiple_of(2), "odd hex digit count in fixture");
    (0..digits.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&digits[i..i + 2], 16).expect("valid hex"))
        .collect()
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Compares `bytes` against the checked-in fixture (or rewrites it under
/// `GOLDEN_UPDATE=1`).
fn assert_golden(name: &str, bytes: &[u8]) {
    let path = fixture_path(name);
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, to_hex(bytes)).unwrap();
        return;
    }
    let fixture = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); run GOLDEN_UPDATE=1 to create"));
    let expected = from_hex(&fixture);
    assert_eq!(
        bytes,
        expected.as_slice(),
        "{name}: on-wire output changed\n  composed: {}\n  fixture:  {}\n\
         (intentional? regenerate with GOLDEN_UPDATE=1 cargo test -q --test golden_wire)",
        to_hex(bytes).replace('\n', ""),
        to_hex(&expected).replace('\n', "")
    );
}

#[test]
fn native_slp_wire_is_golden() {
    let rqst = slp::SrvRqst::new(0x1234, SLP_TYPE);
    let wire = slp::encode(&slp::SlpMessage::SrvRqst(rqst.clone()));
    assert_golden("slp_srvrqst.hex", &wire);
    assert_eq!(slp::decode(&wire).unwrap(), slp::SlpMessage::SrvRqst(rqst));

    let rply = slp::SrvRply::new(0x1234, SERVICE_URL);
    let wire = slp::encode(&slp::SlpMessage::SrvRply(rply.clone()));
    assert_golden("slp_srvrply.hex", &wire);
    assert_eq!(slp::decode(&wire).unwrap(), slp::SlpMessage::SrvRply(rply));
}

#[test]
fn native_ssdp_wire_is_golden() {
    let msearch = ssdp::MSearch::new(UPNP_TYPE);
    let wire = ssdp::encode(&ssdp::SsdpMessage::MSearch(msearch.clone()));
    assert_golden("ssdp_msearch.hex", &wire);
    assert_eq!(ssdp::decode(&wire).unwrap(), ssdp::SsdpMessage::MSearch(msearch));

    let response =
        ssdp::SsdpResponse::new(UPNP_TYPE, "uuid:starlink-golden", "http://10.0.0.3:5000/desc.xml");
    let wire = ssdp::encode(&ssdp::SsdpMessage::Response(response.clone()));
    assert_golden("ssdp_response.hex", &wire);
    assert_eq!(ssdp::decode(&wire).unwrap(), ssdp::SsdpMessage::Response(response));
}

#[test]
fn native_mdns_wire_is_golden() {
    let question = mdns::DnsQuestion::new(0x1234, DNS_TYPE);
    let wire = mdns::encode(&mdns::DnsMessage::Question(question.clone())).unwrap();
    assert_golden("mdns_question.hex", &wire);
    assert_eq!(mdns::decode(&wire).unwrap(), mdns::DnsMessage::Question(question));

    let response = mdns::DnsResponse::new(0x1234, DNS_TYPE, SERVICE_URL);
    let wire = mdns::encode(&mdns::DnsMessage::Response(response.clone())).unwrap();
    assert_golden("mdns_response.hex", &wire);
    assert_eq!(mdns::decode(&wire).unwrap(), mdns::DnsMessage::Response(response));
}

#[test]
fn native_http_wire_is_golden() {
    let get = http::HttpGet::new("/desc.xml", "10.0.0.2:80");
    let wire = http::encode(&http::HttpMessage::Get(get.clone()));
    assert_golden("http_get.hex", &wire);
    assert_eq!(http::decode(&wire).unwrap(), http::HttpMessage::Get(get));

    let ok = http::HttpOk::xml(http::device_description("http://10.0.0.3:5000", UPNP_TYPE));
    let wire = http::encode(&http::HttpMessage::Ok(ok.clone()));
    assert_golden("http_ok.hex", &wire);
    assert_eq!(http::decode(&wire).unwrap(), http::HttpMessage::Ok(ok));
}

#[test]
fn native_wsd_wire_is_golden() {
    let probe = wsd::WsdProbe::new(0x1234, WSD_TYPE);
    let wire = wsd::encode(&wsd::WsdMessage::Probe(probe.clone()));
    assert_golden("wsd_probe.hex", &wire);
    assert_eq!(wsd::decode(&wire).unwrap(), wsd::WsdMessage::Probe(probe));

    let matched = wsd::WsdProbeMatch::new(
        wsd::probe_uuid(0x9999),
        wsd::probe_uuid(0x1234),
        WSD_TYPE,
        WSD_URL,
    );
    let wire = wsd::encode(&wsd::WsdMessage::ProbeMatch(matched.clone()));
    assert_golden("wsd_probe_match.hex", &wire);
    assert_eq!(wsd::decode(&wire).unwrap(), wsd::WsdMessage::ProbeMatch(matched));
}

/// For each protocol, the MDL codec's *composed* form of every message
/// direction: native wire bytes are parsed into the abstract message,
/// re-composed through the model-driven codec, snapshotted, and the
/// snapshot must parse back to the identical abstract message (the
/// parse∘compose fixed point codec refactors must preserve).
#[test]
fn mdl_composed_wire_is_golden() {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();

    let native: [(&str, &str, Vec<u8>); 10] = [
        ("SLP", "mdl_slp_srvrqst.hex", {
            slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(0x1234, SLP_TYPE)))
        }),
        ("SLP", "mdl_slp_srvrply.hex", {
            slp::encode(&slp::SlpMessage::SrvRply(slp::SrvRply::new(0x1234, SERVICE_URL)))
        }),
        ("SSDP", "mdl_ssdp_msearch.hex", {
            ssdp::encode(&ssdp::SsdpMessage::MSearch(ssdp::MSearch::new(UPNP_TYPE)))
        }),
        ("SSDP", "mdl_ssdp_response.hex", {
            ssdp::encode(&ssdp::SsdpMessage::Response(ssdp::SsdpResponse::new(
                UPNP_TYPE,
                "uuid:starlink-golden",
                "http://10.0.0.3:5000/desc.xml",
            )))
        }),
        ("DNS", "mdl_dns_question.hex", {
            mdns::encode(&mdns::DnsMessage::Question(mdns::DnsQuestion::new(0x1234, DNS_TYPE)))
                .unwrap()
        }),
        ("DNS", "mdl_dns_response.hex", {
            mdns::encode(&mdns::DnsMessage::Response(mdns::DnsResponse::new(
                0x1234,
                DNS_TYPE,
                SERVICE_URL,
            )))
            .unwrap()
        }),
        ("HTTP", "mdl_http_get.hex", {
            http::encode(&http::HttpMessage::Get(http::HttpGet::new("/desc.xml", "10.0.0.2:80")))
        }),
        ("HTTP", "mdl_http_ok.hex", {
            http::encode(&http::HttpMessage::Ok(http::HttpOk::xml(http::device_description(
                "http://10.0.0.3:5000",
                UPNP_TYPE,
            ))))
        }),
        ("WSD", "mdl_wsd_probe.hex", {
            wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(0x1234, WSD_TYPE)))
        }),
        ("WSD", "mdl_wsd_probe_match.hex", {
            wsd::encode(&wsd::WsdMessage::ProbeMatch(wsd::WsdProbeMatch::new(
                wsd::probe_uuid(0x9999),
                wsd::probe_uuid(0x1234),
                WSD_TYPE,
                WSD_URL,
            )))
        }),
    ];

    for (protocol, fixture, wire) in native {
        let codec = framework.codec(protocol).unwrap_or_else(|| panic!("codec {protocol}"));
        let abstract_message = codec
            .parse(&wire)
            .unwrap_or_else(|e| panic!("{protocol} failed to parse native bytes: {e}"));
        let composed = codec.compose(&abstract_message).unwrap();
        assert_golden(fixture, &composed);
        // Round trip: the snapshotted bytes parse back to the identical
        // abstract message, and composing again is a fixed point.
        let reparsed = codec.parse(&composed).unwrap();
        assert_eq!(reparsed, abstract_message, "{fixture}: parse(compose(m)) != m");
        assert_eq!(codec.compose(&reparsed).unwrap(), composed, "{fixture}: compose not stable");
    }
}
