//! §V-C transparency requirement: "the legacy protocols are implemented
//! and deployed independently of the Starlink, they are never aware of
//! the framework".
//!
//! Two consequences are tested here:
//!
//! 1. **wire-level interchangeability** — the model-driven (MDL) codecs
//!    read exactly the bytes the native codecs write and vice versa, for
//!    every message type of every protocol;
//! 2. **behavioural non-interference** — legacy pairs of the *same*
//!    protocol still interoperate natively with a bridge present on the
//!    network (the bridge answers foreign protocols, not theirs).

use starlink::core::Starlink;
use starlink::mdl::{load_mdl, MdlCodec};
use starlink::message::Value;
use starlink::net::SimNet;
use starlink::protocols::{bridges, http, mdns, slp, ssdp, Calibration, DiscoveryProbe};

#[test]
fn mdl_codec_reads_every_native_slp_message() {
    let codec = MdlCodec::generate(load_mdl(slp::mdl_xml()).unwrap()).unwrap();
    let rqst = slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(7, "service:printer")));
    let rply =
        slp::encode(&slp::SlpMessage::SrvRply(slp::SrvRply::new(7, "service:printer://x:631")));
    assert_eq!(codec.parse(&rqst).unwrap().name(), "SLPSrvRequest");
    assert_eq!(codec.parse(&rply).unwrap().name(), "SLPSrvReply");
    // And byte-exact recomposition.
    assert_eq!(codec.compose(&codec.parse(&rqst).unwrap()).unwrap(), rqst);
    assert_eq!(codec.compose(&codec.parse(&rply).unwrap()).unwrap(), rply);
}

#[test]
fn mdl_codec_reads_every_native_dns_message() {
    let codec = MdlCodec::generate(load_mdl(mdns::mdl_xml()).unwrap()).unwrap();
    let q =
        mdns::encode(&mdns::DnsMessage::Question(mdns::DnsQuestion::new(1, "_printer._tcp.local")))
            .unwrap();
    let r = mdns::encode(&mdns::DnsMessage::Response(mdns::DnsResponse::new(
        1,
        "_printer._tcp.local",
        "service:printer://x:631",
    )))
    .unwrap();
    assert_eq!(codec.parse(&q).unwrap().name(), "DNS_Question");
    assert_eq!(codec.parse(&r).unwrap().name(), "DNS_Response");
    assert_eq!(codec.compose(&codec.parse(&q).unwrap()).unwrap(), q);
    assert_eq!(codec.compose(&codec.parse(&r).unwrap()).unwrap(), r);
}

#[test]
fn mdl_codec_reads_every_native_ssdp_and_http_message() {
    let ssdp_codec = MdlCodec::generate(load_mdl(ssdp::mdl_xml()).unwrap()).unwrap();
    let http_codec = MdlCodec::generate(load_mdl(http::mdl_xml()).unwrap()).unwrap();

    let search = ssdp::encode(&ssdp::SsdpMessage::MSearch(ssdp::MSearch::new("urn:x:p:1")));
    let resp = ssdp::encode(&ssdp::SsdpMessage::Response(ssdp::SsdpResponse::new(
        "urn:x:p:1",
        "uuid:1",
        "http://10.0.0.3:5000/desc.xml",
    )));
    assert_eq!(ssdp_codec.parse(&search).unwrap().name(), "SSDP_M-Search");
    assert_eq!(ssdp_codec.parse(&resp).unwrap().name(), "SSDP_Resp");

    let get = http::encode(&http::HttpMessage::Get(http::HttpGet::new("/desc.xml", "h:5000")));
    let ok = http::encode(&http::HttpMessage::Ok(http::HttpOk::xml(http::device_description(
        "http://10.0.0.3:5000",
        "urn:x:p:1",
    ))));
    assert_eq!(http_codec.parse(&get).unwrap().name(), "HTTP_GET");
    assert_eq!(http_codec.parse(&ok).unwrap().name(), "HTTP_OK");
}

#[test]
fn native_mdl_composed_messages_decode_natively() {
    // The reverse direction: a message composed purely from the model
    // (blank schema + field sets) must decode with the legacy stack.
    let codec = MdlCodec::generate(load_mdl(slp::mdl_xml()).unwrap()).unwrap();
    let mut msg = codec.schema("SLPSrvRequest").unwrap().instantiate();
    msg.set(&"Version".into(), Value::Unsigned(2)).unwrap();
    msg.set(&"XID".into(), Value::Unsigned(99)).unwrap();
    msg.set(&"LangTag".into(), Value::Str("en".into())).unwrap();
    msg.set(&"SRVType".into(), Value::Str("service:printer".into())).unwrap();
    let wire = codec.compose(&msg).unwrap();
    match slp::decode(&wire).unwrap() {
        slp::SlpMessage::SrvRqst(rqst) => {
            assert_eq!(rqst.xid, 99);
            assert_eq!(rqst.service_type, "service:printer");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn same_protocol_legacy_pair_unaffected_by_bridge_presence() {
    // A native SLP client + SLP service interoperate directly; deploy the
    // SLP→Bonjour bridge on the same network (same multicast group!) and
    // verify the client still gets exactly one reply from the real
    // service, with the same content as without the bridge.
    let run = |with_bridge: bool| {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(77);
        if with_bridge {
            let mut framework = Starlink::new();
            bridges::load_all_mdls(&mut framework).unwrap();
            let (engine, _stats) = framework.deploy(bridges::slp_to_bonjour()).unwrap();
            sim.add_actor("10.0.0.9", engine);
        }
        sim.add_actor(
            "10.0.0.3",
            slp::SlpService::new(
                "service:printer",
                "service:printer://10.0.0.3:631",
                Calibration::fast(),
            ),
        );
        sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
        sim.run_until_idle();
        probe.results()
    };
    let without = run(false);
    let with = run(true);
    assert_eq!(without.len(), 1);
    assert!(!with.is_empty(), "legacy pair broken by bridge presence");
    assert_eq!(with[0].url, without[0].url);
}
