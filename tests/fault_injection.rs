//! Failure-injection tests: the bridge engine must degrade gracefully —
//! record and drop, never wedge — under garbage traffic, protocol
//! violations and absent services.

use starlink::core::Starlink;
use starlink::net::{Actor, Context, SimAddr, SimNet, SimTime};
use starlink::protocols::{bridges, mdns, slp, Calibration, DiscoveryProbe};

fn deployed_bridge() -> (starlink::core::BridgeEngine, starlink::core::BridgeStats) {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    framework.deploy(bridges::slp_to_bonjour()).unwrap()
}

/// Sends raw bytes at the SLP group at start.
struct RawSender {
    payload: Vec<u8>,
    to: SimAddr,
}

impl Actor for RawSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(40_000).unwrap();
        ctx.udp_send(40_000, self.to.clone(), self.payload.clone());
    }
}

#[test]
fn garbage_datagrams_are_recorded_and_dropped() {
    let (engine, stats) = deployed_bridge();
    let mut sim = SimNet::new(1);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.1",
        RawSender { payload: vec![0xFF; 40], to: SimAddr::new(slp::SLP_GROUP, slp::SLP_PORT) },
    );
    sim.run_until_idle();
    assert_eq!(stats.session_count(), 0);
    assert_eq!(stats.errors().len(), 1, "errors: {:?}", stats.errors());
    stats.assert_consistent("garbage datagrams");
}

#[test]
fn truncated_slp_header_is_not_fatal() {
    let (engine, stats) = deployed_bridge();
    let mut sim = SimNet::new(2);
    sim.add_actor("10.0.0.2", engine);
    // Three bytes of a valid-looking header, then nothing.
    sim.add_actor(
        "10.0.0.1",
        RawSender { payload: vec![2, 1, 0], to: SimAddr::new(slp::SLP_GROUP, slp::SLP_PORT) },
    );
    sim.run_until_idle();
    assert_eq!(stats.errors().len(), 1);
    stats.assert_consistent("truncated header");
}

#[test]
fn wrong_message_for_state_is_dropped_and_session_survives() {
    // An unsolicited SrvRply arrives first (the bridge's SLP part expects
    // a SrvRqst); afterwards a real lookup must still succeed.
    struct ReplyThenNothing;
    impl Actor for ReplyThenNothing {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(40_001).unwrap();
            let rogue = slp::encode(&slp::SlpMessage::SrvRply(slp::SrvRply::new(1, "x")));
            ctx.udp_send(40_001, SimAddr::new(slp::SLP_GROUP, slp::SLP_PORT), rogue);
        }
    }

    let (engine, stats) = deployed_bridge();
    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(3);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::fast(),
        ),
    );
    sim.add_actor("10.0.0.9", ReplyThenNothing);
    sim.run_until(SimTime::from_millis(5));
    // Now the real client arrives.
    sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
    sim.run_until_idle();

    assert_eq!(stats.errors().len(), 1, "rogue reply recorded: {:?}", stats.errors());
    assert_eq!(probe.len(), 1, "later lookup still succeeds");
    assert_eq!(stats.session_count(), 1);
    stats.assert_consistent("wrong message for state");
}

#[test]
fn missing_target_service_leaves_no_bogus_reply() {
    // No Bonjour responder exists: the SLP client must simply receive
    // nothing (as with a real unanswered lookup) and the bridge must not
    // fabricate a reply.
    let (engine, stats) = deployed_bridge();
    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(4);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
    sim.run_until_idle();
    assert!(probe.is_empty());
    assert_eq!(stats.session_count(), 0);
    stats.assert_consistent("missing target service");
}

#[test]
fn duplicate_responses_do_not_double_reply() {
    // Two Bonjour responders answer the same question; the bridge's
    // merged automaton consumes the first response, drops the second
    // (no matching receive state), and the client gets exactly one reply.
    let (engine, stats) = deployed_bridge();
    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(5);
    sim.add_actor("10.0.0.2", engine);
    for host in ["10.0.0.3", "10.0.0.4"] {
        sim.add_actor(
            host,
            mdns::BonjourService::new(
                "_printer._tcp.local",
                format!("service:printer://{host}:631"),
                Calibration::fast(),
            ),
        );
    }
    sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
    sim.run_until_idle();
    assert_eq!(probe.len(), 1, "client must see exactly one reply");
    assert_eq!(stats.session_count(), 1);
    // The second responder's answer was recorded as undeliverable.
    assert!(!stats.errors().is_empty());
    stats.assert_consistent("duplicate responses");
}

#[test]
fn bridge_survives_a_burst_of_mixed_garbage_then_works() {
    let (engine, stats) = deployed_bridge();
    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(6);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::fast(),
        ),
    );
    for (i, payload) in [vec![], vec![0x00], vec![2, 9, 9, 9], b"GET / HTTP/1.1\r\n\r\n".to_vec()]
        .into_iter()
        .enumerate()
    {
        sim.add_actor(
            format!("10.0.1.{i}"),
            RawSender { payload, to: SimAddr::new(slp::SLP_GROUP, slp::SLP_PORT) },
        );
    }
    sim.run_until(SimTime::from_millis(10));
    sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
    sim.run_until_idle();
    assert_eq!(probe.len(), 1, "bridge wedged by garbage; errors: {:?}", stats.errors());
    stats.assert_consistent("mixed garbage burst");
}
