//! The observability export surface, end to end: golden snapshots of
//! the rendered Prometheus-style metrics page (covering every stats
//! family plus per-version deployment state across a live
//! drain-then-swap), the JSON-lines trace page, a real HTTP round-trip
//! through [`MetricsServer`], and the stale-counter guarantee — a swap
//! never resets or double-counts a session ledger.
//!
//! Regenerate the snapshots after an intentional format change with:
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test -q --test metrics_endpoint
//! ```

use starlink::core::{DeployState, MetricsHub};
use starlink::net::{MetricsServer, SimTime, TraceEntry};
use starlink::protocols::bridges::BridgeCase;
use starlink_bench::{run_sharded_case, ShardedRun, ShardedWorkload};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, TcpStream};

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Compares `text` against the checked-in snapshot (or rewrites it
/// under `GOLDEN_UPDATE=1`).
fn assert_golden_text(name: &str, text: &str) {
    let path = fixture_path(name);
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, text).unwrap();
        return;
    }
    let fixture = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); run GOLDEN_UPDATE=1 to create"));
    assert_eq!(
        text, fixture,
        "{name}: rendered page changed (intentional? regenerate with \
         GOLDEN_UPDATE=1 cargo test -q --test metrics_endpoint)"
    );
}

/// A deterministic drain-then-swap run: 8 SLP→Bonjour clients over 2
/// shards in waves of 2; once v1 has started 4 sessions, v2 deploys
/// through the registry gate and every shard swaps onto it.
fn swap_run() -> ShardedRun {
    let mut workload = ShardedWorkload::new(2, 8);
    workload.seed = 0x5EED;
    workload.wave = 2;
    workload.swap_at_client = 4;
    run_sharded_case(BridgeCase::SlpToBonjour, workload)
}

fn trace(at_us: u64, description: &str) -> TraceEntry {
    TraceEntry { at: SimTime::from_micros(at_us), description: description.to_owned() }
}

#[test]
fn metrics_page_across_a_drain_then_swap_is_golden() {
    let run = swap_run();
    let swap = run.swap.as_ref().expect("the workload swaps mid-run");
    assert_eq!(run.completed(), 8, "inert swap run completes every client");
    assert_eq!(swap.old.state(), DeployState::Retired);
    assert_eq!(swap.new.state(), DeployState::Serving);

    let hub = MetricsHub::new();
    hub.register(&swap.old);
    hub.register(&swap.new);
    // A fixed trace sample, one entry per classified kind, so the golden
    // pins the trace counter family and the JSON-lines framing too.
    hub.record_trace("shard0", &trace(1_000, "control: swap to v2 (2 coexisting)"));
    hub.record_trace("shard0", &trace(2_000, "chaos drop 10.20.1.1 -> 10.0.0.2"));
    hub.record_trace("shard1", &trace(3_000, "bridge session 4 completed"));
    hub.record_trace("shard1", &trace(4_000, "udp 10.20.1.2:41000 -> 10.0.0.2:427 (39 bytes)"));

    assert_golden_text("metrics_page.txt", &hub.render());
    assert_golden_text(
        "trace_page.txt",
        &hub.render_page("/trace").expect("the trace page renders"),
    );
    assert!(hub.render_page("/nope").is_none(), "unknown paths 404");

    // The page is a pure function of the run: a second identical run
    // renders byte-identically (the golden is not a fluke of one run).
    let again = swap_run();
    let swap_again = again.swap.as_ref().expect("second run swaps too");
    let hub_again = MetricsHub::new();
    hub_again.register(&swap_again.old);
    hub_again.register(&swap_again.new);
    hub_again.record_trace("shard0", &trace(1_000, "control: swap to v2 (2 coexisting)"));
    hub_again.record_trace("shard0", &trace(2_000, "chaos drop 10.20.1.1 -> 10.0.0.2"));
    hub_again.record_trace("shard1", &trace(3_000, "bridge session 4 completed"));
    hub_again
        .record_trace("shard1", &trace(4_000, "udp 10.20.1.2:41000 -> 10.0.0.2:427 (39 bytes)"));
    assert_eq!(hub.render(), hub_again.render(), "metrics page is deterministic");
}

#[test]
fn endpoint_serves_the_live_pages_over_http() {
    let run = swap_run();
    let swap = run.swap.as_ref().expect("the workload swaps mid-run");
    let hub = MetricsHub::new();
    hub.register(&swap.old);
    hub.register(&swap.new);
    hub.record_trace("shard0", &trace(1_000, "control: swap to v2 (2 coexisting)"));
    let server = MetricsServer::serve(hub.render_fn()).expect("endpoint binds");

    let get = |path: &str| {
        let mut stream = TcpStream::connect((Ipv4Addr::LOCALHOST, server.port())).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").as_bytes())
            .expect("write request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    };

    let metrics = get("/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200 OK"), "{metrics}");
    let body = metrics.split("\r\n\r\n").nth(1).expect("response has a body");
    assert_eq!(body, hub.render(), "the endpoint serves the hub's render verbatim");
    assert!(body.contains("starlink_deployment_state{"), "per-version state is exported");
    assert!(
        body.contains(r#"state="retired"} 1"#) && body.contains(r#"state="serving"} 1"#),
        "both sides of the swap are visible:\n{body}"
    );

    let trace_page = get("/trace");
    assert!(trace_page.starts_with("HTTP/1.0 200 OK"), "{trace_page}");
    assert!(trace_page.contains(r#""kind":"control""#), "{trace_page}");

    let missing = get("/there-is-no-such-page");
    assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
}

#[test]
fn a_swap_never_resets_or_double_counts_the_session_ledgers() {
    let run = swap_run();
    let swap = run.swap.as_ref().expect("the workload swaps mid-run");
    let old = swap.old.stats().concurrency();
    let new = swap.new.stats().concurrency();

    // No reset: every v1 counter is monotone across the swap instant.
    let pre = &swap.pre_swap;
    assert!(pre.started > 0, "v1 served before the swap");
    for (name, before, after) in [
        ("started", pre.started, old.started),
        ("completed", pre.completed, old.completed),
        ("failed", pre.failed, old.failed),
        ("expired", pre.expired, old.expired),
    ] {
        assert!(after >= before, "v1 {name} fell across the swap: {before} -> {after}");
    }

    // No double count, no loss: with an inert network every client runs
    // exactly one session, and the two ledgers partition them.
    assert_eq!(old.started + new.started, 8, "v1 {old:?} / v2 {new:?}");
    assert_eq!(old.completed + new.completed, 8, "v1 {old:?} / v2 {new:?}");
    assert!(new.started > 0, "post-swap sessions landed on v2");
    assert_eq!(old.failed + new.failed + old.expired + new.expired, 0);

    // Both ledgers quiescent, the retired one frozen at its final tally.
    assert_eq!(old.active, 0, "v1 retired with live sessions");
    assert_eq!(new.active, 0, "v2 wedged");
    assert_eq!(swap.old.state(), DeployState::Retired);
}
