//! Programmatic `starlink-check` fixtures for the lint codes that
//! cannot be expressed as standalone XML documents: correlator coverage
//! (AUT006) and the ontology lints (ONT001–ONT003) need a deployed
//! framework for context, and the fusion-reject categories
//! (FUS001–FUS006) are produced by the engine's plan compiler, not by a
//! document analysis. Each fixture builds the offending model with the
//! public API, triggers the code, and locks the rendered diagnostics
//! with a golden snapshot next to the XML corpus
//! (`tests/fixtures/badspecs/golden/`). Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -q check_programmatic`.

use starlink::automata::{
    Assignment, Color, ColoredAutomaton, Delta, MergedAutomaton, Mode, Transport, ValueSource,
};
use starlink::core::{
    analyze_ontology, check_correlator, EngineConfig, FieldCorrelator, Ontology, Starlink,
};
use starlink::protocols::bridges::{self, BridgeCase};
use starlink::protocols::{mdns, slp, ssdp, wsd};
use starlink::xml::{diag, Diagnostic};
use std::path::Path;
use std::sync::Arc;

const ECHO_MDL: &str = r#"
  <MDL protocol="Echo" kind="binary">
    <Header type="Echo"><Op>8</Op><Tag>16</Tag></Header>
    <Message type="Ping"><Rule>Op=1</Rule></Message>
    <Message type="Pong"><Rule>Op=2</Rule></Message>
  </MDL>"#;

fn field(message: &str, path: &str) -> ValueSource {
    ValueSource::field(message, path)
}

fn lit(value: u64) -> ValueSource {
    ValueSource::literal(value)
}

fn assign(target: &str, path: &str, source: ValueSource) -> Assignment {
    Assignment::new(target, path, source)
}

/// A framework with every shipped MDL loaded.
fn framework() -> Starlink {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    framework
}

/// Deploys `merged` and reports the engine's fusion outcome as a
/// diagnostic: the `FUSxxx` reject, or a panic when it unexpectedly
/// fused (each fixture exists to be rejected).
fn fusion_reject_diag(merged: MergedAutomaton, config: EngineConfig) -> Vec<Diagnostic> {
    let name = format!("bridge:{}", merged.name());
    let (engine, _stats) = framework().deploy_with(merged, config).expect("fixture deploys");
    let reject = engine.fused_reject().expect("fixture must stay interpreted");
    vec![Diagnostic::info(reject.code(), reject.to_string()).on(name)]
}

fn correlated() -> EngineConfig {
    EngineConfig {
        correlator: Some(Arc::new(bridges::default_correlator())),
        ..EngineConfig::default()
    }
}

/// AUT006 — a correlator keyed on a field the messages do not carry.
fn aut006_fixture() -> Vec<Diagnostic> {
    let mut framework = Starlink::new();
    let codec = framework.load_mdl_xml(ECHO_MDL).expect("MDL loads");
    let automaton = ColoredAutomaton::builder("Echo")
        .color(Color::new(Transport::Udp, 1000, Mode::Async).multicast("239.0.0.1"))
        .state("s0")
        .state_accepting("s1")
        .receive("s0", "Ping", "s1")
        .send("s1", "Pong", "s0")
        .build()
        .expect("automaton builds");
    let merged = MergedAutomaton::from_single(automaton);
    let correlator = FieldCorrelator::new([("Echo", "SessionId")]);
    check_correlator(&merged, &[codec], &correlator)
}

/// ONT001 — an empty ontology derives nothing: every mandatory field of
/// both outbound messages goes uncovered.
fn ont001_fixture() -> Vec<Diagnostic> {
    analyze_ontology(
        &framework(),
        &wsd::service_automaton(),
        &slp::client_automaton(),
        &Ontology::new(),
    )
}

/// ONT002 — a conversion naming a function absent from the registry.
fn ont002_fixture() -> Vec<Diagnostic> {
    let (_, service, client, ontology) = bridges::synthesized_inputs().remove(0);
    let ontology = ontology.conversion("url", "url", "frobnicate");
    analyze_ontology(&framework(), &service, &client, &ontology)
}

/// ONT003 — dangling annotations: a concept on a message outside the
/// exchange, and a lone outbound concept no conversion can feed.
fn ont003_fixture() -> Vec<Diagnostic> {
    let (_, service, client, ontology) = bridges::synthesized_inputs().remove(0);
    let ontology = ontology.concept("SLP_Unknown", "Foo", "ghost").concept(
        "SLPSrvRequest",
        "Predicate",
        "lonely",
    );
    analyze_ontology(&framework(), &service, &client, &ontology)
}

/// FUS001 — a three-part chain (UPnP needs SSDP + HTTP) cannot fuse.
fn fus001_fixture() -> Vec<Diagnostic> {
    fusion_reject_diag(BridgeCase::SlpToUpnp.build("10.0.0.2"), correlated())
}

/// FUS002 — a duplicated forward δ: three δ-transitions still satisfy
/// the merge chain, but fusion needs exactly a forward/backward pair.
fn fus002_fixture() -> Vec<Diagnostic> {
    let forward = || {
        Delta::new("SLP:s1", "DNS:s0")
            .assignment(assign("DNS_Question", "QName", field("SLPSrvRequest", "SRVType")))
            .assignment(assign("DNS_Question", "ID", field("SLPSrvRequest", "XID")))
    };
    let merged = MergedAutomaton::builder("extra-delta")
        .part(slp::service_automaton())
        .part(mdns::client_automaton())
        .equivalence("DNS_Question", &["SLPSrvRequest"])
        .equivalence("SLPSrvReply", &["DNS_Response"])
        .delta(forward())
        .delta(forward())
        .delta(Delta::new("DNS:s2", "SLP:s1").assignment(assign(
            "SLPSrvReply",
            "URLEntry",
            field("DNS_Response", "RData"),
        )))
        .build()
        .expect("bridge builds");
    fusion_reject_diag(merged, correlated())
}

/// FUS003 — a two-part bridge over SSDP: the SSDP spec has no flat
/// plan (delimited-pairs headers), so the fused substrate is missing.
fn fus003_fixture() -> Vec<Diagnostic> {
    let merged = MergedAutomaton::builder("ssdp-gap")
        .part(ssdp::service_automaton())
        .part(mdns::client_automaton())
        .equivalence("DNS_Question", &["SSDP_M-Search"])
        .equivalence("SSDP_Resp", &["DNS_Response"])
        .delta(
            Delta::new("SSDP:r1", "DNS:s0")
                .assignment(assign("DNS_Question", "QName", field("SSDP_M-Search", "ST")))
                .assignment(assign("DNS_Question", "ID", lit(1))),
        )
        .delta(Delta::new("DNS:s2", "SSDP:r1").assignment(assign(
            "SSDP_Resp",
            "Location",
            field("DNS_Response", "RData"),
        )))
        .build()
        .expect("bridge builds");
    fusion_reject_diag(merged, correlated())
}

/// FUS004 — a translation step with no allocation-free lowering: a
/// multi-argument function in a δ assignment.
fn fus004_fixture() -> Vec<Diagnostic> {
    let merged = MergedAutomaton::builder("multiarg")
        .part(slp::service_automaton())
        .part(mdns::client_automaton())
        .equivalence("DNS_Question", &["SLPSrvRequest"])
        .equivalence("SLPSrvReply", &["DNS_Response"])
        .delta(
            Delta::new("SLP:s1", "DNS:s0")
                .assignment(assign(
                    "DNS_Question",
                    "QName",
                    ValueSource::function(
                        "extract-tag",
                        vec![field("SLPSrvRequest", "SRVType"), ValueSource::literal("tag")],
                    ),
                ))
                .assignment(assign("DNS_Question", "ID", field("SLPSrvRequest", "XID")))
                .assignment(assign("DNS_Question", "QDCount", lit(1)))
                .assignment(assign("DNS_Question", "QType", lit(12)))
                .assignment(assign("DNS_Question", "QClass", lit(1))),
        )
        .delta(
            Delta::new("DNS:s2", "SLP:s1")
                .assignment(assign("SLPSrvReply", "URLEntry", field("DNS_Response", "RData")))
                .assignment(assign("SLPSrvReply", "XID", field("SLPSrvRequest", "XID"))),
        )
        .build()
        .expect("bridge builds");
    fusion_reject_diag(merged, correlated())
}

/// FUS005 — the deployed correlator declares no id field for the
/// target-side query, so session keys cannot be mirrored onto slots.
fn fus005_fixture() -> Vec<Diagnostic> {
    let config = EngineConfig {
        correlator: Some(Arc::new(FieldCorrelator::new([("SLP", "XID")]))),
        ..EngineConfig::default()
    };
    fusion_reject_diag(BridgeCase::SlpToBonjour.build("10.0.0.2"), config)
}

/// FUS006 — configuration pins the interpreted path.
fn fus006_fixture() -> Vec<Diagnostic> {
    let config = EngineConfig { force_interpreted: true, ..correlated() };
    fusion_reject_diag(BridgeCase::SlpToBonjour.build("10.0.0.2"), config)
}

/// Every programmatic fixture: (snapshot name, lint code it triggers,
/// the diagnostics it produced).
fn fixtures() -> Vec<(&'static str, &'static str, Vec<Diagnostic>)> {
    vec![
        ("aut006_missing_correlator_field", "AUT006", aut006_fixture()),
        ("ont001_empty_ontology", "ONT001", ont001_fixture()),
        ("ont002_unknown_conversion", "ONT002", ont002_fixture()),
        ("ont003_dangling_concepts", "ONT003", ont003_fixture()),
        ("fus001_three_parts", "FUS001", fus001_fixture()),
        ("fus002_extra_delta", "FUS002", fus002_fixture()),
        ("fus003_unflattenable_part", "FUS003", fus003_fixture()),
        ("fus004_multiarg_translation", "FUS004", fus004_fixture()),
        ("fus005_no_target_id_field", "FUS005", fus005_fixture()),
        ("fus006_forced_interpreted", "FUS006", fus006_fixture()),
    ]
}

#[test]
fn every_programmatic_fixture_triggers_its_lint_code() {
    for (name, code, diags) in fixtures() {
        assert!(
            diags.iter().any(|d| d.code() == code),
            "{name} does not trigger {code}; got:\n{}",
            diag::render(&diags),
        );
    }
}

#[test]
fn programmatic_diagnostics_match_golden_snapshots() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/badspecs/golden");
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for (name, _, diags) in fixtures() {
        let rendered = format!("{}\n", diag::render(&diags));
        let golden_path = golden_dir.join(format!("{name}.txt"));
        if update {
            std::fs::write(&golden_path, &rendered).expect("golden writable");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "missing golden snapshot {}; run UPDATE_GOLDEN=1 cargo test -q check_programmatic",
                golden_path.display()
            )
        });
        if golden != rendered {
            mismatches
                .push(format!("== {name} ==\n-- golden --\n{golden}-- actual --\n{rendered}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "diagnostic snapshots diverged (UPDATE_GOLDEN=1 to accept):\n{}",
        mismatches.join("\n"),
    );
}
