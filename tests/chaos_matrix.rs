//! The chaos conformance matrix: all twelve bridge cases × the seven
//! named profiles × {1, 4} engine shards, each cell driving ≥50
//! interleaved wire-level clients through shard simulations whose links
//! drop, duplicate, reorder, jitter, corrupt, partition, share
//! bandwidth, open only in satellite-style connectivity windows or
//! live-swap the bridge deployment mid-run — and the **liveness
//! contract** must hold in every cell: the engine never wedges, never
//! cross-delivers a reply, and every session ends counted in exactly
//! one of completed/failed/expired with the stats invariant
//! (store-and-forward counters included) intact on every shard.
//!
//! Everything here is a deterministic function of `(seed, profile)`.
//! A failing cell prints a one-command reproduction line; run it via the
//! `repro_cell` test:
//!
//! ```sh
//! CHAOS_CASE=3 CHAOS_PROFILE=lossy10 CHAOS_SEED=123 CHAOS_SHARDS=4 \
//!   CHAOS_CLIENTS=50 cargo test -q --test chaos_matrix repro_cell -- --nocapture
//! ```
//!
//! Scaling knobs (CI's main test job runs a short-mode slice through
//! these; a dedicated parallel job runs the full matrix): `CHAOS_CLIENTS`
//! (default 50), `CHAOS_SHARDS` (comma list, default `1,4`),
//! `CHAOS_PROFILES` (comma list of profile names, default all seven).
//! `repro_cell` additionally takes per-knob overrides on top of the
//! named profile (`CHAOS_BANDWIDTH` in bytes/sec, `CHAOS_PASS_WINDOW_MS`
//! with `CHAOS_PASS_SLOTS`, `CHAOS_QUEUE_BOUND`, `CHAOS_CLIENT_RETRY_MS`)
//! for bisecting a failure down to one knob. Typos in any of them fail
//! loudly instead of shrinking the matrix.

use starlink::net::{Impairments, SimDuration};
use starlink::protocols::{bridges::BridgeCase, Calibration};
use starlink_bench::chaos::{
    assert_liveness_contract, deterministic_digest, run_chaos_cell, ChaosCell, ChaosProfile,
};
use starlink_bench::run_concurrent_clients_chaos;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        // A typo must fail loudly, not silently fall back to the default.
        Ok(v) => v.trim().parse().unwrap_or_else(|_| panic!("{name} entry {v:?} is not a number")),
        Err(_) => default,
    }
}

/// An optional `u64` knob for `repro_cell` overrides: unset means
/// `None`, set-but-garbled panics loudly — a typo must never silently
/// reproduce a different cell.
fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name)
        .ok()
        .map(|v| v.trim().parse().unwrap_or_else(|_| panic!("{name} entry {v:?} is not a number")))
}

fn matrix_clients() -> usize {
    env_usize("CHAOS_CLIENTS", 50)
}

fn matrix_shard_counts() -> Vec<usize> {
    match std::env::var("CHAOS_SHARDS") {
        Ok(v) => {
            // A typo must fail loudly, not shrink the matrix to nothing.
            let counts: Vec<usize> = v
                .split(',')
                .map(|s| {
                    s.trim().parse().unwrap_or_else(|_| {
                        panic!("CHAOS_SHARDS entry {s:?} is not a shard count (got {v:?})")
                    })
                })
                .collect();
            assert!(!counts.is_empty(), "CHAOS_SHARDS is set but empty");
            counts
        }
        Err(_) => vec![1, 4],
    }
}

/// Whether `profile` is enabled by the `CHAOS_PROFILES` filter. Unknown
/// names in the filter are an error — a typo must not silently disable
/// every row of the matrix.
fn profile_enabled(profile: &ChaosProfile) -> bool {
    match std::env::var("CHAOS_PROFILES") {
        Ok(list) => {
            for name in list.split(',') {
                assert!(
                    ChaosProfile::by_name(name.trim()).is_some(),
                    "unknown CHAOS_PROFILES entry {:?} (profiles: {:?})",
                    name.trim(),
                    ChaosProfile::matrix().map(|p| p.name)
                );
            }
            list.split(',').any(|name| name.trim() == profile.name)
        }
        Err(_) => true,
    }
}

/// The fixed seed of one matrix cell — stable across runs and CI, so
/// every failure reproduces from its printed command alone.
fn cell_seed(case: BridgeCase, shards: usize, profile: &ChaosProfile) -> u64 {
    let profile_index = ChaosProfile::matrix()
        .iter()
        .position(|p| p.name == profile.name)
        .expect("profile is in the matrix") as u64;
    0xC4A0_0000 + case.number() as u64 * 0x100 + shards as u64 * 0x10 + profile_index
}

/// Runs one profile's row of the matrix: every case × every shard
/// count, ≥50 interleaved clients per cell.
fn run_profile_row(profile: &ChaosProfile) {
    if !profile_enabled(profile) {
        eprintln!("profile {} disabled via CHAOS_PROFILES; skipping", profile.name);
        return;
    }
    let clients = matrix_clients();
    for shards in matrix_shard_counts() {
        for &case in BridgeCase::all() {
            let seed = cell_seed(case, shards, profile);
            let run = run_chaos_cell(ChaosCell { case, shards, clients, seed }, profile);
            assert_liveness_contract(&run, profile, seed);
        }
    }
}

#[test]
fn chaos_matrix_lossless_profile() {
    // The control row: with the impairment layer installed but inert,
    // every cell must behave exactly like the pre-chaos harness — full
    // completion, correct addressing, clean engines.
    run_profile_row(&ChaosProfile::lossless());
}

#[test]
fn chaos_matrix_lossy10_profile() {
    run_profile_row(&ChaosProfile::lossy10());
}

#[test]
fn chaos_matrix_dup_reorder_profile() {
    run_profile_row(&ChaosProfile::dup_reorder());
}

#[test]
fn chaos_matrix_corrupt_partition_heal_profile() {
    run_profile_row(&ChaosProfile::corrupt_partition_heal());
}

#[test]
fn chaos_matrix_pass_schedule_profile() {
    // The N-pass delivery proof: under satellite-style connectivity
    // windows no single window fits a whole session (clients reach the
    // bridge in even windows, the legacy service in odd ones), yet the
    // liveness contract's completion clause holds in all 12 × {1,4}
    // cells — every session lands within the cell's horizon of a few
    // window rotations, nothing wedges, nothing cross-delivers. On top
    // of the contract, store-and-forward must have actually engaged in
    // every cell: legs parked at the closed window and were replayed on
    // a later pass, not delivered by some always-open accident.
    let profile = ChaosProfile::pass_schedule();
    if !profile_enabled(&profile) {
        eprintln!("profile {} disabled via CHAOS_PROFILES; skipping", profile.name);
        return;
    }
    let clients = matrix_clients();
    for shards in matrix_shard_counts() {
        for &case in BridgeCase::all() {
            let seed = cell_seed(case, shards, &profile);
            let run = run_chaos_cell(ChaosCell { case, shards, clients, seed }, &profile);
            assert_liveness_contract(&run, &profile, seed);
            let sf = run.stats.store_forward();
            assert!(
                sf.parked > 0 && sf.replayed > 0,
                "case {} × {shards} shards: the pass schedule never forced \
                 store-and-forward ({sf:?}) — sessions fit one window",
                case.number()
            );
        }
    }
}

#[test]
fn chaos_matrix_contended_links_profile() {
    // Shared-bandwidth contention: every cell funnels ≥50 concurrent
    // sessions over 1 MB/s fair-share links with store-and-forward
    // holding legs back above the backlog threshold. Nothing is lost,
    // only delayed, so the contract's completion clause stays on.
    run_profile_row(&ChaosProfile::contended_links());
}

#[test]
fn chaos_matrix_live_redeploy_profile() {
    // The redeploy wall: every cell drain-then-swaps its serving bridge
    // to a freshly gated v2 mid-run, under 10% loss. On top of the
    // contract (which already checks the per-version ledgers balance
    // and no counter falls across the swap), every cell must show the
    // full lifecycle actually happened: v1 retired with zero live
    // sessions, both versions served traffic, and not one datagram
    // arrived after its owner was reaped (unrouted stays zero — the
    // no-cross-version-delivery guarantee at the shard boundary).
    use starlink::core::DeployState;

    let profile = ChaosProfile::live_redeploy();
    if !profile_enabled(&profile) {
        eprintln!("profile {} disabled via CHAOS_PROFILES; skipping", profile.name);
        return;
    }
    let clients = matrix_clients();
    for shards in matrix_shard_counts() {
        for &case in BridgeCase::all() {
            let seed = cell_seed(case, shards, &profile);
            let run = run_chaos_cell(ChaosCell { case, shards, clients, seed }, &profile);
            assert_liveness_contract(&run, &profile, seed);
            let swap = run.swap.as_ref().expect("the live_redeploy profile swaps mid-run");
            assert_eq!(
                swap.old.state(),
                DeployState::Retired,
                "case {} × {shards} shards: v1 is still {} after the horizon",
                case.number(),
                swap.old.state()
            );
            let old = swap.old.stats().concurrency();
            let new = swap.new.stats().concurrency();
            assert_eq!(
                old.active,
                0,
                "case {} × {shards} shards: v1 retired with live sessions",
                case.number()
            );
            assert!(
                old.started > 0 && new.started > 0,
                "case {} × {shards} shards: one side of the swap never served \
                 (v1 started {}, v2 started {})",
                case.number(),
                old.started,
                new.started
            );
            assert_eq!(
                run.unrouted,
                0,
                "case {} × {shards} shards: datagrams arrived after their \
                 owning version was reaped",
                case.number()
            );
        }
    }
}

#[test]
fn same_seed_and_profile_replay_the_sharded_run_byte_identically() {
    // Determinism through the full multi-threaded path: two runs of the
    // same (seed, profile) produce byte-identical digests — per-client
    // outcomes, per-shard counters, error logs and the entire
    // dispatch-boundary log.
    for profile in [ChaosProfile::lossy10(), ChaosProfile::corrupt_partition_heal()] {
        let cell =
            ChaosCell { case: BridgeCase::SlpToBonjour, shards: 4, clients: 32, seed: 0xD00D };
        let first = deterministic_digest(&run_chaos_cell(cell, &profile));
        let second = deterministic_digest(&run_chaos_cell(cell, &profile));
        assert_eq!(
            first, second,
            "profile {}: sharded chaos run is not deterministic",
            profile.name
        );
        assert!(first.contains("dgram"), "digest recorded boundary traffic");
    }
}

#[test]
fn same_seed_and_profile_replay_the_simnet_trace_byte_identically() {
    // Determinism at the trace level: the single-simulation chaos runner
    // exposes the full SimNet trace, and two runs of the same
    // (seed, profile) must match byte for byte — impairment events
    // included.
    let profile = Impairments {
        drop_permille: 150,
        duplicate_permille: 150,
        reorder_permille: 200,
        reorder_window: SimDuration::from_millis(2),
        jitter: SimDuration::from_micros(300),
        corrupt_permille: 100,
        partition_permille: 20,
        partition_window: SimDuration::from_millis(5),
    };
    let stagger: Vec<u64> = (0..12).map(|i| i * 400).collect();
    for &case in BridgeCase::all() {
        let run = |_: ()| {
            let (probes, stats, trace) = run_concurrent_clients_chaos(
                case,
                0xBEEF + case.number() as u64,
                Calibration::fast(),
                &stagger,
                profile,
            );
            let replies: Vec<usize> = probes.iter().map(|p| p.results().len()).collect();
            (replies, stats.concurrency(), stats.errors(), trace)
        };
        let first = run(());
        let second = run(());
        assert_eq!(first, second, "case {}: chaos run is not deterministic", case.number());
        assert!(first.3.contains("chaos"), "case {}: the profile actually fired", case.number());
        // The liveness contract holds in the single-sim harness too.
        first.1.assert_balanced(&format!("case {} single-sim chaos", case.number()));
        assert_eq!(first.1.active, 0, "case {}: wedged sessions", case.number());
    }
}

#[test]
fn inert_impairments_change_nothing_on_the_wire() {
    // The zero-cost guarantee behind the unchanged Fig. 12 medians: with
    // the inert profile installed, every case completes exactly as the
    // pre-chaos harness did and the trace records not a single chaos
    // event (zero chaos RNG draws; the latency stream is untouched — the
    // bit-identical-replay form of this guarantee is proven in
    // `starlink-net`'s `inert_profile_changes_nothing`).
    let stagger = [0u64, 700, 1_900];
    for &case in BridgeCase::all() {
        let seed = 0xA11 + case.number() as u64;
        let (probes, stats, trace) = run_concurrent_clients_chaos(
            case,
            seed,
            Calibration::fast(),
            &stagger,
            Impairments::none(),
        );
        assert!(
            !trace.contains("chaos"),
            "case {}: impairment event under inert profile",
            case.number()
        );
        for (i, probe) in probes.iter().enumerate() {
            assert_eq!(probe.results().len(), 1, "case {} client {i}", case.number());
        }
        assert!(stats.errors().is_empty(), "case {}: {:?}", case.number(), stats.errors());
        stats.assert_consistent(&format!("case {} inert", case.number()));
    }
}

#[test]
fn inert_bandwidth_and_store_forward_change_nothing_on_the_wire() {
    // The zero-cost guarantee for the PR's new knobs, trace-level: a run
    // with the bandwidth model explicitly off, an always-open pass
    // schedule installed and a default store-and-forward policy armed
    // must produce the byte-identical `trace_text()` to the untouched
    // baseline harness — same seeds, same latency draws, zero extra RNG
    // draws, not a single transmission/window/parking event. This is
    // the regression fence keeping Fig. 12 medians (and every recorded
    // digest) stable across the bandwidth + store-and-forward layers.
    use starlink::core::{EngineConfig, StoreForward};
    use starlink::net::PassSchedule;
    use starlink_bench::run_concurrent_clients_chaos_configured;

    let stagger = [0u64, 700, 1_900];
    for &case in BridgeCase::all() {
        let seed = 0xB0A + case.number() as u64;
        let (base_probes, base_stats, base_trace) = run_concurrent_clients_chaos(
            case,
            seed,
            Calibration::fast(),
            &stagger,
            Impairments::none(),
        );
        let config = EngineConfig {
            store_forward: Some(StoreForward::default()),
            ..EngineConfig::default()
        };
        let (probes, stats, trace) = run_concurrent_clients_chaos_configured(
            case,
            seed,
            Calibration::fast(),
            &stagger,
            Impairments::none(),
            config,
            |sim| {
                sim.set_link_bandwidth(0);
                sim.set_pass_schedule(PassSchedule::always_open());
            },
        );
        assert_eq!(base_trace, trace, "case {}: inert knobs changed the wire trace", case.number());
        for marker in ["bw start", "bw done", "pass closed", "parked"] {
            assert!(
                !trace.contains(marker),
                "case {}: {marker:?} event under inert knobs",
                case.number()
            );
        }
        for (i, (base, knobbed)) in base_probes.iter().zip(&probes).enumerate() {
            assert_eq!(
                base.results().len(),
                knobbed.results().len(),
                "case {} client {i}: outcomes diverged",
                case.number()
            );
        }
        assert_eq!(stats.concurrency(), base_stats.concurrency());
        assert_eq!(
            stats.store_forward(),
            Default::default(),
            "case {}: store-and-forward counters moved on an open network",
            case.number()
        );
    }
}

#[test]
fn explicit_partition_and_heal_recovers_mid_matrix() {
    // Targeted partition scenario beyond the spontaneous-profile ones: a
    // client asks while the bridge↔service link is partitioned (its
    // session must expire), the partition heals, and a later client
    // completes normally — partition recovery leaves no residue.
    use starlink::core::{EngineConfig, Starlink};
    use starlink::net::{SimNet, SimTime};
    use starlink::protocols::{bridges, mdns, slp, DiscoveryProbe};

    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config =
        EngineConfig { idle_timeout: SimDuration::from_millis(40), ..EngineConfig::default() };
    let (engine, stats) = framework.deploy_with(bridges::slp_to_bonjour(), config).unwrap();

    let probe_a = DiscoveryProbe::new();
    let probe_b = DiscoveryProbe::new();
    let mut sim = SimNet::new(0x9A9);
    sim.partition("10.0.0.2", "10.0.0.3");
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::fast(),
        ),
    );
    sim.add_actor("10.0.1.1", slp::SlpClient::new("service:printer", probe_a.clone()));
    sim.run_until(SimTime::from_millis(100));
    assert!(probe_a.is_empty(), "partitioned client cannot have completed");
    assert_eq!(stats.concurrency().expired, 1, "partitioned session was reaped");

    sim.heal_partition("10.0.0.2", "10.0.0.3");
    sim.add_actor("10.0.1.2", slp::SlpClient::new("service:printer", probe_b.clone()));
    sim.run_until_idle();
    assert_eq!(
        probe_b.results().len(),
        1,
        "post-heal client completes; errors: {:?}",
        stats.errors()
    );
    stats.assert_consistent("partition heal recovery");
    assert!(sim.trace_text().contains("chaos partition drop"));
}

#[test]
fn cached_answers_expire_on_ttl() {
    // The calibration-row TTL is enforced in virtual time: a duplicate
    // inside the window is served from the cache, one after it pays a
    // full translation again and the swept entry lands in the
    // expiration counter.
    use starlink::core::{EngineConfig, Starlink};
    use starlink::net::{DelayedActor, SimNet, SimTime};
    use starlink::protocols::{bridges, mdns, slp, DiscoveryProbe};

    let case = BridgeCase::SlpToBonjour;
    let ttl = case.answer_ttl(&Calibration::fast());
    assert_eq!(ttl, SimDuration::from_millis(50), "fast calibration answer TTL");

    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config = EngineConfig {
        correlator: Some(std::sync::Arc::new(bridges::default_correlator())),
        answer_ttl: Some(ttl),
        ..EngineConfig::default()
    };
    let (engine, stats) = framework.deploy_with(bridges::slp_to_bonjour(), config).unwrap();
    assert!(engine.is_fused(), "case 2 runs the fused path");

    let probe_a = DiscoveryProbe::new();
    let probe_b = DiscoveryProbe::new();
    let probe_c = DiscoveryProbe::new();
    let mut sim = SimNet::new(0x77A);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::fast(),
        ),
    );
    // Three duplicates of the same query, spread across virtual time:
    // at 0 (populates), at 10ms (inside the 50ms TTL), at 70ms (past
    // it). The delays are real scheduled events, so the virtual clock
    // actually crosses the TTL boundary between the second and third.
    sim.add_actor("10.0.1.1", slp::SlpClient::new("service:printer", probe_a.clone()));
    sim.add_actor(
        "10.0.1.2",
        DelayedActor::new(
            SimDuration::from_millis(10),
            slp::SlpClient::new("service:printer", probe_b.clone()),
        ),
    );
    sim.add_actor(
        "10.0.1.3",
        DelayedActor::new(
            SimDuration::from_millis(70),
            slp::SlpClient::new("service:printer", probe_c.clone()),
        ),
    );

    sim.run_until(SimTime::from_millis(9));
    assert_eq!(probe_a.results().len(), 1, "first client completes normally");
    let cache = stats.cache();
    assert_eq!(
        (cache.hits, cache.misses, cache.insertions, cache.expirations),
        (0, 1, 1, 0),
        "first exchange misses and populates the cache"
    );

    // The duplicate inside the TTL window is a hit.
    sim.run_until(SimTime::from_millis(30));
    assert_eq!(probe_b.results().len(), 1, "duplicate inside the TTL completes");
    let cache = stats.cache();
    assert_eq!((cache.hits, cache.expirations), (1, 0), "in-window duplicate hits");

    // Past the TTL the entry is expired, not served: the third client
    // pays a full translation and re-populates the cache.
    sim.run_until_idle();
    assert_eq!(probe_c.results().len(), 1, "post-TTL client completes via full translation");
    let cache = stats.cache();
    assert_eq!(cache.hits, 1, "the stale entry was not served");
    assert_eq!(cache.expirations, 1, "the lapsed entry was counted expired");
    assert_eq!(cache.misses, 2, "first and post-TTL queries both missed");
    assert_eq!(cache.insertions, 2, "the post-TTL exchange re-populated the cache");
    stats.assert_consistent("cache TTL expiry");
}

#[test]
fn cached_answers_are_not_served_across_an_active_partition() {
    // Cached replies go through the same simulated links as everything
    // else: a client behind an active partition gets nothing (and no
    // hit is recorded), while a backend-side partition does not stop
    // the cache from serving duplicates — that staleness is exactly
    // what the TTL bounds.
    use starlink::core::{EngineConfig, Starlink};
    use starlink::net::{SimNet, SimTime};
    use starlink::protocols::{bridges, mdns, slp, DiscoveryProbe};

    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config = EngineConfig {
        correlator: Some(std::sync::Arc::new(bridges::default_correlator())),
        // A TTL comfortably longer than the scenario, so every miss or
        // absent reply below is attributable to the partition alone.
        answer_ttl: Some(SimDuration::from_millis(500)),
        ..EngineConfig::default()
    };
    let (engine, stats) = framework.deploy_with(bridges::slp_to_bonjour(), config).unwrap();

    let probe_a = DiscoveryProbe::new();
    let probe_b = DiscoveryProbe::new();
    let probe_c = DiscoveryProbe::new();
    let probe_d = DiscoveryProbe::new();
    let mut sim = SimNet::new(0x9B7);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::fast(),
        ),
    );
    sim.add_actor("10.0.1.1", slp::SlpClient::new("service:printer", probe_a.clone()));
    sim.run_until(SimTime::from_millis(10));
    assert_eq!(probe_a.results().len(), 1, "cache populated by a normal exchange");
    assert_eq!(stats.cache().insertions, 1);

    // Bridge ↔ legacy service partitioned: a duplicate is still served
    // from the shard-local cache without touching the backend.
    sim.partition("10.0.0.2", "10.0.0.3");
    sim.add_actor("10.0.1.2", slp::SlpClient::new("service:printer", probe_b.clone()));
    sim.run_until(SimTime::from_millis(20));
    assert_eq!(probe_b.results().len(), 1, "backend partition does not block cached replies");
    assert_eq!(stats.cache().hits, 1);

    // Bridge ↔ client partitioned: the duplicate query never reaches
    // the engine, so no cached reply crosses the partition and no hit
    // is recorded.
    sim.partition("10.0.0.2", "10.0.1.3");
    sim.add_actor("10.0.1.3", slp::SlpClient::new("service:printer", probe_c.clone()));
    sim.run_until(SimTime::from_millis(40));
    assert!(probe_c.is_empty(), "no cached reply crossed the active partition");
    assert_eq!(stats.cache().hits, 1, "no hit recorded for the partitioned client");
    assert!(sim.trace_text().contains("chaos partition drop"), "the partition actually dropped");

    // After healing, a fresh duplicate is served from the cache again.
    sim.heal_partition("10.0.0.2", "10.0.1.3");
    sim.add_actor("10.0.1.4", slp::SlpClient::new("service:printer", probe_d.clone()));
    sim.run_until_idle();
    assert_eq!(probe_d.results().len(), 1, "post-heal duplicate completes");
    assert_eq!(stats.cache().hits, 2, "post-heal duplicate served from the cache");
    stats.assert_consistent("cache vs partition");
}

/// Replays one matrix cell from environment variables — the target of
/// the repro command a failing cell prints. A no-op unless `CHAOS_CASE`
/// is set, so the plain test run is unaffected.
#[test]
fn repro_cell() {
    let Ok(case_var) = std::env::var("CHAOS_CASE") else { return };
    let case_number: usize = case_var.parse().expect("CHAOS_CASE is a case number 1-12");
    let case = *BridgeCase::all()
        .iter()
        .find(|c| c.number() == case_number)
        .unwrap_or_else(|| panic!("no bridge case {case_number}"));
    let profile_name = std::env::var("CHAOS_PROFILE").expect("CHAOS_PROFILE set");
    let mut profile = ChaosProfile::by_name(&profile_name)
        .unwrap_or_else(|| panic!("unknown profile {profile_name:?}"));
    let seed: u64 = std::env::var("CHAOS_SEED").expect("CHAOS_SEED set").parse().unwrap();
    let shards = matrix_shard_counts()[0];
    let clients = matrix_clients();

    // Per-knob overrides on top of the named profile, for bisecting a
    // failing cell down to one knob. Each one round-trips through the
    // same field `run_chaos_cell` installs; a typo'd value panics in
    // `env_u64` rather than silently reproducing a different cell.
    if let Some(bandwidth) = env_u64("CHAOS_BANDWIDTH") {
        profile.link_bandwidth = bandwidth;
    }
    if let Some(window_ms) = env_u64("CHAOS_PASS_WINDOW_MS") {
        profile.pass_window = SimDuration::from_millis(window_ms);
    }
    if let Some(slots) = env_u64("CHAOS_PASS_SLOTS") {
        profile.pass_slots = slots.try_into().expect("CHAOS_PASS_SLOTS fits in u32");
    }
    if let Some(bound) = env_u64("CHAOS_QUEUE_BOUND") {
        let mut policy = profile.store_forward.unwrap_or_default();
        policy.queue_bound = bound as usize;
        profile.store_forward = Some(policy);
    }
    if let Some(retry_ms) = env_u64("CHAOS_CLIENT_RETRY_MS") {
        profile.client_retry_ms = retry_ms;
    }

    let run = run_chaos_cell(ChaosCell { case, shards, clients, seed }, &profile);
    println!("{}", deterministic_digest(&run));
    assert_liveness_contract(&run, &profile, seed);
    println!(
        "cell OK: case {} profile {} seed {seed} shards {shards} clients {clients}\n\
         effective knobs: {profile:?}",
        case.number(),
        profile.name
    );
}
