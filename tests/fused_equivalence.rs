//! Differential conformance for the fused fast path: for every bridge
//! that compiles to a [`FusedPlan`], the bytes on the wire — the
//! translated request the bridge multicasts at the target protocol and
//! the reply it unicasts back to the legacy client — must be **byte
//! identical** to what the interpreted engine produces for the same
//! inputs. The interpreted path is ground truth; fusion is pure
//! mechanical sympathy and must never be observable.
//!
//! Three layers of checks:
//!
//! 1. the static fusability matrix (`BridgeCase::fusable`) matches the
//!    engine's actual plan-compile outcome for all 12 cases;
//! 2. a deterministic sweep of every fusable case;
//! 3. a property test drawing random query fields (ids, service labels,
//!    service URLs) for random fusable cases — failures dump the case
//!    and a hex diff of the first divergent datagram.

use proptest::prelude::*;
use starlink::core::{EngineConfig, Starlink};
use starlink::net::{Actor, Context, Datagram, SimAddr, SimDuration, SimNet};
use starlink::protocols::{
    bridges::{self, BridgeCase, Family},
    mdns, slp, wsd,
};
use std::sync::{Arc, Mutex};

const CLIENT: &str = "10.0.0.1";
const BRIDGE: &str = "10.0.0.2";
const SERVICE: &str = "10.0.0.3";
const SNIFFER: &str = "10.0.0.7";
const CLIENT_PORT: u16 = 40_000;

/// Every datagram of interest, in simulation order: the bridge's
/// translated requests (sniffed off the target multicast group), the
/// raw requests the service saw, and the replies the client received.
type WireLog = Arc<Mutex<Vec<(&'static str, Vec<u8>)>>>;

fn group_of(family: Family) -> SimAddr {
    match family {
        Family::Slp => SimAddr::new(slp::SLP_GROUP, slp::SLP_PORT),
        Family::Bonjour => SimAddr::new(mdns::MDNS_GROUP, mdns::MDNS_PORT),
        Family::Wsd => SimAddr::new(wsd::WSD_GROUP, wsd::WSD_PORT),
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    }
}

/// A native query for `family` with caller-chosen correlation id and
/// service label, built with the legacy wire encoders.
fn build_query(family: Family, id: u64, label: &str) -> Vec<u8> {
    match family {
        Family::Slp => slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(
            id as u16,
            format!("service:{label}"),
        ))),
        Family::Bonjour => mdns::encode(&mdns::DnsMessage::Question(mdns::DnsQuestion::new(
            id as u16,
            format!("_{label}._tcp.local"),
        )))
        .expect("question encodes"),
        Family::Wsd => {
            wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(id, format!("dn:{label}"))))
        }
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    }
}

/// Sends each query on its own timer tick and records every reply.
struct QueryClient {
    queries: Vec<Vec<u8>>,
    group: SimAddr,
    log: WireLog,
}

impl Actor for QueryClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(CLIENT_PORT).expect("client port free");
        for i in 0..self.queries.len() {
            ctx.set_timer(SimDuration::from_millis(40 * i as u64), i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        let query = &self.queries[tag as usize];
        ctx.udp_send(CLIENT_PORT, self.group.clone(), &query[..]);
    }

    fn on_datagram(&mut self, _ctx: &mut Context<'_>, datagram: Datagram) {
        self.log.lock().unwrap().push(("client-rx", datagram.payload.to_vec()));
    }
}

/// A promiscuous legacy service: answers *any* request of its family,
/// echoing the correlation id and name so randomized queries still get
/// full round trips.
struct EchoService {
    family: Family,
    url: String,
    log: WireLog,
}

impl Actor for EchoService {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let group = group_of(self.family);
        ctx.bind_udp(group.port).expect("service port free");
        ctx.join_group(group);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        self.log.lock().unwrap().push(("service-rx", datagram.payload.to_vec()));
        let reply = match self.family {
            Family::Slp => match slp::decode(&datagram.payload) {
                Ok(slp::SlpMessage::SrvRqst(rqst)) => {
                    slp::encode(&slp::SlpMessage::SrvRply(slp::SrvRply::new(rqst.xid, &self.url)))
                }
                _ => return,
            },
            Family::Bonjour => match mdns::decode(&datagram.payload) {
                Ok(mdns::DnsMessage::Question(q)) => mdns::encode(&mdns::DnsMessage::Response(
                    mdns::DnsResponse::new(q.id, q.qname, &self.url),
                ))
                .expect("response encodes"),
                _ => return,
            },
            Family::Wsd => match wsd::decode(&datagram.payload) {
                Ok(wsd::WsdMessage::Probe(p)) => {
                    wsd::encode(&wsd::WsdMessage::ProbeMatch(wsd::WsdProbeMatch::new(
                        wsd::probe_uuid(0xfeed),
                        p.message_id,
                        p.types,
                        &self.url,
                    )))
                }
                _ => return,
            },
            Family::Upnp => unreachable!("no fusable case touches UPnP"),
        };
        let port = group_of(self.family).port;
        ctx.udp_send(port, datagram.from, reply);
    }
}

/// Joins the target multicast group and records whatever the bridge
/// sends there — the translated-request leg of the exchange.
struct Sniffer {
    group: SimAddr,
    log: WireLog,
}

impl Actor for Sniffer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.join_group(self.group.clone());
    }

    fn on_datagram(&mut self, _ctx: &mut Context<'_>, datagram: Datagram) {
        self.log.lock().unwrap().push(("bridge-tx", datagram.payload.to_vec()));
    }
}

/// One full simulated discovery run; returns the ordered wire log and
/// whether the engine took the fused path.
fn run_wire(
    case: BridgeCase,
    seed: u64,
    queries: &[(u64, String)],
    url: &str,
    force_interpreted: bool,
    answer_ttl: Option<SimDuration>,
) -> (Vec<(&'static str, Vec<u8>)>, bool) {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let config = EngineConfig {
        correlator: Some(Arc::new(bridges::default_correlator())),
        force_interpreted,
        answer_ttl,
        ..EngineConfig::default()
    };
    let (engine, stats) = framework.deploy_with(case.build(BRIDGE), config).expect("deploys");
    let fused = engine.is_fused();

    let log: WireLog = Arc::default();
    let mut sim = SimNet::new(seed);
    sim.add_actor(BRIDGE, engine);
    sim.add_actor(
        SERVICE,
        EchoService { family: case.target(), url: url.to_owned(), log: log.clone() },
    );
    sim.add_actor(
        CLIENT,
        QueryClient {
            queries: queries
                .iter()
                .map(|(id, label)| build_query(case.source(), *id, label))
                .collect(),
            group: group_of(case.source()),
            log: log.clone(),
        },
    );
    sim.add_actor(SNIFFER, Sniffer { group: group_of(case.target()), log: log.clone() });
    sim.run_until_idle();
    stats.assert_consistent(&format!("case {} wire run", case.number()));
    let log = log.lock().unwrap().clone();
    (log, fused)
}

/// A side-by-side hex dump of the first divergent datagram.
fn hex_diff(label: &str, fused: &[u8], interpreted: &[u8]) -> String {
    let mut out =
        format!("{label}: fused {} bytes, interpreted {} bytes\n", fused.len(), interpreted.len());
    let width = fused.len().max(interpreted.len());
    for offset in (0..width).step_by(16) {
        let row = |bytes: &[u8]| -> String {
            (offset..(offset + 16).min(bytes.len())).map(|i| format!("{:02x} ", bytes[i])).collect()
        };
        let (f, i) = (row(fused), row(interpreted));
        let marker = if f == i { ' ' } else { '!' };
        out.push_str(&format!("{marker} {offset:04x}  fused: {f:<48}  interp: {i}\n"));
    }
    out
}

/// Asserts two wire logs are identical, dumping the case and a hex diff
/// of the first divergence otherwise.
fn assert_same_wire(
    case: BridgeCase,
    fused: &[(&'static str, Vec<u8>)],
    interpreted: &[(&'static str, Vec<u8>)],
) -> Result<(), String> {
    if fused.len() != interpreted.len() {
        return Err(format!(
            "case {} ({}): fused log has {} datagrams, interpreted {}\nfused: {:?}\ninterpreted: {:?}",
            case.number(),
            case.name(),
            fused.len(),
            interpreted.len(),
            fused.iter().map(|(l, b)| format!("{l}:{}", b.len())).collect::<Vec<_>>(),
            interpreted.iter().map(|(l, b)| format!("{l}:{}", b.len())).collect::<Vec<_>>(),
        ));
    }
    for (index, ((fl, fb), (il, ib))) in fused.iter().zip(interpreted).enumerate() {
        if fl != il || fb != ib {
            return Err(format!(
                "case {} ({}): datagram #{index} diverges\n{}",
                case.number(),
                case.name(),
                hex_diff(&format!("fused={fl} interpreted={il}"), fb, ib)
            ));
        }
    }
    Ok(())
}

/// The static matrix must match what the plan compiler actually decides:
/// the two-part UDP cases fuse, every UPnP chain stays interpreted.
#[test]
fn fusability_matrix_matches_engine() {
    for &case in BridgeCase::all() {
        let mut framework = Starlink::new();
        bridges::load_all_mdls(&mut framework).expect("models load");
        let config = EngineConfig {
            correlator: Some(Arc::new(bridges::default_correlator())),
            ..EngineConfig::default()
        };
        let (engine, _) = framework.deploy_with(case.build(BRIDGE), config).expect("deploys");
        assert_eq!(
            engine.is_fused(),
            case.fusable(),
            "case {} ({}): expected fusable={}, engine said {} (reason: {:?})",
            case.number(),
            case.name(),
            case.fusable(),
            engine.is_fused(),
            engine.fused_reject_reason(),
        );
    }
    // And the matrix has the expected shape: exactly the six non-UPnP
    // pairs fuse.
    assert_eq!(BridgeCase::all().iter().filter(|c| c.fusable()).count(), 6);
}

/// `force_interpreted` must actually pin the engine to the slow path —
/// the differential below is meaningless otherwise.
#[test]
fn force_interpreted_pins_the_slow_path() {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let config = EngineConfig { force_interpreted: true, ..EngineConfig::default() };
    let (engine, _) =
        framework.deploy_with(BridgeCase::SlpToBonjour.build(BRIDGE), config).expect("deploys");
    assert!(!engine.is_fused());
    assert!(engine.fused_reject_reason().is_some());
}

/// Deterministic sweep: every fusable case, three sequential sessions
/// with distinct ids, fused bytes == interpreted bytes.
#[test]
fn fused_wire_matches_interpreted_all_cases() {
    let queries: Vec<(u64, String)> =
        vec![(7, "printer".into()), (1042, "scanner".into()), (65_000, "camera".into())];
    for &case in BridgeCase::all().iter().filter(|c| c.fusable()) {
        let url = "service:printer://10.0.0.3:631";
        let (fused_log, took_fast_path) = run_wire(case, 4242, &queries, url, false, None);
        let (interp_log, _) = run_wire(case, 4242, &queries, url, true, None);
        assert!(took_fast_path, "case {} should fuse", case.number());
        assert!(
            fused_log.iter().any(|(l, _)| *l == "client-rx"),
            "case {}: client never heard back",
            case.number()
        );
        if let Err(diff) = assert_same_wire(case, &fused_log, &interp_log) {
            panic!("{diff}");
        }
    }
}

/// With the answer cache on, a duplicate query (same service type, new
/// correlation id) is served from cache — and the served bytes must
/// *still* equal what the interpreted engine computes end-to-end,
/// because the cached answer is re-personalized with the fresh id.
#[test]
fn cached_replay_matches_interpreted_recompute() {
    let queries: Vec<(u64, String)> =
        vec![(11, "printer".into()), (12, "printer".into()), (13, "printer".into())];
    let ttl = Some(SimDuration::from_secs(60));
    for &case in BridgeCase::all().iter().filter(|c| c.fusable()) {
        let url = "service:printer://10.0.0.3:631";
        let (fused_log, _) = run_wire(case, 7777, &queries, url, false, ttl);
        let (interp_log, _) = run_wire(case, 7777, &queries, url, true, None);
        // Cache hits suppress the bridge-tx + service-rx legs (no
        // re-translation happens), so compare only what the legacy
        // client observes — which is the transparency contract.
        let client = |log: &[(&'static str, Vec<u8>)]| -> Vec<Vec<u8>> {
            log.iter().filter(|(l, _)| *l == "client-rx").map(|(_, b)| b.clone()).collect()
        };
        let (fused_rx, interp_rx) = (client(&fused_log), client(&interp_log));
        assert_eq!(
            fused_rx.len(),
            interp_rx.len(),
            "case {}: reply counts diverge with cache on",
            case.number()
        );
        for (index, (f, i)) in fused_rx.iter().zip(&interp_rx).enumerate() {
            assert!(
                f == i,
                "case {} ({}): cached reply #{index} diverges\n{}",
                case.number(),
                case.name(),
                hex_diff("cached vs interpreted", f, i)
            );
        }
    }
}

proptest! {
    /// Randomized differential: any fusable case, 1–4 queries with
    /// random ids and service labels, a random service URL — the fused
    /// and interpreted engines must emit identical bytes everywhere.
    #[test]
    fn fused_wire_matches_interpreted_randomized(
        seed in 0u64..100_000,
        case_index in 0usize..6,
        ids in prop::collection::vec(0u64..65_536, 1..4),
        label in "[a-z]{1,8}",
        host in 1u8..250,
    ) {
        let case = *BridgeCase::all()
            .iter()
            .filter(|c| c.fusable())
            .nth(case_index)
            .expect("six fusable cases");
        // Distinct ids per query: duplicate ids are a correlation
        // collision, legitimately dropped by both paths but with
        // timing-dependent logs.
        let mut queries: Vec<(u64, String)> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            let id = (id + i as u64 * 70_000) % 16_000_000;
            queries.push((id, label.clone()));
        }
        let url = format!("service:{label}://10.0.0.{host}:631");
        let (fused_log, took_fast_path) = run_wire(case, seed, &queries, &url, false, None);
        let (interp_log, _) = run_wire(case, seed, &queries, &url, true, None);
        prop_assert!(took_fast_path, "case {} should fuse", case.number());
        if let Err(diff) = assert_same_wire(case, &fused_log, &interp_log) {
            return Err(TestCaseError::fail(diff));
        }
    }
}
