//! The multi-session runtime: a bridge is a mediating connector serving
//! *many simultaneous interaction pairs*. These tests interleave
//! concurrent legacy clients over every bridge case and assert that each
//! one completes its own session with correct reply addressing, that a
//! failed session is torn down instead of wedging the bridge, and that
//! idle sessions expire.

use starlink::automata::{Assignment, Delta, MergedAutomaton, ValueSource};
use starlink::core::{BridgeStats, EngineConfig, ShardInput, ShardedBridge, Starlink};
use starlink::net::{
    Actor, Bytes, Context, Datagram, DelayedActor, SimAddr, SimDuration, SimNet, SimTime,
};
use starlink::protocols::{
    bridges::{self, BridgeCase},
    mdns, slp, upnp, wsd, Calibration, DiscoveryProbe,
};
use starlink_bench::{
    expected_discovery_url as expected_url, run_concurrent_clients_with, run_sharded_case,
    ShardedWorkload,
};
use std::sync::Arc;

const BRIDGE: &str = "10.0.0.2";
const SERVICE: &str = "10.0.0.3";

const SLP_TYPE: &str = "service:printer";
const UPNP_TYPE: &str = "urn:schemas-upnp-org:service:printer:1";
const DNS_TYPE: &str = "_printer._tcp.local";
const SERVICE_URL: &str = "service:printer://10.0.0.3:631";

/// Runs `clients` interleaved legacy clients of the case's source
/// protocol against one bridge + one target service (client `i` starts
/// after `stagger_us[i % len]` µs so datagrams of different sessions
/// genuinely interleave mid-session), via the shared harness in
/// `starlink-bench`.
fn run_interleaved(
    case: BridgeCase,
    clients: usize,
    seed: u64,
    stagger_us: &[u64],
) -> (Vec<DiscoveryProbe>, BridgeStats) {
    let stagger: Vec<u64> = (0..clients).map(|i| stagger_us[i % stagger_us.len()]).collect();
    run_concurrent_clients_with(case, seed, Calibration::fast(), &stagger)
}

#[test]
fn two_clients_interleaving_mid_session_stay_isolated_in_all_cases() {
    // The second client's request arrives while the first session is
    // mid-exchange (fast service delays are 1–6 ms; the stagger is well
    // inside that): before the session table, that datagram landed in
    // the first client's execution and clobbered its reply address.
    for &case in BridgeCase::all() {
        let (probes, stats) = run_interleaved(case, 2, 400 + case.number() as u64, &[0, 900]);
        for (i, probe) in probes.iter().enumerate() {
            let results = probe.results();
            assert_eq!(
                results.len(),
                1,
                "case {} client {i}: expected exactly one reply, got {results:?}; errors: {:?}",
                case.number(),
                stats.errors()
            );
            assert_eq!(results[0].url, expected_url(case), "case {} client {i}", case.number());
        }
        assert_eq!(stats.session_count(), 2, "case {}", case.number());
        assert!(
            stats.errors().is_empty(),
            "case {}: bridge errors {:?}",
            case.number(),
            stats.errors()
        );
        let c = stats.concurrency();
        assert_eq!((c.started, c.completed, c.active), (2, 2, 0), "case {}", case.number());
        stats.assert_consistent(&format!("case {}", case.number()));
    }
}

#[test]
fn hundred_interleaved_clients_complete_hundred_distinct_sessions_per_case() {
    // The acceptance scenario: 100 clients whose sessions overlap
    // heavily; every reply must return to its own originator, and the
    // concurrency gauge must actually see many live sessions at once.
    let stagger: Vec<u64> = (0..20).map(|i| i * 250).collect();
    for &case in BridgeCase::all() {
        let (probes, stats) = run_interleaved(case, 100, 500 + case.number() as u64, &stagger);
        let mut completed = 0usize;
        for (i, probe) in probes.iter().enumerate() {
            let results = probe.results();
            assert_eq!(
                results.len(),
                1,
                "case {} client {i}: {} replies; errors: {:?}",
                case.number(),
                results.len(),
                stats.errors()
            );
            assert_eq!(results[0].url, expected_url(case), "case {} client {i}", case.number());
            completed += 1;
        }
        assert_eq!(completed, 100);
        assert_eq!(stats.session_count(), 100, "case {}", case.number());
        assert!(
            stats.errors().is_empty(),
            "case {}: bridge errors {:?}",
            case.number(),
            stats.errors()
        );
        let c = stats.concurrency();
        assert_eq!((c.started, c.completed), (100, 100), "case {}", case.number());
        assert_eq!(c.active, 0, "case {}", case.number());
        assert!(
            c.peak_active >= 10,
            "case {}: sessions did not overlap (peak {})",
            case.number(),
            c.peak_active
        );
        stats.assert_consistent(&format!("case {}", case.number()));
    }
}

#[test]
fn hundred_clients_through_1_2_4_8_shards_stay_isolated_in_all_cases() {
    // The sharded acceptance scenario: the same 100-client interleavings
    // the single-engine test runs, but through the multi-threaded
    // ShardedBridge at every shard count. Every reply must reach its own
    // originator carrying its own transaction id, on every shard layout.
    for &shards in &[1usize, 2, 4, 8] {
        for &case in BridgeCase::all() {
            let mut workload = ShardedWorkload::new(shards, 100);
            workload.seed = 0x700 + shards as u64 * 0x10 + case.number() as u64;
            workload.wave = 32;
            let run = run_sharded_case(case, workload);
            run.assert_isolated();
            // Session pinning really spread the load: with 100 distinct
            // client hosts, every shard served some sessions, and the
            // per-shard counts add up to the whole.
            let per_shard: Vec<usize> =
                (0..shards).map(|s| run.stats.shard(s).session_count()).collect();
            assert_eq!(per_shard.iter().sum::<usize>(), 100, "case {}", case.number());
            assert!(
                per_shard.iter().all(|&count| count > 0),
                "case {} shards {shards}: a shard sat idle: {per_shard:?}",
                case.number()
            );
        }
    }
}

#[test]
fn sharded_sessions_overlap_within_shards() {
    // Depth check for the gauge: with waves deeper than the shard count,
    // the shared atomic gauge must observe real cross-shard concurrency.
    let mut workload = ShardedWorkload::new(4, 64);
    workload.wave = 64;
    let run = run_sharded_case(BridgeCase::SlpToBonjour, workload);
    run.assert_isolated();
    let c = run.stats.concurrency();
    assert_eq!(c.started, 64);
    assert!(c.peak_active >= 8, "no overlap across the fleet (peak {})", c.peak_active);
}

#[test]
fn idle_sessions_expire_independently_on_every_shard() {
    // Four shards, no responder anywhere: every session stalls after its
    // question and must be reaped by its own shard's idle-expiry timer —
    // sharding must not silently disable (or cross-wire) expiry.
    const CLIENTS: usize = 12;
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config =
        EngineConfig { idle_timeout: SimDuration::from_millis(50), ..EngineConfig::default() };
    let (engines, stats) = framework.deploy_sharded(bridges::slp_to_bonjour(), config, 4).unwrap();
    let mut bridge = ShardedBridge::launch(0x701, BRIDGE, engines, |_, _| {});

    let mut expected_per_shard = [0u64; 4];
    let inputs: Vec<ShardInput> = (0..CLIENTS)
        .map(|i| {
            let host = format!("10.30.0.{}", i + 1);
            expected_per_shard[bridge.shard_of(&host)] += 1;
            let wire = slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(
                i as u16,
                "service:printer",
            )));
            ShardInput::Datagram(Datagram {
                from: SimAddr::new(host, 41_000),
                to: SimAddr::new(BRIDGE, slp::SLP_PORT),
                payload: Bytes::copy_from_slice(&wire),
            })
        })
        .collect();
    bridge.dispatch(SimTime::from_millis(1), inputs);
    bridge.flush();
    assert_eq!(stats.concurrency().started, CLIENTS as u64);
    assert_eq!(stats.concurrency().expired, 0, "nothing may expire before the timeout");

    // Advance every shard's virtual clock well past the idle timeout.
    bridge.advance(SimTime::from_millis(500));
    bridge.flush();
    let c = stats.concurrency();
    assert_eq!(c.expired, CLIENTS as u64, "every stalled session was reaped");
    assert_eq!(c.active, 0);
    for (shard, &expected) in expected_per_shard.iter().enumerate() {
        assert_eq!(
            stats.shard(shard).concurrency().expired,
            expected,
            "shard {shard} reaped exactly its own pinned sessions"
        );
    }
    stats.assert_consistent("per-shard idle expiry");
}

/// The SLP→Bonjour bridge with its `DNS_Question.QName` assignment
/// removed: the dynamic ⊨ check refuses to compose the question, which
/// used to leave the singleton engine stuck mid-session forever.
fn broken_slp_to_bonjour() -> MergedAutomaton {
    let lit = |v: &str| ValueSource::literal(v);
    MergedAutomaton::builder("broken-slp-to-bonjour")
        .part(slp::service_automaton())
        .part(mdns::client_automaton())
        .equivalence("DNS_Question", &["SLPSrvRequest"])
        .equivalence("SLPSrvReply", &["DNS_Response"])
        .delta(
            // QName deliberately unassigned.
            Delta::new("SLP:s1", "DNS:s0")
                .assignment(Assignment::new(
                    "DNS_Question",
                    "ID",
                    ValueSource::field("SLPSrvRequest", "XID"),
                ))
                .assignment(Assignment::new("DNS_Question", "QDCount", ValueSource::literal(1u64)))
                .assignment(Assignment::new("DNS_Question", "QType", ValueSource::literal(12u64)))
                .assignment(Assignment::new("DNS_Question", "QClass", ValueSource::literal(1u64))),
        )
        .delta(
            Delta::new("DNS:s2", "SLP:s1")
                .assignment(Assignment::new(
                    "SLPSrvReply",
                    "URLEntry",
                    ValueSource::field("DNS_Response", "RData"),
                ))
                .assignment(Assignment::new(
                    "SLPSrvReply",
                    "XID",
                    ValueSource::field("SLPSrvRequest", "XID"),
                ))
                .assignment(Assignment::new("SLPSrvReply", "LangTag", lit("en")))
                .assignment(Assignment::new("SLPSrvReply", "Version", ValueSource::literal(2u64)))
                .assignment(Assignment::new(
                    "SLPSrvReply",
                    "LifeTime",
                    ValueSource::literal(60u64),
                )),
        )
        .build()
        .expect("broken bridge still satisfies the merge constraints")
}

#[test]
fn wedge_regression_compose_failure_tears_down_the_session_not_the_bridge() {
    // Before the session table, pump_sends early-returned on a ⊨/compose
    // error, leaving the single execution stuck: the next client's
    // request was dropped with "no receive transition" and the bridge
    // was wedged until restart. Now each failure condemns only its own
    // session.
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let (engine, stats) = framework.deploy(broken_slp_to_bonjour()).unwrap();

    let mut sim = SimNet::new(600);
    sim.add_actor(BRIDGE, engine);
    sim.add_actor(SERVICE, mdns::BonjourService::new(DNS_TYPE, SERVICE_URL, Calibration::fast()));
    let probe_a = DiscoveryProbe::new();
    let probe_b = DiscoveryProbe::new();
    sim.add_actor("10.0.1.1", slp::SlpClient::new(SLP_TYPE, probe_a.clone()));
    sim.add_actor(
        "10.0.1.2",
        DelayedActor::new(
            SimDuration::from_millis(2),
            slp::SlpClient::new(SLP_TYPE, probe_b.clone()),
        ),
    );
    sim.run_until_idle();

    let c = stats.concurrency();
    assert_eq!(c.started, 2, "both clients opened their own session");
    assert_eq!(c.failed, 2, "both sessions failed independently and were torn down");
    assert_eq!(c.active, 0, "nothing left wedged in the table");
    let errors = stats.errors();
    assert_eq!(errors.len(), 2, "one ⊨ violation per session: {errors:?}");
    assert!(
        errors.iter().all(|e| e.contains("⊨ violation")),
        "the second client must hit its own compose error, not a wedged \
         execution's 'no receive transition': {errors:?}"
    );
    assert!(probe_a.is_empty() && probe_b.is_empty());
    stats.assert_consistent("wedge regression");
}

#[test]
fn expired_session_is_reaped_and_a_later_client_succeeds() {
    // Client A asks while no responder exists: its session can never
    // finish and is expired by the idle timeout. A later client (after a
    // responder appeared) completes normally — before the session table
    // the stuck execution swallowed B's request forever.
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config =
        EngineConfig { idle_timeout: SimDuration::from_millis(50), ..EngineConfig::default() };
    let (engine, stats) = framework.deploy_with(bridges::slp_to_bonjour(), config).unwrap();

    let probe_a = DiscoveryProbe::new();
    let probe_b = DiscoveryProbe::new();
    let mut sim = SimNet::new(601);
    sim.add_actor(BRIDGE, engine);
    sim.add_actor("10.0.1.1", slp::SlpClient::new(SLP_TYPE, probe_a.clone()));
    sim.run_until(starlink::net::SimTime::from_millis(80));

    sim.add_actor(SERVICE, mdns::BonjourService::new(DNS_TYPE, SERVICE_URL, Calibration::fast()));
    sim.add_actor("10.0.1.2", slp::SlpClient::new(SLP_TYPE, probe_b.clone()));
    sim.run_until_idle();

    let c = stats.concurrency();
    assert_eq!(c.expired, 1, "client A's session was reaped by the idle timer");
    assert_eq!(c.completed, 1, "client B completed after the expiry");
    assert_eq!(c.active, 0);
    assert!(probe_a.is_empty(), "no fabricated reply for A");
    assert_eq!(probe_b.results().len(), 1);
    assert_eq!(probe_b.first().unwrap().url, SERVICE_URL);
    stats.assert_consistent("expiry then success");
}

#[test]
fn rejected_duplicate_does_not_hijack_the_reply_address() {
    // With XID correlation, a duplicate of client A's request arriving
    // from a *different host* routes to A's session but is rejected by
    // the execution (A's session is already awaiting the target-side
    // response). The reply address must stay A's — a rejected message
    // must never redirect where the final reply goes.
    struct Spoofer;
    impl Actor for Spoofer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(40_200).unwrap();
            // Same XID as SlpClient's hardcoded 0x1234.
            let rqst = slp::SrvRqst::new(0x1234, SLP_TYPE);
            let wire = slp::encode(&slp::SlpMessage::SrvRqst(rqst));
            ctx.udp_send(40_200, SimAddr::new(slp::SLP_GROUP, slp::SLP_PORT), wire);
        }
    }

    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config = EngineConfig {
        correlator: Some(Arc::new(bridges::default_correlator())),
        ..EngineConfig::default()
    };
    let (engine, stats) = framework.deploy_with(bridges::slp_to_bonjour(), config).unwrap();

    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(603);
    sim.add_actor(BRIDGE, engine);
    sim.add_actor(SERVICE, mdns::BonjourService::new(DNS_TYPE, SERVICE_URL, Calibration::fast()));
    sim.add_actor("10.0.1.1", slp::SlpClient::new(SLP_TYPE, probe.clone()));
    // The spoofed duplicate lands while A's session awaits the mDNS
    // response (service delay is 2–3 ms).
    sim.add_actor("10.0.9.9", DelayedActor::new(SimDuration::from_millis(1), Spoofer));
    sim.run_until_idle();

    assert_eq!(
        probe.results().len(),
        1,
        "the reply must reach the originator, not the spoofer; errors: {:?}",
        stats.errors()
    );
    assert_eq!(stats.errors().len(), 1, "the duplicate was recorded and dropped");
    assert_eq!(stats.concurrency().started, 1);
    stats.assert_consistent("rejected duplicate");
}

#[test]
fn unmatched_tcp_connect_does_not_steal_a_concurrent_session() {
    // Case 3 with two UPnP clients resting at the bridge's HTTP part and
    // a rogue peer connecting from an unknown host: the rogue must
    // originate its own (doomed) session, not be grafted onto the
    // oldest client's — grafting hands one client's description
    // exchange to a stranger and strands the client.
    struct RogueConnector;
    impl Actor for RogueConnector {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let target = SimAddr::new(BRIDGE, starlink::protocols::http::HTTP_PORT);
            if let Err(err) = ctx.tcp_connect(target) {
                ctx.trace(format!("rogue connect failed: {err}"));
            }
        }
        fn on_tcp(&mut self, ctx: &mut Context<'_>, event: starlink::net::TcpEvent) {
            if let starlink::net::TcpEvent::Connected { conn, .. } = event {
                let get = starlink::protocols::http::HttpGet::new("/desc.xml", "10.0.0.2:80");
                let wire = starlink::protocols::http::encode(
                    &starlink::protocols::http::HttpMessage::Get(get),
                );
                let _ = ctx.tcp_send(conn, wire);
            }
        }
    }

    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config =
        EngineConfig { idle_timeout: SimDuration::from_millis(200), ..EngineConfig::default() };
    let (engine, stats) = framework.deploy_with(bridges::upnp_to_slp(BRIDGE), config).unwrap();

    // Stretch the clients' pre-GET think time so both sessions rest at
    // the HTTP part when the rogue connects (~8 ms).
    let mut calibration = Calibration::fast();
    calibration.upnp_client_think = starlink::protocols::DelayRange::new(5, 5);

    let probe_a = DiscoveryProbe::new();
    let probe_b = DiscoveryProbe::new();
    let mut sim = SimNet::new(604);
    sim.add_actor(BRIDGE, engine);
    sim.add_actor(SERVICE, slp::SlpService::new(SLP_TYPE, SERVICE_URL, calibration));
    sim.add_actor("10.0.1.1", upnp::UpnpClient::new(UPNP_TYPE, calibration, probe_a.clone()));
    sim.add_actor(
        "10.0.1.2",
        DelayedActor::new(
            SimDuration::from_micros(1_500),
            upnp::UpnpClient::new(UPNP_TYPE, calibration, probe_b.clone()),
        ),
    );
    sim.add_actor("10.0.9.9", DelayedActor::new(SimDuration::from_millis(8), RogueConnector));
    sim.run_until_idle();

    assert_eq!(probe_a.results().len(), 1, "client A completed; errors: {:?}", stats.errors());
    assert_eq!(probe_b.results().len(), 1, "client B completed; errors: {:?}", stats.errors());
    assert_eq!(probe_a.first().unwrap().url, SERVICE_URL);
    assert_eq!(probe_b.first().unwrap().url, SERVICE_URL);
    let c = stats.concurrency();
    assert_eq!(c.started, 3, "the rogue originated its own session");
    assert_eq!(c.completed, 2);
    assert_eq!(c.expired, 1, "the rogue's doomed session was reaped by the idle timer");
    assert_eq!(c.active, 0, "nothing left grafted in the table");
    assert_eq!(stats.errors().len(), 1, "the rogue's GET was rejected: {:?}", stats.errors());
    stats.assert_consistent("rogue TCP connect");
}

/// A client that retransmits the same XID from two different source
/// ports, as real SLP user agents do on retry.
struct RetransmittingSlpClient {
    xid: u16,
}

impl Actor for RetransmittingSlpClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let rqst = slp::SrvRqst::new(self.xid, SLP_TYPE);
        let wire = slp::encode(&slp::SlpMessage::SrvRqst(rqst));
        for port in [40_100u16, 40_101] {
            ctx.bind_udp(port).unwrap();
            ctx.udp_send(port, SimAddr::new(slp::SLP_GROUP, slp::SLP_PORT), wire.clone());
        }
    }
}

#[test]
fn field_correlator_collapses_retransmissions_onto_one_session() {
    // With the XID/ID correlation hook plugged in, a retransmission from
    // a different source port maps onto the same session instead of
    // opening a second one (source-address keying alone cannot know).
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config = EngineConfig {
        correlator: Some(Arc::new(bridges::default_correlator())),
        ..EngineConfig::default()
    };
    let (engine, stats) = framework.deploy_with(bridges::slp_to_bonjour(), config).unwrap();

    let mut sim = SimNet::new(602);
    sim.add_actor(BRIDGE, engine);
    sim.add_actor(SERVICE, mdns::BonjourService::new(DNS_TYPE, SERVICE_URL, Calibration::fast()));
    sim.add_actor("10.0.1.1", RetransmittingSlpClient { xid: 0x4242 });
    sim.run_until_idle();

    let c = stats.concurrency();
    assert_eq!(c.started, 1, "retransmission collapsed onto the original session");
    assert_eq!(stats.session_count(), 1);
    assert_eq!(
        stats.errors().len(),
        1,
        "the duplicate request is recorded and dropped inside the session: {:?}",
        stats.errors()
    );
    stats.assert_consistent("correlated retransmission");
}

/// A WS-Discovery client that retransmits the same Probe (same
/// MessageID uuid) from two different source ports, as WSDAPI-style
/// stacks do on retry.
struct RetransmittingWsdClient {
    id: u64,
}

impl Actor for RetransmittingWsdClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let probe = wsd::WsdProbe::new(self.id, "dn:printer");
        let wire = wsd::encode(&wsd::WsdMessage::Probe(probe));
        for port in [40_110u16, 40_111] {
            ctx.bind_udp(port).unwrap();
            ctx.udp_send(port, SimAddr::new(wsd::WSD_GROUP, wsd::WSD_PORT), wire.clone());
        }
    }
}

#[test]
fn uuid_correlator_collapses_wsd_probe_retransmissions_onto_one_session() {
    // The WS-Discovery form of the same invariant: the correlator keys
    // probes on their MessageID uuid (a *textual* id, hashed to the key
    // space), so a retransmitted probe from a new source port lands in
    // the original session instead of opening a second one.
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config = EngineConfig {
        correlator: Some(Arc::new(bridges::default_correlator())),
        ..EngineConfig::default()
    };
    let (engine, stats) = framework.deploy_with(bridges::wsd_to_bonjour(), config).unwrap();

    let mut sim = SimNet::new(605);
    sim.add_actor(BRIDGE, engine);
    sim.add_actor(SERVICE, mdns::BonjourService::new(DNS_TYPE, SERVICE_URL, Calibration::fast()));
    sim.add_actor("10.0.1.1", RetransmittingWsdClient { id: 0x77 });
    sim.run_until_idle();

    let c = stats.concurrency();
    assert_eq!(c.started, 1, "uuid retransmission collapsed onto the original session");
    assert_eq!(stats.session_count(), 1);
    assert_eq!(
        stats.errors().len(),
        1,
        "the duplicate probe is recorded and dropped inside the session: {:?}",
        stats.errors()
    );
    stats.assert_consistent("correlated wsd retransmission");
}
