//! The `starlink-check` conformance corpus.
//!
//! Two halves:
//!
//! * **badspecs** — every lint code has at least one fixture under
//!   `tests/fixtures/badspecs/` that triggers it; the rendered
//!   diagnostics are locked by golden snapshots in
//!   `tests/fixtures/badspecs/golden/`. Regenerate after an intentional
//!   message change with `UPDATE_GOLDEN=1 cargo test -q check_corpus`.
//! * **shipped models check clean** — the five protocol specs, all
//!   twelve synthesized bridges (including their deployment gate) and
//!   the four synthesis ontologies produce nothing at warning severity
//!   or above.
//!
//! Plus the deployment-refusal contract: [`Starlink::deploy_with`]
//! refuses an error-carrying model before any session starts, naming
//! the lint code in the `Deployment` error.

use starlink::automata::{analyze_merged, Color, ColoredAutomaton, Mode, Transport};
use starlink::core::{analyze_ontology, check_model_source, CoreError, EngineConfig, Starlink};
use starlink::protocols::bridges::{self, BridgeCase};
use starlink::xml::{diag, Severity};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn xml_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("directory entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("xml"))
        .collect();
    files.sort();
    files
}

/// The lint code a badspec fixture is named for: `mdl001_unresolved_ref`
/// declares it triggers `MDL001`.
fn expected_code(fixture: &Path) -> String {
    let stem = fixture.file_stem().and_then(|s| s.to_str()).expect("fixture stem");
    stem.split('_').next().expect("stem prefix").to_ascii_uppercase()
}

#[test]
fn every_badspec_fixture_triggers_its_lint_code() {
    let dir = repo_path("tests/fixtures/badspecs");
    let fixtures = xml_files(&dir);
    assert!(!fixtures.is_empty(), "no fixtures found in {}", dir.display());
    for fixture in &fixtures {
        let source = std::fs::read_to_string(fixture).expect("fixture readable");
        let diags = check_model_source(&source);
        let code = expected_code(fixture);
        assert!(
            diags.iter().any(|d| d.code() == code),
            "{} does not trigger {code}; got:\n{}",
            fixture.display(),
            diag::render(&diags),
        );
    }
}

#[test]
fn badspec_diagnostics_match_golden_snapshots() {
    let dir = repo_path("tests/fixtures/badspecs");
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for fixture in xml_files(&dir) {
        let source = std::fs::read_to_string(&fixture).expect("fixture readable");
        let rendered = format!("{}\n", diag::render(&check_model_source(&source)));
        let stem = fixture.file_stem().and_then(|s| s.to_str()).expect("fixture stem");
        let golden_path = dir.join("golden").join(format!("{stem}.txt"));
        if update {
            std::fs::write(&golden_path, &rendered).expect("golden writable");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "missing golden snapshot {}; run UPDATE_GOLDEN=1 cargo test -q check_corpus",
                golden_path.display()
            )
        });
        if golden != rendered {
            mismatches
                .push(format!("== {stem} ==\n-- golden --\n{golden}-- actual --\n{rendered}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "diagnostic snapshots diverged (UPDATE_GOLDEN=1 to accept):\n{}",
        mismatches.join("\n"),
    );
}

#[test]
fn shipped_specs_check_clean() {
    for spec in xml_files(&repo_path("crates/protocols/specs")) {
        let source = std::fs::read_to_string(&spec).expect("spec readable");
        let diags = check_model_source(&source);
        assert!(
            !diag::any_at_least(&diags, Severity::Warning),
            "{} is not clean:\n{}",
            spec.display(),
            diag::render(&diags),
        );
    }
}

#[test]
fn all_bridge_cases_check_clean_and_deploy() {
    for &case in BridgeCase::all() {
        let merged = case.build("10.0.0.2");
        let diags = analyze_merged(&merged, None);
        assert!(
            !diag::any_at_least(&diags, Severity::Warning),
            "case {} ({}) is not clean:\n{}",
            case.number(),
            case.name(),
            diag::render(&diags),
        );
        // The deployment gate re-runs every analysis (plus AUT006 with
        // the default correlator) and must pass for every shipped case.
        let mut framework = Starlink::new();
        bridges::load_all_mdls(&mut framework).expect("models load");
        let config = EngineConfig {
            correlator: Some(Arc::new(bridges::default_correlator())),
            ..EngineConfig::default()
        };
        framework
            .deploy_with(case.build("10.0.0.2"), config)
            .unwrap_or_else(|e| panic!("case {} refused deployment: {e}", case.number()));
    }
}

#[test]
fn synthesis_ontologies_check_clean() {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    for (case, service, client, ontology) in bridges::synthesized_inputs() {
        let diags = analyze_ontology(&framework, &service, &client, &ontology);
        assert!(
            diags.is_empty(),
            "ontology of case {} ({}) is not clean:\n{}",
            case.number(),
            case.name(),
            diag::render(&diags),
        );
    }
}

#[test]
fn deploy_refuses_error_carrying_model() {
    const ECHO_MDL: &str = r#"
      <MDL protocol="Echo" kind="binary">
        <Header type="Echo"><Op>8</Op><Tag>16</Tag></Header>
        <Message type="Ping"><Rule>Op=1</Rule></Message>
        <Message type="Pong"><Rule>Op=2</Rule></Message>
      </MDL>"#;
    // No accepting state: AUT002, an error-severity finding.
    let automaton = ColoredAutomaton::builder("Echo")
        .color(Color::new(Transport::Udp, 1000, Mode::Async).multicast("239.0.0.1"))
        .state("s0")
        .state("s1")
        .receive("s0", "Ping", "s1")
        .send("s1", "Pong", "s0")
        .build()
        .expect("automaton builds");
    let mut framework = Starlink::new();
    framework.load_mdl_xml(ECHO_MDL).expect("MDL loads");
    let merged = starlink::automata::MergedAutomaton::from_single(automaton);
    let err = framework
        .deploy_with(merged, EngineConfig::default())
        .expect_err("deployment must be refused");
    match err {
        CoreError::Deployment(message) => {
            assert!(message.contains("model verification failed"), "unexpected message: {message}");
            assert!(message.contains("AUT002"), "missing lint code: {message}");
            assert!(message.contains("bridge:Echo"), "missing subject: {message}");
        }
        other => panic!("expected Deployment error, got {other:?}"),
    }
}
